//! Phase-diagram sweep of a transverse-field Ising chain, noiseless and noisy.
//!
//! The paper's physics benchmarks build a "landscape" by sweeping a model parameter
//! (Section 7.1).  This example sweeps the transverse field of an 8-site Ising chain
//! across its quantum phase transition, runs TreeVQA on a noiseless backend and on a
//! synthetic noisy backend (Section 8.7's setting), and reports how the shot savings and
//! accuracy compare.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p treevqa-examples --bin spin_chain_sweep
//! ```

use qchem::SpinChainFamily;
use qcircuit::{Entanglement, HardwareEfficientAnsatz};
use qexec::{run_baseline, Executor};
use qopt::{OptimizerSpec, SpsaConfig};
use qsim::NoiseModel;
use treevqa::{TreeVqa, TreeVqaConfig};
use vqa::{
    metrics, Backend, InitialState, NoisyBackend, StatevectorBackend, VqaApplication, VqaRunConfig,
    VqaTask,
};

fn build_application(num_tasks: usize) -> VqaApplication {
    let family = SpinChainFamily::tfim_benchmark();
    let tasks: Vec<VqaTask> = family
        .tasks(num_tasks)
        .into_iter()
        .map(|(h, ham)| VqaTask::with_computed_reference(format!("h={h:.2}"), h, ham))
        .collect();
    let ansatz = HardwareEfficientAnsatz::new(family.num_sites, 2, Entanglement::Circular).build();
    VqaApplication::new("tfim-sweep", tasks, ansatz, InitialState::Basis(0))
}

fn compare(
    label: &str,
    application: &VqaApplication,
    mut make_backend: impl FnMut() -> Box<dyn Backend + Send>,
) -> Result<(), Box<dyn std::error::Error>> {
    let optimizer = OptimizerSpec::Spsa(SpsaConfig {
        a: 0.25,
        ..Default::default()
    });
    let iterations = treevqa_examples::example_iterations(120);

    let baseline_config = VqaRunConfig {
        max_iterations: iterations,
        optimizer: optimizer.clone(),
        seed: 17,
        record_every: 10,
    };
    let zeros = vec![0.0; application.num_parameters()];
    let baseline = run_baseline(application, &zeros, &baseline_config, &mut |_| {
        make_backend()
    })?;

    let config = TreeVqaConfig {
        max_cluster_iterations: iterations,
        optimizer,
        record_every: 10,
        seed: 17,
        ..Default::default()
    };
    let tree_vqa = TreeVqa::try_new(application.clone(), config)?;
    let executor = Executor::single_boxed(make_backend());
    let result = tree_vqa.run(&executor)?;

    let base_fid = metrics::mean_fidelity(&application.tasks, &baseline.best_energies());
    let tree_fid = metrics::mean_fidelity(&application.tasks, &result.energies());
    let savings = metrics::shot_savings_ratio(baseline.total_shots, result.total_shots);
    println!(
        "  {label:<10} savings {:>6.1}x   mean fidelity: baseline {:.4} / TreeVQA {:.4}   splits {}",
        savings.unwrap_or(f64::NAN),
        base_fid.unwrap_or(f64::NAN),
        tree_fid.unwrap_or(f64::NAN),
        result.tree.num_splits()
    );
    treevqa_examples::print_observability(&format!("{label} execution service"), &executor);
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();
    let application = build_application(6);
    println!(
        "Transverse-field Ising sweep: {} tasks on {} qubits",
        application.num_tasks(),
        application.num_qubits()
    );

    compare("noiseless", &application, || {
        Box::new(StatevectorBackend::new()) as Box<dyn Backend + Send>
    })?;

    let model = NoiseModel::by_name("cairo").ok_or("unknown noise model \"cairo\"")?;
    compare("noisy", &application, move || {
        Box::new(NoisyBackend::new(
            model.clone(),
            2,
            qsim::DEFAULT_SHOTS_PER_PAULI,
            23,
        )) as Box<dyn Backend + Send>
    })?;
    Ok(())
}
