//! QAOA MaxCut on the IEEE 14-bus system with TreeVQA.
//!
//! Reproduces the paper's smart-grid scenario (Sections 7.1 and 8.8) at example scale:
//! ten load-scaled MaxCut instances of the IEEE 14-bus graph are solved jointly with a
//! single TreeVQA run using the multi-angle QAOA ansatz and a Red-QAOA-style shared warm
//! start, and compared against solving each instance independently.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p treevqa-examples --bin maxcut_ieee14
//! ```

use qcircuit::{QaoaAnsatz, QaoaStyle};
use qexec::{run_baseline, Executor};
use qgraph::{maxcut_cost_hamiltonian, Ieee14Family};
use qopt::{OptimizerSpec, SpsaConfig};
use treevqa::{TreeVqa, TreeVqaConfig};
use vqa::{
    metrics, red_qaoa_initial_point, InitialState, StatevectorBackend, VqaApplication,
    VqaRunConfig, VqaTask,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();
    let family = Ieee14Family::new(0.9, 1.1, 6);
    let graphs = family.graphs();
    println!(
        "IEEE 14-bus MaxCut: {} load-scaled instances, edge-weight variance {:.4}",
        graphs.len(),
        family.edge_weight_variance()
    );

    // Shared ma-QAOA ansatz built from the first instance's cost structure (all instances
    // are isomorphic, so the term structure is identical).
    let costs: Vec<_> = graphs.iter().map(maxcut_cost_hamiltonian).collect();
    let qaoa = QaoaAnsatz::new(&costs[0], 1, QaoaStyle::MultiAngle)?;
    let ansatz = qaoa.build();
    let initial_point = red_qaoa_initial_point(&qaoa, &graphs[0]);

    let tasks: Vec<VqaTask> = costs
        .iter()
        .zip(family.load_scales())
        .map(|(cost, scale)| {
            VqaTask::with_computed_reference(format!("load={scale:.2}"), scale, cost.clone())
        })
        .collect();
    let application = VqaApplication::new("ieee14-maxcut", tasks, ansatz, InitialState::Basis(0));

    // The QAOA cost layer is all diagonal ZZ rotations, so the compiled path collapses
    // it into a single phase pass per layer — show the lowering the backends will use.
    let stats = qsim::CompiledCircuit::compile(&application.ansatz).stats();
    println!(
        "  compiled ansatz: {} gates -> {} ops ({} diagonal passes covering {} gates)",
        stats.source_gates, stats.compiled_ops, stats.diagonal_passes, stats.diagonal_gates_batched
    );

    let optimizer = OptimizerSpec::Spsa(SpsaConfig {
        a: 0.2,
        ..Default::default()
    });
    let iterations = treevqa_examples::example_iterations(120);

    // Baseline: each instance separately, all starting from the same Red-QAOA point.
    let baseline_config = VqaRunConfig {
        max_iterations: iterations,
        optimizer: optimizer.clone(),
        seed: 5,
        record_every: 10,
    };
    let baseline = run_baseline(&application, &initial_point, &baseline_config, &mut |_| {
        Box::new(StatevectorBackend::new()) as Box<dyn vqa::Backend + Send>
    })?;

    // TreeVQA: one run for the whole family.
    let config = TreeVqaConfig {
        max_cluster_iterations: iterations,
        optimizer,
        record_every: 10,
        seed: 5,
        ..Default::default()
    };
    let tree_vqa = TreeVqa::try_new(application.clone(), config)?;
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree_vqa.run_with_initial(&executor, &initial_point)?;

    println!("\n  load   max-cut(exact)   TreeVQA cut   approx. ratio");
    for (outcome, graph) in result.per_task.iter().zip(&graphs) {
        let (max_cut, _) = graph.max_cut_brute_force();
        let achieved = -outcome.energy;
        println!(
            "  {:>5.2}   {:>13.4}   {:>11.4}   {:>12.3}",
            outcome.parameter,
            max_cut,
            achieved,
            achieved / max_cut
        );
    }

    println!("\n  baseline shots : {:>14}", baseline.total_shots);
    println!("  TreeVQA shots  : {:>14}", result.total_shots);
    if let Some(ratio) = metrics::shot_savings_ratio(baseline.total_shots, result.total_shots) {
        println!("  shot savings   : {ratio:.1}x");
    }
    println!("  tree critical depth: {}", result.tree.critical_depth());
    treevqa_examples::print_observability("MaxCut execution service", &executor);
    Ok(())
}
