//! Potential-energy-surface (PES) scan with TreeVQA.
//!
//! Reconstructs the paper's motivating use case (Section 2.3): a molecule's energy
//! landscape is built from many VQA tasks, one per geometry.  This example scans the LiH
//! family over ten bond lengths, runs TreeVQA once for the whole family, and prints the
//! resulting PES next to the exact curve, together with the execution tree that shows how
//! the tasks branched.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p treevqa-examples --bin pes_scan
//! ```

use qchem::MoleculeSpec;
use qcircuit::{Entanglement, HardwareEfficientAnsatz};
use qexec::Executor;
use qopt::{OptimizerSpec, SpsaConfig};
use treevqa::{SplitPolicy, TreeVqa, TreeVqaConfig};
use vqa::{InitialState, StatevectorBackend, VqaApplication, VqaTask};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();
    let molecule = MoleculeSpec::lih();
    let num_tasks = 10;
    println!(
        "PES scan: {} over [{:.2}, {:.2}] Å with {} geometries",
        molecule.name, molecule.bond_min, molecule.bond_max, num_tasks
    );

    let tasks: Vec<VqaTask> = molecule
        .tasks(num_tasks)
        .into_iter()
        .map(|(bond, ham)| VqaTask::with_computed_reference(format!("r={bond:.3}"), bond, ham))
        .collect();
    let ansatz =
        HardwareEfficientAnsatz::new(molecule.num_qubits, 2, Entanglement::Circular).build();
    let application = VqaApplication::new(
        "LiH-PES",
        tasks,
        ansatz,
        InitialState::Basis(molecule.hartree_fock_state()),
    );

    let config = TreeVqaConfig {
        max_cluster_iterations: treevqa_examples::example_iterations(180),
        optimizer: OptimizerSpec::Spsa(SpsaConfig {
            a: 0.25,
            ..Default::default()
        }),
        split_policy: SplitPolicy::Adaptive {
            warmup_iterations: 30,
            window_size: 15,
            epsilon_split: 2e-3,
        },
        record_every: 10,
        seed: 3,
        ..Default::default()
    };

    let tree_vqa = TreeVqa::try_new(application, config)?;
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree_vqa.run(&executor)?;

    println!("\n  bond (Å)   E_TreeVQA      E_exact        fidelity");
    for (outcome, task) in result.per_task.iter().zip(&tree_vqa.application().tasks) {
        println!(
            "  {:>7.3}   {:+.6}   {:+.6}    {:.4}",
            outcome.parameter,
            outcome.energy,
            task.reference_energy.unwrap_or(f64::NAN),
            outcome.fidelity.unwrap_or(f64::NAN)
        );
    }
    println!("\n  total shots: {}", result.total_shots);
    println!("  tree critical depth: {}", result.tree.critical_depth());
    println!("  execution tree:\n{}", result.tree.render());
    treevqa_examples::print_observability("PES execution service", &executor);
    Ok(())
}
