//! Network serving tour: an executor behind a TCP socket, driven by concurrent
//! remote clients.
//!
//! A three-backend executor (exact statevector, finite-shot sampled, noisy
//! Pauli-trajectory) goes behind a loopback [`qnet::NetServer`].  Four remote
//! connections then act as a load generator — each submits a wave of stream-pinned
//! evaluation jobs round-robin across the backends and reports its own wire
//! round-trip latency.  After the fan-out, a fifth connection runs the *entire*
//! `vqa` driver ([`qexec::run_single_vqa`]) against the remote executor — the same
//! generic entry point local code uses, no network-specific driver — and, because
//! randomness is counter-based and stream-pinned, an identical local run reproduces
//! its energy bit-for-bit (the example asserts this).  The run ends with the
//! server's own metrics (connections, frames, bytes, per-connection request
//! counters) and the executor's observability summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p treevqa-examples --bin qnet_serve
//! ```

use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::{run_single_vqa, EvalJob, Executor, StreamId, SubmitOptions};
use qnet::{NetClient, NetServer};
use qnoise::PauliNoiseModel;
use qop::PauliOp;
use std::sync::Arc;
use vqa::{
    InitialState, NoisyStatevectorBackend, SampledBackend, StatevectorBackend, VqaRunConfig,
    VqaTask,
};

const QUBITS: usize = 4;
const CONNS: usize = 4;
const JOBS_PER_CONN: usize = 12;

fn demo_circuit() -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(QUBITS, 2, Entanglement::Circular).build())
}

fn demo_observable() -> Arc<PauliOp> {
    Arc::new(PauliOp::from_labels(
        QUBITS,
        &[("ZZII", -1.0), ("IZZI", -1.0), ("IIZZ", 0.5), ("XIII", 0.3)],
    ))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();

    // The served executor: three backend families, two execution workers.
    let noise = PauliNoiseModel::ibm_like("qnet-serve", 0.02, 0.05, 0.01, 0.01);
    let executor = Arc::new(
        Executor::builder()
            .register("exact", StatevectorBackend::with_shots(64))
            .register("sampled", SampledBackend::new(256, 42))
            .register(
                "noisy",
                NoisyStatevectorBackend::new(noise, 50, 3)
                    .with_trajectories(4)
                    .with_shot_sampling(),
            )
            .workers(2)
            .observability(true)
            .start(),
    );
    let backends = executor.backend_names();
    let server = NetServer::builder(Arc::clone(&executor))
        .observability(true)
        .bind(qnet::addr_from_env())?;
    println!(
        "qnet_serve: serving backends {:?} on {} ({} workers)",
        backends,
        server.local_addr(),
        2
    );

    // Phase 1 — load generator: CONNS remote connections, each shipping its wave as
    // one batch frame (a coalesced slate server-side) plus a few single submits.
    let circuit = demo_circuit();
    let observable = demo_observable();
    let addr = server.local_addr();
    println!("\n  [load generator: {CONNS} connections x {JOBS_PER_CONN} jobs]");
    let loaders: Vec<_> = (0..CONNS)
        .map(|c| {
            let circuit = Arc::clone(&circuit);
            let observable = Arc::clone(&observable);
            let backends: Vec<String> = backends.clone();
            std::thread::spawn(move || -> Result<String, qexec::ExecError> {
                let client = NetClient::connect(addr)
                    .map_err(|e| qexec::ExecError::Transport(e.to_string()))?;
                let mut handles = Vec::new();
                for i in 0..JOBS_PER_CONN {
                    let params: Vec<f64> = (0..circuit.num_parameters())
                        .map(|p| 0.05 * p as f64 + 0.01 * (c * JOBS_PER_CONN + i) as f64)
                        .collect();
                    let job = EvalJob::new(
                        Arc::clone(&circuit),
                        params,
                        InitialState::Basis(0),
                        Arc::clone(&observable),
                    )
                    .with_rng_stream(StreamId::named(&format!("qnet-serve-c{c}-j{i}")));
                    let opts =
                        SubmitOptions::new().backend(backends[i % backends.len()].clone());
                    handles.push(client.submit_with(job, &opts)?);
                }
                let mut sum = 0.0;
                for handle in &handles {
                    sum += handle.wait()?.charged;
                }
                let rtt = client.rtt();
                Ok(format!(
                    "conn {c}: {JOBS_PER_CONN} jobs ok, mean energy {:+.4}, wire RTT mean {:.1} us (max {:.1} us)",
                    sum / JOBS_PER_CONN as f64,
                    rtt.sum as f64 / rtt.count.max(1) as f64 / 1e3,
                    rtt.max as f64 / 1e3,
                ))
            })
        })
        .collect();
    for loader in loaders {
        println!("    {}", loader.join().expect("loader thread")?);
    }

    // Phase 2 — a full VQA run over the wire, reproduced locally bit-for-bit.
    let iterations = treevqa_examples::example_iterations(40);
    let ham = qchem::transverse_field_ising(QUBITS, 1.0, 0.5);
    let task = VqaTask::with_computed_reference("TFIM h=0.5", 0.5, ham);
    let ansatz = HardwareEfficientAnsatz::new(QUBITS, 2, Entanglement::Circular).build();
    let zeros = vec![0.0; ansatz.num_parameters()];
    let config = VqaRunConfig {
        max_iterations: iterations,
        optimizer: qopt::OptimizerSpec::Spsa(qopt::SpsaConfig {
            a: 0.25,
            ..Default::default()
        }),
        seed: 7,
        record_every: iterations.max(1),
    };
    println!("\n  [remote VQA: {iterations} SPSA iterations over one connection]");
    let client = NetClient::connect(addr)?;
    let remote = run_single_vqa(
        &task,
        &ansatz,
        &InitialState::Basis(0),
        &zeros,
        &client,
        &config,
    )?;
    drop(client);
    println!(
        "    remote best energy {:+.6} after {} iterations ({} shots)",
        remote.best_energy, iterations, remote.shots_used
    );
    // The same run against a fresh local executor: bit-identical, by the
    // schedule-independence contract — the wire adds no observable behavior.
    let local_executor = Executor::single(StatevectorBackend::with_shots(64));
    let local = run_single_vqa(
        &task,
        &ansatz,
        &InitialState::Basis(0),
        &zeros,
        &local_executor.client(),
        &config,
    )?;
    assert_eq!(
        remote.best_energy.to_bits(),
        local.best_energy.to_bits(),
        "remote and local runs must be bit-identical"
    );
    println!("    local rerun matches bit-for-bit ✓");

    // Wind down: drain, then print both metric surfaces.
    server.shutdown();
    let net = server.observability().snapshot();
    println!("\n  [qnet server metrics]");
    for name in [
        "conns_accepted",
        "conns_closed",
        "frames_in",
        "frames_out",
        "bytes_in",
        "bytes_out",
        "submits",
        "probes",
        "batches",
        "results_sent",
        "errors_sent",
        "decode_errors",
    ] {
        println!("    {name:>16} {}", net.counter(name));
    }
    let mut per_conn: Vec<_> = net
        .labeled
        .iter()
        .filter(|(label, _)| label.starts_with("conn"))
        .collect();
    per_conn.sort();
    for (label, count) in per_conn {
        println!("    {label:>16} {count}");
    }
    treevqa_examples::print_observability("served executor", &executor);
    Ok(())
}
