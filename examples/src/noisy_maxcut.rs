//! QAOA MaxCut on the IEEE 14-bus system under trajectory noise, with and without
//! zero-noise extrapolation.
//!
//! The noise-aware companion of `maxcut_ieee14`: the same load-scaled MaxCut family is
//! solved by TreeVQA on an **ideal** statevector backend and on the **noisy trajectory**
//! backend (`qnoise` Pauli channels replayed through the compiled batch engine), and one
//! instance is then optimized noisily and re-estimated with the ZNE mitigation wrapper
//! to show what extrapolation buys at readout.
//!
//! Run with:
//!
//! ```text
//! QNOISE_TRAJECTORIES=16 cargo run --release -p treevqa-examples --bin noisy_maxcut
//! ```

use qcircuit::{QaoaAnsatz, QaoaStyle};
use qexec::{run_single_vqa, EvalJob, Executor, SubmitOptions};
use qgraph::{maxcut_cost_hamiltonian, Ieee14Family};
use qnoise::PauliNoiseModel;
use qopt::{OptimizerSpec, SpsaConfig};
use std::sync::Arc;
use treevqa::{TreeVqa, TreeVqaConfig};
use vqa::{
    red_qaoa_initial_point, BackendCaps, InitialState, NoisyStatevectorBackend, StatevectorBackend,
    VqaApplication, VqaRunConfig, VqaTask, ZneBackend,
};

/// A mid-tier superconducting-flavoured noise model: depolarizing per gate, twirled
/// amplitude damping per touched qubit, 1 % readout flips.
fn device_model() -> PauliNoiseModel {
    PauliNoiseModel::ibm_like("example-device", 5e-4, 4e-3, 1e-3, 0.01)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();
    let trajectories = qnoise::default_trajectories().min(32);
    let family = Ieee14Family::new(0.9, 1.1, 6);
    let graphs = family.graphs();
    let costs: Vec<_> = graphs.iter().map(maxcut_cost_hamiltonian).collect();
    let qaoa = QaoaAnsatz::new(&costs[0], 1, QaoaStyle::MultiAngle)?;
    let ansatz = qaoa.build();
    let initial_point = red_qaoa_initial_point(&qaoa, &graphs[0]);
    let model = device_model();
    println!(
        "IEEE 14-bus MaxCut under trajectory noise: {} instances, {} trajectories/eval, model '{}'",
        graphs.len(),
        trajectories,
        model.name
    );

    let tasks: Vec<VqaTask> = costs
        .iter()
        .zip(family.load_scales())
        .map(|(cost, scale)| {
            VqaTask::with_computed_reference(format!("load={scale:.2}"), scale, cost.clone())
        })
        .collect();
    let application = VqaApplication::new(
        "ieee14-maxcut-noisy",
        tasks,
        ansatz.clone(),
        InitialState::Basis(0),
    );

    let optimizer = OptimizerSpec::Spsa(SpsaConfig {
        a: 0.2,
        ..Default::default()
    });
    let config = TreeVqaConfig {
        max_cluster_iterations: treevqa_examples::example_iterations(80),
        optimizer: optimizer.clone(),
        record_every: 20,
        seed: 5,
        ..Default::default()
    };

    // Arm 1: TreeVQA as a client of an ideal execution service.
    let tree_vqa = TreeVqa::try_new(application.clone(), config.clone())?;
    let ideal_exec = Executor::single(StatevectorBackend::new());
    let ideal = tree_vqa.run_with_initial(&ideal_exec, &initial_point)?;

    // Arm 2: the same controller against a noisy-trajectory service.  Each round's jobs
    // coalesce into one batched submission, so the K-trajectory rollouts ride the
    // scratch-pool engine.
    let tree_vqa = TreeVqa::try_new(application.clone(), config)?;
    let noisy_exec = Executor::single(
        NoisyStatevectorBackend::new(model.clone(), qsim::DEFAULT_SHOTS_PER_PAULI, 5)
            .with_trajectories(trajectories),
    );
    let noisy = tree_vqa.run_with_initial(&noisy_exec, &initial_point)?;

    println!("\n  load   max-cut   ideal-ratio   noisy-ratio");
    for ((ideal_task, noisy_task), graph) in ideal.per_task.iter().zip(&noisy.per_task).zip(&graphs)
    {
        let (max_cut, _) = graph.max_cut_brute_force();
        println!(
            "  {:>5.2}  {:>8.4}   {:>11.3}   {:>11.3}",
            ideal_task.parameter,
            max_cut,
            -ideal_task.energy / max_cut,
            -noisy_task.energy / max_cut
        );
    }
    println!(
        "  shots: ideal {:>13}, noisy {:>13}",
        ideal.total_shots, noisy.total_shots
    );

    // Mitigation study on the middle instance: optimize *under noise*, then compare the
    // raw noisy estimate of the optimized point against its ZNE-extrapolated estimate
    // and the ideal truth.
    let idx = graphs.len() / 2;
    let run_config = VqaRunConfig {
        max_iterations: treevqa_examples::example_iterations(80),
        optimizer,
        seed: 11,
        record_every: 20,
    };
    // One execution service owning all three estimation substrates, negotiated by
    // capability: the optimizer targets the trajectory backend, and the three one-off
    // estimates of the optimized point each name (or discover) their backend.
    let study_exec = Executor::builder()
        .register("ideal", StatevectorBackend::with_shots(0))
        .register(
            "noisy",
            NoisyStatevectorBackend::new(model.clone(), 0, 13).with_trajectories(4 * trajectories),
        )
        .register(
            "zne",
            ZneBackend::new(
                NoisyStatevectorBackend::new(model, 0, 13).with_trajectories(4 * trajectories),
            ),
        )
        .start();
    let client = study_exec.client();

    let opt_exec = Executor::single(
        NoisyStatevectorBackend::new(device_model(), 0, 7).with_trajectories(trajectories),
    );
    let noisy_run = run_single_vqa(
        &application.tasks[idx],
        &application.ansatz,
        &application.initial_state,
        &initial_point,
        &opt_exec.client(),
        &run_config,
    )?;
    let theta = Arc::new(noisy_run.final_params.clone());
    let ansatz = Arc::new(application.ansatz.clone());
    let ham = Arc::new(application.tasks[idx].hamiltonian.clone());

    let estimate = |backend: &str| -> Result<f64, qexec::ExecError> {
        let job = EvalJob::new(
            Arc::clone(&ansatz),
            theta.to_vec(),
            InitialState::Basis(0),
            Arc::clone(&ham),
        );
        Ok(client
            .submit_with(
                job,
                &SubmitOptions {
                    backend: Some(backend.to_string()),
                    ..SubmitOptions::default()
                },
            )?
            .wait()?
            .charged)
    };
    let trajectory_backend = study_exec
        .find_backend(&BackendCaps {
            trajectories: true,
            ..BackendCaps::default()
        })
        .ok_or("no trajectory-capable backend is registered")?;
    assert_eq!(trajectory_backend, "noisy");
    let ideal_e = estimate("ideal")?;
    let noisy_e = estimate(&trajectory_backend)?;
    let zne_e = estimate("zne")?;

    let (max_cut, _) = graphs[idx].max_cut_brute_force();
    println!(
        "\n  mitigation on load={:.2} (noisy-optimized point, max-cut {max_cut:.4}):",
        family.load_scales()[idx]
    );
    println!(
        "    ideal estimate : {ideal_e:>9.4}  (cut {:>7.4})",
        -ideal_e
    );
    println!(
        "    noisy estimate : {noisy_e:>9.4}  (cut {:>7.4})",
        -noisy_e
    );
    println!("    ZNE estimate   : {zne_e:>9.4}  (cut {:>7.4})", -zne_e);
    println!(
        "    |error| noisy {:.4} -> ZNE {:.4}",
        (noisy_e - ideal_e).abs(),
        (zne_e - ideal_e).abs()
    );
    treevqa_examples::print_observability("noisy trajectory service", &noisy_exec);
    treevqa_examples::print_observability("mitigation study service", &study_exec);
    Ok(())
}
