//! Quickstart: TreeVQA vs. conventional VQA on a small molecular family.
//!
//! Builds a 5-task H₂ bond-length scan, runs the conventional baseline (every task
//! optimized independently) and TreeVQA (shared execution with adaptive branching) on the
//! same statevector backend, and prints the headline metric: the shot-savings ratio at
//! comparable fidelity.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p treevqa-examples --bin quickstart
//! ```

use qchem::MoleculeSpec;
use qcircuit::{Entanglement, HardwareEfficientAnsatz};
use qexec::{run_baseline, Executor};
use qopt::{OptimizerSpec, SpsaConfig};
use treevqa::{TreeVqa, TreeVqaConfig};
use vqa::{metrics, InitialState, StatevectorBackend, VqaApplication, VqaRunConfig, VqaTask};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();
    let molecule = MoleculeSpec::h2();
    let num_tasks = 5;
    println!(
        "TreeVQA quickstart: {} at {} bond lengths",
        molecule.name, num_tasks
    );

    // 1. Build the application: one VQA task per bond length, a shared hardware-efficient
    //    ansatz, and the Hartree–Fock reference state.
    let tasks: Vec<VqaTask> = molecule
        .tasks(num_tasks)
        .into_iter()
        .map(|(bond, ham)| {
            VqaTask::with_computed_reference(
                format!("{} @ {:.3} Å", molecule.name, bond),
                bond,
                ham,
            )
        })
        .collect();
    let ansatz =
        HardwareEfficientAnsatz::new(molecule.num_qubits, 2, Entanglement::Circular).build();
    let application = VqaApplication::new(
        format!("{}-pes", molecule.name),
        tasks,
        ansatz,
        InitialState::Basis(molecule.hartree_fock_state()),
    );

    // Both arms execute the ansatz through the compiled path: the backends lower it
    // once (fusing single-qubit runs, batching diagonal gates) and re-bind θ per
    // evaluation.  Show what the lowering achieved for this circuit.
    let compiled = qsim::CompiledCircuit::compile(&application.ansatz);
    let stats = compiled.stats();
    println!(
        "  compiled ansatz: {} gates -> {} ops ({} fused 1q chains, {} diagonal passes covering {} gates)",
        stats.source_gates,
        stats.compiled_ops,
        stats.fused_chains,
        stats.diagonal_passes,
        stats.diagonal_gates_batched
    );

    let optimizer = OptimizerSpec::Spsa(SpsaConfig {
        ..Default::default()
    });
    let iterations = treevqa_examples::example_iterations(800);

    // 2. Conventional baseline: every task independently, equal allocation.
    let baseline_config = VqaRunConfig {
        max_iterations: iterations,
        optimizer: optimizer.clone(),
        seed: 11,
        record_every: 5,
    };
    let zeros = vec![0.0; application.num_parameters()];
    let baseline = run_baseline(&application, &zeros, &baseline_config, &mut |_task| {
        Box::new(StatevectorBackend::new()) as Box<dyn vqa::Backend + Send>
    })?;

    // 3. TreeVQA: shared execution with adaptive branching.
    let tree_config = TreeVqaConfig {
        max_cluster_iterations: iterations,
        optimizer,
        seed: 11,
        record_every: 5,
        ..Default::default()
    };
    // TreeVQA runs as a client of the execution service: the controller submits every
    // round's candidates as owned jobs and the executor batches them onto the backend.
    let tree_vqa = TreeVqa::try_new(application.clone(), tree_config)?;
    let executor = Executor::single(StatevectorBackend::new());
    let tree_result = tree_vqa.run(&executor)?;

    // 4. Report.
    let baseline_fid = metrics::mean_fidelity(&application.tasks, &baseline.best_energies());
    let tree_fid = metrics::mean_fidelity(&application.tasks, &tree_result.energies());
    println!("\n  per-task results (TreeVQA):");
    for outcome in &tree_result.per_task {
        println!(
            "    {:<18} energy {:+.5}  fidelity {:.4}",
            outcome.task_label,
            outcome.energy,
            outcome.fidelity.unwrap_or(f64::NAN)
        );
    }
    println!(
        "\n  mean fidelity  : baseline {:.4} vs TreeVQA {:.4}",
        baseline_fid.unwrap_or(f64::NAN),
        tree_fid.unwrap_or(f64::NAN)
    );

    // The paper's headline metric: shots required by each method to bring *every* task to
    // the same fidelity threshold (Figure 6).  Use the highest threshold both methods
    // actually reach in this short demo run.
    let candidate_thresholds = [0.80, 0.85, 0.90, 0.95, 0.98];
    let mut reported = false;
    for &threshold in candidate_thresholds.iter().rev() {
        let baseline_shots = metrics::baseline_shots_for_threshold(
            &baseline.per_task,
            &application.tasks,
            threshold,
        );
        let tree_shots = tree_result.shots_to_reach_min_fidelity(threshold);
        if let (Some(b), Some(t)) = (baseline_shots, tree_shots) {
            println!("\n  fidelity target {threshold:.2}:");
            println!("    baseline shots : {b:>14}");
            println!("    TreeVQA shots  : {t:>14}");
            if let Some(ratio) = metrics::shot_savings_ratio(b, t) {
                println!("    shot savings   : {ratio:.1}x");
            }
            reported = true;
            break;
        }
    }
    if !reported {
        println!("\n  (neither method reached the candidate fidelity targets in this short run)");
    }
    println!("\n  execution tree:\n{}", tree_result.tree.render());
    treevqa_examples::print_observability("TreeVQA execution service", &executor);
    Ok(())
}
