//! Execution-service tracing tour: a mixed-priority, fault-injected workload with
//! every observability surface turned on.
//!
//! Three clients push evaluation jobs at different priorities through a two-backend
//! executor whose primary driver injects seeded transient faults and hard panics
//! (exercising retry, quarantine, canary, and failover); a slice of jobs carries a
//! deliberately unmeetable deadline so the expiry path fires too.  The executor runs
//! with two execution workers (one per backend), so the per-worker slate counters and
//! span worker labels light up.  At the end the example prints the same snapshot
//! through all three `qobs` exporters — summary table, JSON, Prometheus text — plus a
//! per-worker attribution summary and the `qsim` compiled-pattern profile that the
//! ROADMAP's profile-guided superop work will consume.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p treevqa-examples --bin exec_trace
//! ```

use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::fault::{FaultPlan, FaultyBackend};
use qexec::{EvalJob, Executor, JobHandle, SubmitOptions};
use qop::PauliOp;
use std::sync::Arc;
use std::time::Duration;
use vqa::{InitialState, StatevectorBackend};

/// Injected faults unwind through `catch_unwind` by design; keep the default panic
/// hook from spraying backtraces over the trace output.
fn silence_expected_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn demo_circuit(num_qubits: usize, layers: usize) -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(num_qubits, layers, Entanglement::Circular).build())
}

fn demo_observable(num_qubits: usize) -> Arc<PauliOp> {
    let mut label = String::from("ZZ");
    while label.len() < num_qubits {
        label.push('I');
    }
    Arc::new(PauliOp::from_labels(num_qubits, &[(label.as_str(), -1.0)]))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    treevqa_examples::enable_observability();
    silence_expected_panics();

    // Primary backend: exact statevector behind a scripted fault plan — slates batch
    // into few driver calls, so exact call indices stay meaningful: a transient glitch
    // on the second driver call (absorbed by retries), a hard panic on the third
    // (quarantine + canary + readmission; failover to the standby is armed for any
    // job caught in the quarantine window).  Standby: a clean backend with the same
    // capabilities.
    let plan = FaultPlan::new(42)
        .with_fault_at(1, Some(qexec::fault::FaultKind::Transient))
        .with_fault_at(2, Some(qexec::fault::FaultKind::Panic));
    let executor = Executor::builder()
        .register(
            "primary",
            FaultyBackend::new(StatevectorBackend::with_shots(64), plan),
        )
        .register("standby", StatevectorBackend::with_shots(64))
        .retry_limit(2)
        .observability(true)
        .workers(2)
        .start();
    println!(
        "exec_trace: 3 clients x 3 waves on backends {:?}, 2 execution workers",
        executor.backend_names()
    );

    let circuits = [demo_circuit(4, 2), demo_circuit(5, 2), demo_circuit(4, 3)];
    let observables = [demo_observable(4), demo_observable(5), demo_observable(4)];
    let clients = [executor.client(), executor.client(), executor.client()];

    // Three waves; each wave is assembled as one fair-ordered slate under a scoped
    // pause.  Client c submits at priority c, with retries + failover so the injected
    // faults are absorbed rather than fatal; odd jobs go to the standby directly, so
    // both execution workers carry load every slate (each backend is owned by one
    // worker); client 0's last wave carries a deadline that lapses while the executor
    // is still paused, lighting up the expiry path.
    let mut handles: Vec<JobHandle> = Vec::new();
    for wave in 0..3 {
        let guard = executor.scoped_pause();
        for (c, client) in clients.iter().enumerate() {
            for j in 0..4 {
                let shape = (wave + c + j) % circuits.len();
                let params: Vec<f64> = (0..circuits[shape].num_parameters())
                    .map(|i| 0.05 * i as f64 + 0.013 * (wave * 16 + c * 4 + j) as f64)
                    .collect();
                let mut job = EvalJob::new(
                    Arc::clone(&circuits[shape]),
                    params,
                    InitialState::Basis(0),
                    Arc::clone(&observables[shape]),
                );
                if wave == 2 && c == 0 {
                    job = job.with_timeout(Duration::from_millis(1));
                }
                let opts = SubmitOptions {
                    priority: c as qexec::Priority,
                    retries: 2,
                    failover: true,
                    backend: (j % 2 == 1).then(|| "standby".to_string()),
                    ..SubmitOptions::default()
                };
                handles.push(client.submit_with(job, &opts)?);
            }
        }
        if wave == 2 {
            // Outlive the 1 ms deadlines before releasing the slate.
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(guard);
        executor.wait_idle();
    }

    let (mut ok, mut failed) = (0usize, 0usize);
    for handle in &handles {
        match handle.wait() {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    println!("  resolved: {ok} ok, {failed} structured failures (none hung)");

    // Every exporter over the same snapshot.
    let registry = executor.observability();
    let snapshot = registry.snapshot();
    print!("\n{}", qexec::qobs::export::render_table(&snapshot));
    println!(
        "\n  JSON snapshot:\n{}",
        qexec::qobs::export::to_json(&snapshot)
    );
    println!(
        "\n  Prometheus exposition:\n{}",
        qexec::qobs::export::to_prometheus(&snapshot, "qexec")
    );

    // Worker attribution: the per-worker slate counters (also present in every export
    // above) and how the finished spans distributed over the execution workers.
    println!("  per-worker slates:");
    for (label, total) in &snapshot.labeled {
        println!("    {label}: {total}");
    }
    let recorded = registry.spans().recorded();
    let max_worker = recorded
        .iter()
        .filter_map(|s| s.labels.worker)
        .max()
        .unwrap_or(0);
    for w in 0..=max_worker {
        let jobs = recorded
            .iter()
            .filter(|s| s.labels.worker == Some(w))
            .count();
        println!("    worker {w}: {jobs} recorded job spans");
    }

    // The compiled-pattern profile all those executions fed (hottest first).
    print!("{}", qsim::profile::render_table(8));
    Ok(())
}
