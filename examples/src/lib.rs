//! Shared helpers for the runnable example binaries.

/// The optimizer iteration budget for an example: `default`, unless the
/// `TREEVQA_EXAMPLE_ITERS` environment variable overrides it.
///
/// CI's examples-smoke job sets the override to a tiny value so every example's full
/// end-to-end path (TreeVQA under noise included) executes on each run without paying
/// for convergence; humans run the defaults.
pub fn example_iterations(default: usize) -> usize {
    std::env::var("TREEVQA_EXAMPLE_ITERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Turn on process-wide observability for this example run.
///
/// Examples opt in unconditionally (overriding `QOBS`): their end-of-run summaries
/// are part of the output, and the per-job recording cost is noise next to the
/// simulations they drive.  Call this before constructing any executor.
pub fn enable_observability() {
    qexec::qobs::set_enabled(true);
}

/// Print `executor`'s end-of-run observability summary table under `label`:
/// job/span totals, per-outcome tallies, queue/exec/end-to-end latency
/// quantiles, and any fault-path event counters.
pub fn print_observability(label: &str, executor: &qexec::Executor) {
    let table = qexec::qobs::export::render_table(&executor.observability().snapshot());
    print!("\n  [{label}]\n{table}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_used_without_override() {
        // The variable is not set in the test environment.
        assert_eq!(example_iterations(123), 123);
    }
}
