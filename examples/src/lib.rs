//! Shared helpers for the runnable example binaries.

/// The optimizer iteration budget for an example: `default`, unless the
/// `TREEVQA_EXAMPLE_ITERS` environment variable overrides it.
///
/// CI's examples-smoke job sets the override to a tiny value so every example's full
/// end-to-end path (TreeVQA under noise included) executes on each run without paying
/// for convergence; humans run the defaults.
pub fn example_iterations(default: usize) -> usize {
    std::env::var("TREEVQA_EXAMPLE_ITERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_used_without_override() {
        // The variable is not set in the test environment.
        assert_eq!(example_iterations(123), 123);
    }
}
