//! Vendored minimal stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], the `criterion_group!`/`criterion_main!`
//! macros and [`black_box`] — with a straightforward warmup + fixed-sample-count timing
//! loop.  Every result is also recorded in a process-global registry so bench binaries
//! can emit a machine-readable JSON summary via [`write_summary_json`].
//!
//! Statistical sophistication (bootstrapping, outlier classification, HTML reports) is
//! intentionally out of scope; median/mean/min/max per-iteration times are enough for the
//! before/after kernel comparisons this workspace tracks.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (mirrors `criterion::BatchSize`; the vendored
/// harness times each routine call individually, so the variants only exist for API
/// compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// One recorded benchmark result, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark id as passed to `bench_function`.
    pub id: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Returns a snapshot of every result recorded so far in this process.
pub fn all_results() -> Vec<BenchRecord> {
    RESULTS.lock().unwrap().clone()
}

/// Writes all recorded results to `path` as a JSON array (manually serialized; the
/// vendored `serde` does not serialize).  Returns the number of records written.
pub fn write_summary_json(path: &str) -> std::io::Result<usize> {
    let results = all_results();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)?;
    Ok(results.len())
}

/// The benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and records + prints its result.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                deadline: Instant::now() + self.warm_up_time,
                iters_done: 0,
                elapsed: Duration::ZERO,
            },
        };
        // Warmup: run until the deadline to stabilize caches/branch predictors and learn
        // the per-iteration cost.
        f(&mut bencher);
        let per_iter_estimate = match &bencher.mode {
            Mode::WarmUp {
                iters_done,
                elapsed,
                ..
            } => {
                if *iters_done == 0 {
                    Duration::from_millis(1)
                } else {
                    *elapsed / (*iters_done as u32).max(1)
                }
            }
            _ => unreachable!(),
        };
        let per_sample_budget = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;
        let iters_per_sample =
            (per_sample_budget / per_iter_estimate.as_nanos().max(1) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.mode = Mode::Measure {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if let Mode::Measure { elapsed, .. } = &bencher.mode {
                samples_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let record = BenchRecord {
            id: id.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().unwrap(),
            samples: samples_ns.len(),
            iters_per_sample,
        };
        println!(
            "{:<48} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            record.id,
            format_ns(record.median_ns),
            format_ns(record.mean_ns),
            record.samples,
            record.iters_per_sample
        );
        RESULTS.lock().unwrap().push(record);
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    WarmUp {
        deadline: Instant,
        iters_done: u64,
        elapsed: Duration,
    },
    Measure {
        iters: u64,
        elapsed: Duration,
    },
}

/// Timing handle passed to benchmark closures (mirrors `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::WarmUp {
                deadline,
                iters_done,
                elapsed,
            } => loop {
                let start = Instant::now();
                black_box(routine());
                *elapsed += start.elapsed();
                *iters_done += 1;
                if Instant::now() >= *deadline {
                    break;
                }
            },
            Mode::Measure { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    black_box(routine());
                }
                *elapsed += start.elapsed();
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match &mut self.mode {
            Mode::WarmUp {
                deadline,
                iters_done,
                elapsed,
            } => loop {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                *elapsed += start.elapsed();
                *iters_done += 1;
                if Instant::now() >= *deadline {
                    break;
                }
            },
            Mode::Measure { iters, elapsed } => {
                for _ in 0..*iters {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    *elapsed += start.elapsed();
                }
            }
        }
    }
}

/// Declares a group of benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_results() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("vendored_smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let results = all_results();
        let r = results.iter().find(|r| r.id == "vendored_smoke").unwrap();
        assert!(r.median_ns > 0.0);
        assert_eq!(r.samples, 3);
    }
}
