//! Vendored stand-in for `serde`.
//!
//! The build environment has no reachable crate registry, so this workspace vendors the
//! *interface* of serde that its crates use: the `Serialize`/`Deserialize` marker traits
//! and the corresponding derive macros.  Nothing in the workspace currently performs
//! actual (de)serialization, so the traits are empty and blanket-implemented; swapping
//! this crate for the real `serde` is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (blanket-implemented for every type).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (blanket-implemented for every type).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
