//! Vendored stand-in for `rand` (0.9-style API).
//!
//! Implements exactly the surface this workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] and [`Rng::random_range`] — on top of
//! the public-domain xoshiro256** generator with a SplitMix64 seeding routine.  The
//! streams are deterministic and platform-independent, which is all the experiments
//! require; swap for the real `rand` in the workspace manifest when a registry is
//! available (seeded streams will differ, nothing else).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG (mirrors `rand`'s `StandardUniform`).
pub trait UniformSample: Sized {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire's multiply-shift with a
/// retry loop for exactness.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Retry until the 128-bit product lands outside the biased zone.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (u64::MAX - n + 1) % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG trait (mirrors `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform sample of type `T` (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// RNGs constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15; 4];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!(
            (sum / 10_000.0 - 0.5).abs() < 0.02,
            "mean {}",
            sum / 10_000.0
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.random_range(0..5usize);
            seen[i] = true;
            let j = rng.random_range(0..=4usize);
            assert!(j <= 4);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
