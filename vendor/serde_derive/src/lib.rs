//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The real `serde_derive` generates trait implementations; the vendored `serde` crate
//! instead provides blanket implementations of its marker traits, so these derives only
//! need to exist (and swallow `#[serde(...)]` attributes) for the workspace to compile
//! offline.  See `vendor/README.md` for the substitution rationale.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
