//! Vendored minimal stand-in for `rayon`.
//!
//! No crate registry is reachable from the build environment, so this crate implements
//! the small rayon API subset the simulation kernels use — `(a..b).into_par_iter()` with
//! `with_min_len`, `for_each`, `map`, `sum` and `collect` — as *real* data parallelism on
//! top of [`std::thread::scope`].  Work is split into at most `available_parallelism()`
//! contiguous sub-ranges (respecting the configured minimum chunk length), each executed
//! on its own OS thread; results are reduced in index order, so `collect` preserves
//! ordering and `sum` is deterministic for a fixed thread count.
//!
//! Unlike the real rayon there is no work-stealing pool: threads are spawned per call.
//! For the >= 2^14-amplitude arrays the `qsim`/`qop` kernels gate parallelism on, the
//! ~10 µs spawn cost is negligible next to the memory traffic; callers below the
//! threshold use their serial paths instead.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub mod prelude {
    //! One-stop import mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParIterMap, RangeParIter};
}

/// Programmatic worker-count override, set via [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used for parallel execution.
///
/// Resolution order: [`ThreadPoolBuilder::build_global`] override, then the
/// `RAYON_NUM_THREADS` environment variable, then `available_parallelism()`.
pub fn current_num_threads() -> usize {
    let programmatic = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if programmatic > 0 {
        return programmatic;
    }
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Worker-count configuration (mirrors `rayon::ThreadPoolBuilder` for the global pool).
///
/// This crate has no persistent pool — threads are scoped per call — so "building the
/// global pool" just records the requested worker count.  Unlike the real rayon, calling
/// it repeatedly is allowed and simply updates the count (tests use this to force the
/// parallel kernel paths on single-core machines).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a fixed worker count (0 = auto-detect).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Applies this configuration to the global executor.  Always succeeds.
    pub fn build_global(self) -> Result<(), std::convert::Infallible> {
        THREAD_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Number of contiguous sub-ranges `range` will be split into for `min_len`.
///
/// Every parallel driver computes this exactly once and passes it to [`run_split`]:
/// `current_num_threads()` can change concurrently (via [`ThreadPoolBuilder`]), so a
/// caller that sized a reduction buffer from one read must not let the splitter take a
/// second, possibly larger, read.
fn piece_count(range: &Range<usize>, min_len: usize) -> usize {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return 0;
    }
    (len / min_len.max(1)).clamp(1, current_num_threads())
}

/// Splits `range` into exactly `pieces` contiguous sub-ranges (as computed by
/// [`piece_count`]) and runs `body` on each, in parallel.  The closure receives the
/// sub-range's position (for ordered reduction) and the sub-range itself.
fn run_split<F>(range: Range<usize>, pieces: usize, body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 || pieces == 0 {
        return;
    }
    if pieces == 1 {
        body(0, range);
        return;
    }
    let chunk = len.div_ceil(pieces);
    std::thread::scope(|scope| {
        for piece in 0..pieces {
            let start = range.start + piece * chunk;
            let end = (start + chunk).min(range.end);
            if start >= end {
                break;
            }
            let body = &body;
            scope.spawn(move || body(piece, start..end));
        }
    });
}

/// Conversion into a parallel iterator (mirrors `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel-iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            range: self,
            min_len: 1,
        }
    }
}

/// Parallel iterator over a `Range<usize>`.
#[derive(Clone, Debug)]
pub struct RangeParIter {
    range: Range<usize>,
    min_len: usize,
}

impl RangeParIter {
    /// Sets the minimum number of indices a worker thread will process (mirrors
    /// `IndexedParallelIterator::with_min_len`); prevents over-splitting tiny workloads.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Runs `f` for every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let pieces = piece_count(&self.range, self.min_len);
        run_split(self.range, pieces, |_, sub| {
            for i in sub {
                f(i);
            }
        });
    }

    /// Maps every index through `f` (lazily; drive with `sum` or `collect`).
    pub fn map<T, F>(self, f: F) -> ParIterMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParIterMap { inner: self, f }
    }
}

/// A mapped parallel range iterator (result of [`RangeParIter::map`]).
pub struct ParIterMap<F> {
    inner: RangeParIter,
    f: F,
}

impl<F> ParIterMap<F> {
    /// Sums the mapped values.  Each worker accumulates a partial sum over a contiguous
    /// index block; partials are combined in block order.
    pub fn sum<S>(self) -> S
    where
        F: Fn(usize) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        // `pieces` is read once and passed down: it both sizes the reduction buffer and
        // bounds the split, so a concurrent ThreadPoolBuilder change cannot desynchronize
        // the two.
        let pieces = piece_count(&self.inner.range, self.inner.min_len);
        let mut partials: Vec<Option<S>> = Vec::new();
        partials.resize_with(pieces, || None);
        let slots = SyncSlots(partials.as_mut_ptr());
        let f = &self.f;
        run_split(self.inner.range.clone(), pieces, |piece, sub| {
            let partial: S = sub.map(f).sum();
            // SAFETY: each `piece` index < `pieces` is visited by exactly one worker, and
            // `partials` outlives the scoped threads inside `run_split`.
            unsafe { *slots.slot(piece) = Some(partial) };
        });
        partials.into_iter().flatten().sum()
    }

    /// Collects the mapped values in index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromIterator<T>,
    {
        let start = self.inner.range.start;
        let len = self.inner.range.end.saturating_sub(start);
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(len, || None);
        let slots = SyncSlots(out.as_mut_ptr());
        let f = &self.f;
        let pieces = piece_count(&self.inner.range, self.inner.min_len);
        run_split(self.inner.range.clone(), pieces, |_, sub| {
            for i in sub {
                // SAFETY: every index lands in exactly one sub-range, so each slot is
                // written by exactly one worker while `out` outlives the scope.
                unsafe { *slots.slot(i - start) = Some(f(i)) };
            }
        });
        out.into_iter().map(|v| v.expect("slot filled")).collect()
    }
}

/// Shared mutable slot array for disjoint per-worker writes.
struct SyncSlots<T>(*mut T);
unsafe impl<T: Send> Sync for SyncSlots<T> {}
unsafe impl<T: Send> Send for SyncSlots<T> {}
impl<T> SyncSlots<T> {
    /// # Safety
    /// Callers must write each slot index from at most one thread and keep the backing
    /// allocation alive for the duration of the parallel region.
    unsafe fn slot(&self, index: usize) -> *mut T {
        unsafe { self.0.add(index) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counters: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        (0..1000).into_par_iter().for_each(|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_sum_matches_serial() {
        let parallel: u64 = (0..10_000).into_par_iter().map(|i| i as u64 * 3).sum();
        let serial: u64 = (0..10_000u64).map(|i| i * 3).sum();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (5..105).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v.len(), 100);
        for (k, &x) in v.iter().enumerate() {
            assert_eq!(x, (k + 5) * (k + 5));
        }
    }

    #[test]
    fn min_len_and_empty_ranges() {
        let s: usize = (0..7).into_par_iter().with_min_len(1024).map(|i| i).sum();
        assert_eq!(s, 21);
        let e: usize = (3..3).into_par_iter().map(|i| i).sum();
        assert_eq!(e, 0);
        (0..0).into_par_iter().for_each(|_| panic!("must not run"));
    }
}
