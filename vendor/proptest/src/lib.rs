//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, numeric-range and tuple strategies,
//! [`collection::vec`] and [`sample::select`], plus `prop_assert!`-style assertion macros.
//!
//! Semantics versus the real proptest: cases are generated from a deterministic seed (so
//! CI failures reproduce locally), and a failing case is reported with its case index and
//! generated values via the panic message — but there is **no shrinking**.  That is a
//! deliberate simplification; the equivalence properties this workspace checks have small
//! enough inputs that raw counterexamples are directly debuggable.

use rand::rngs::StdRng;

pub mod test_runner {
    //! Deterministic case-generation RNG and per-test configuration.

    use rand::SeedableRng;

    /// RNG used to generate test cases.
    pub struct TestRng(pub(crate) super::StdRng);

    impl TestRng {
        /// A deterministic generator; every test run sees the same case sequence.
        pub fn deterministic(salt: u64) -> Self {
            TestRng(super::StdRng::seed_from_u64(0x70726F70 ^ salt))
        }

        /// Draws raw bits (used by strategies).
        pub fn rng(&mut self) -> &mut super::StdRng {
            &mut self.0
        }
    }

    /// Per-proptest-block configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value` (mirrors `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value (mirrors `proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng().random_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }
    impl_int_strategy!(usize, u64, u32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Size specification for [`fn@vec`]: a fixed length or a half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng
                .rng()
                .random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed set (mirrors `proptest::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty set");
        Select { options }
    }

    /// Strategy produced by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().random_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Re-export under proptest's public alias.
    pub use crate::test_runner::Config as ProptestConfig;
}

/// Defines property tests (mirrors `proptest::proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a zero-argument test
/// that checks the body against `cases` generated inputs; the case index is reported on
/// failure (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Salt the RNG with the test name so distinct properties see distinct cases.
                let salt = stringify!($name).bytes().fold(0u64, |h, b| {
                    h.wrapping_mul(131).wrapping_add(b as u64)
                });
                let mut rng = $crate::test_runner::TestRng::deterministic(salt);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // Snapshot the generated inputs up front: the body may move them.
                    let inputs_description = [$((stringify!($arg), format!("{:?}", &$arg))),*]
                        .iter()
                        .map(|(n, v)| format!("{n} = {v}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = result {
                        let message = panic
                            .downcast_ref::<String>()
                            .map(|s| s.as_str())
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message,
                            inputs_description,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body (mirrors `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body (mirrors `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body (mirrors `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_respected(x in -1.5f64..2.5, n in 1usize..10) {
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_select_compose(
            v in crate::collection::vec(crate::sample::select(vec!['a', 'b']), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|c| *c == 'a' || *c == 'b'));
        }

        #[test]
        fn prop_map_applies(s in crate::collection::vec(0usize..5, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(s, 3);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_case_and_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
