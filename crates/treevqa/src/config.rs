//! TreeVQA configuration.

use qopt::OptimizerSpec;
use serde::{Deserialize, Serialize};

/// When and how clusters are allowed to split.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// The paper's adaptive policy (Section 5.2.2–5.2.3): after a warm-up phase, monitor
    /// the mixed loss and every member loss over a sliding window; split when the mixed
    /// slope stalls (`|slope| < epsilon_split`) or any member slope turns positive.
    Adaptive {
        /// Iterations each cluster runs before the monitors may trigger a split.
        warmup_iterations: usize,
        /// Sliding-window length (in iterations) for the slope regressions.
        window_size: usize,
        /// Stall threshold on the mixed-loss slope.
        epsilon_split: f64,
    },
    /// Exactly one split, forced when a cluster has executed the given fraction of
    /// `max_cluster_iterations` (the controlled experiment of the paper's Figure 13).
    ForcedSingle {
        /// Fraction (0, 1] of the per-cluster iteration allowance at which to split.
        at_fraction: f64,
    },
    /// Never split (the root cluster runs to the end; used for ablations).
    Never,
}

impl SplitPolicy {
    /// The default adaptive policy with hyperparameters that work well across the
    /// scaled-down benchmark suite.
    pub fn default_adaptive() -> Self {
        SplitPolicy::Adaptive {
            warmup_iterations: 40,
            window_size: 20,
            epsilon_split: 5e-4,
        }
    }
}

/// Configuration of a TreeVQA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaConfig {
    /// Global shot budget `S_max` (Algorithm 1 line 4); the run stops once the backend has
    /// charged at least this many shots.
    pub shot_budget: u64,
    /// Hard cap on optimizer iterations per cluster (safety net so a run always ends even
    /// if the budget is effectively unlimited).
    pub max_cluster_iterations: usize,
    /// The classical optimizer used by every cluster.
    pub optimizer: OptimizerSpec,
    /// Split policy and hyperparameters.
    pub split_policy: SplitPolicy,
    /// Smallest cluster size that is still allowed to split (must be ≥ 2).
    pub min_split_size: usize,
    /// Record an application-level history row every this many controller rounds.
    pub record_every: usize,
    /// Optional per-phase timeout in milliseconds: every round-phase job carries a
    /// deadline this far from its submission, so a phase stuck behind a congested or
    /// stalled executor surfaces `DeadlineExceeded` instead of wedging the controller.
    /// `None` (the default) submits without deadlines.
    #[serde(default)]
    pub phase_timeout_ms: Option<u64>,
    /// Base RNG seed (optimizers and spectral-clustering k-means derive their seeds from
    /// it deterministically).
    pub seed: u64,
}

impl Default for TreeVqaConfig {
    fn default() -> Self {
        TreeVqaConfig {
            shot_budget: u64::MAX,
            max_cluster_iterations: 400,
            optimizer: OptimizerSpec::default_spsa(),
            split_policy: SplitPolicy::default_adaptive(),
            min_split_size: 2,
            record_every: 5,
            phase_timeout_ms: None,
            seed: 7,
        }
    }
}

impl TreeVqaConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `min_split_size < 2`, `record_every == 0`, `max_cluster_iterations == 0`,
    /// or a forced split fraction is outside `(0, 1]`.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Validates internal consistency, reporting the first violated constraint as a
    /// [`ConfigError`] (the fallible form of [`TreeVqaConfig::validate`] used by
    /// [`crate::TreeVqa::try_new`]).
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.min_split_size < 2 {
            return Err(ConfigError("min_split_size must be at least 2"));
        }
        if self.record_every == 0 {
            return Err(ConfigError("record_every must be positive"));
        }
        if self.max_cluster_iterations == 0 {
            return Err(ConfigError("max_cluster_iterations must be positive"));
        }
        if self.phase_timeout_ms == Some(0) {
            return Err(ConfigError("phase_timeout_ms must be positive when set"));
        }
        if let SplitPolicy::ForcedSingle { at_fraction } = self.split_policy {
            if !(at_fraction > 0.0 && at_fraction <= 1.0) {
                return Err(ConfigError("forced split fraction must lie in (0, 1]"));
            }
        }
        if let SplitPolicy::Adaptive {
            window_size,
            warmup_iterations,
            ..
        } = self.split_policy
        {
            if window_size < 2 {
                return Err(ConfigError("window_size must be at least 2"));
            }
            if warmup_iterations < window_size {
                return Err(ConfigError("warmup must cover at least one full window"));
            }
        }
        Ok(())
    }
}

/// A [`TreeVqaConfig`] constraint violation (the message names the constraint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError(pub &'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid TreeVQA configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TreeVqaConfig::default().validate();
    }

    #[test]
    #[should_panic]
    fn tiny_min_split_size_is_rejected() {
        let cfg = TreeVqaConfig {
            min_split_size: 1,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn forced_split_fraction_must_be_positive() {
        let cfg = TreeVqaConfig {
            split_policy: SplitPolicy::ForcedSingle { at_fraction: 0.0 },
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn warmup_shorter_than_window_is_rejected() {
        let cfg = TreeVqaConfig {
            split_policy: SplitPolicy::Adaptive {
                warmup_iterations: 5,
                window_size: 10,
                epsilon_split: 1e-3,
            },
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn forced_and_never_policies_validate() {
        let forced = TreeVqaConfig {
            split_policy: SplitPolicy::ForcedSingle { at_fraction: 0.5 },
            ..Default::default()
        };
        forced.validate();
        let never = TreeVqaConfig {
            split_policy: SplitPolicy::Never,
            ..Default::default()
        };
        never.validate();
        assert_ne!(forced.split_policy, never.split_policy);
    }
}
