//! Execution-tree bookkeeping.
//!
//! TreeVQA's execution forms a tree (paper Figure 2b): the root cluster covers every task,
//! and each split adds two children covering a partition of the parent's tasks.  The tree
//! is recorded for reporting — in particular the *Tree Critical Depth* used by the
//! hyperparameter study (Section 9.1) — and for debugging split behaviour.

use serde::{Deserialize, Serialize};

/// One node of the execution tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeNode {
    /// Node id (index into the tree's node list).
    pub id: usize,
    /// Parent node id (`None` for roots).
    pub parent: Option<usize>,
    /// Tree level (roots are level 1, matching the paper's `HL1B1` naming).
    pub level: usize,
    /// Indices of the application tasks covered by this node's cluster.
    pub task_indices: Vec<usize>,
    /// Optimizer iterations this cluster executed before retiring (or until the run ended).
    pub iterations: usize,
    /// Shots charged while this cluster was active.
    pub shots: u64,
    /// Whether the cluster was retired by a split (`true`) or survived to the end (`false`).
    pub retired: bool,
}

/// The TreeVQA execution tree.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExecutionTree {
    nodes: Vec<TreeNode>,
}

impl ExecutionTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        ExecutionTree::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, parent: Option<usize>, task_indices: Vec<usize>) -> usize {
        let id = self.nodes.len();
        let level = match parent {
            None => 1,
            Some(p) => {
                assert!(p < self.nodes.len(), "parent id out of range");
                self.nodes[p].level + 1
            }
        };
        self.nodes.push(TreeNode {
            id,
            parent,
            level,
            task_indices,
            iterations: 0,
            shots: 0,
            retired: false,
        });
        id
    }

    /// Records final statistics for a node.
    pub fn finalize_node(&mut self, id: usize, iterations: usize, shots: u64, retired: bool) {
        let node = &mut self.nodes[id];
        node.iterations = iterations;
        node.shots = shots;
        node.retired = retired;
    }

    /// Replaces the task list of a node (used when children are registered before their
    /// task partition is known).
    pub fn replace_node_tasks(&mut self, id: usize, task_indices: Vec<usize>) {
        self.nodes[id].task_indices = task_indices;
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf nodes (nodes that were never split).
    pub fn leaves(&self) -> Vec<&TreeNode> {
        self.nodes.iter().filter(|n| !n.retired).collect()
    }

    /// The *Tree Critical Depth*: the maximum level of any leaf, i.e. the longest
    /// root-to-leaf path (paper Section 9.1).  Zero for an empty tree.
    pub fn critical_depth(&self) -> usize {
        self.leaves().iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Total number of splits that occurred.
    pub fn num_splits(&self) -> usize {
        self.nodes.iter().filter(|n| n.retired).count()
    }

    /// A compact multi-line rendering of the tree for logs and experiment reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            let indent = "  ".repeat(node.level.saturating_sub(1));
            out.push_str(&format!(
                "{indent}L{}B{} tasks={:?} iters={} shots={}{}\n",
                node.level,
                node.id,
                node.task_indices,
                node.iterations,
                node.shots,
                if node.retired { " [split]" } else { "" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_level_one_and_children_increment() {
        let mut tree = ExecutionTree::new();
        let root = tree.add_node(None, vec![0, 1, 2, 3]);
        let left = tree.add_node(Some(root), vec![0, 1]);
        let right = tree.add_node(Some(root), vec![2, 3]);
        assert_eq!(tree.nodes()[root].level, 1);
        assert_eq!(tree.nodes()[left].level, 2);
        assert_eq!(tree.nodes()[right].level, 2);
        assert_eq!(tree.num_nodes(), 3);
    }

    #[test]
    fn critical_depth_tracks_deepest_leaf() {
        let mut tree = ExecutionTree::new();
        let root = tree.add_node(None, vec![0, 1, 2]);
        tree.finalize_node(root, 10, 100, true);
        let a = tree.add_node(Some(root), vec![0]);
        let b = tree.add_node(Some(root), vec![1, 2]);
        tree.finalize_node(b, 20, 200, true);
        let c = tree.add_node(Some(b), vec![1]);
        let d = tree.add_node(Some(b), vec![2]);
        tree.finalize_node(a, 30, 300, false);
        tree.finalize_node(c, 5, 50, false);
        tree.finalize_node(d, 5, 50, false);
        assert_eq!(tree.critical_depth(), 3);
        assert_eq!(tree.num_splits(), 2);
        assert_eq!(tree.leaves().len(), 3);
    }

    #[test]
    fn unsplit_root_has_depth_one() {
        let mut tree = ExecutionTree::new();
        let root = tree.add_node(None, vec![0]);
        tree.finalize_node(root, 1, 1, false);
        assert_eq!(tree.critical_depth(), 1);
        assert_eq!(tree.num_splits(), 0);
    }

    #[test]
    fn render_mentions_every_node() {
        let mut tree = ExecutionTree::new();
        let root = tree.add_node(None, vec![0, 1]);
        tree.add_node(Some(root), vec![0]);
        tree.add_node(Some(root), vec![1]);
        let text = tree.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("L1B0"));
        assert!(text.contains("L2B1"));
    }

    #[test]
    fn empty_tree_has_zero_depth() {
        assert_eq!(ExecutionTree::new().critical_depth(), 0);
    }
}
