//! The VQA cluster: TreeVQA's fundamental computational unit (paper Section 5.2,
//! Algorithm 2).
//!
//! A cluster jointly optimizes one shared parameter vector against the *mixed Hamiltonian*
//! of its member tasks, tracks the mixed loss and every member loss through sliding-window
//! slope monitors, and requests a split when optimization stalls or a member is actively
//! harmed by the joint trajectory.
//!
//! Clusters expose the optimizer's propose/observe phases directly
//! ([`VqaCluster::propose`] / [`VqaCluster::observe`]): the controller submits every
//! active cluster's candidate parameter vectors as jobs through the cluster's own
//! execution-service client (one coalesced slate per round phase) and hands each
//! cluster back its results.  A test-only `step` helper drives the same phase protocol
//! against a bare `vqa::Backend` so the monitor/split logic stays unit-testable without
//! an executor.

use crate::config::SplitPolicy;
use crate::monitor::SlopeMonitor;
#[cfg(test)]
use qcircuit::Circuit;
use qop::PauliOp;
use qopt::Optimizer;
use std::sync::Arc;
use vqa::EvalResult;
#[cfg(test)]
use vqa::{Backend, EvalRequest, InitialState};

/// Outcome of one cluster optimization step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep optimizing this cluster.
    Continue,
    /// The split condition fired; the controller should partition this cluster.
    SplitRequested,
}

/// One TreeVQA cluster.
pub struct VqaCluster {
    /// Id of the execution-tree node this cluster corresponds to.
    pub node_id: usize,
    /// Tree level (root = 1).
    pub level: usize,
    /// Indices (into the application's task list) of the member tasks.
    pub task_indices: Vec<usize>,
    member_hamiltonians: Vec<Arc<PauliOp>>,
    mixed_hamiltonian: Arc<PauliOp>,
    params: Vec<f64>,
    optimizer: Box<dyn Optimizer + Send>,
    mixed_monitor: SlopeMonitor,
    member_monitors: Vec<SlopeMonitor>,
    latest_member_losses: Vec<f64>,
    iterations: usize,
    shots_used: u64,
    /// Per-member loss sums accumulated over the current iteration's phases.
    member_sums: Vec<f64>,
    /// Evaluations consumed by the current iteration so far.
    evals_acc: usize,
    /// Shots charged by the current iteration so far.
    shots_acc: u64,
}

impl std::fmt::Debug for VqaCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VqaCluster")
            .field("node_id", &self.node_id)
            .field("level", &self.level)
            .field("task_indices", &self.task_indices)
            .field("iterations", &self.iterations)
            .field("shots_used", &self.shots_used)
            .finish()
    }
}

impl VqaCluster {
    /// Creates a cluster over the given member tasks.
    ///
    /// # Panics
    ///
    /// Panics if no members are given or the member register sizes disagree.
    pub fn new(
        node_id: usize,
        level: usize,
        task_indices: Vec<usize>,
        member_hamiltonians: Vec<Arc<PauliOp>>,
        initial_params: Vec<f64>,
        optimizer: Box<dyn Optimizer + Send>,
        window_size: usize,
    ) -> Self {
        assert!(!member_hamiltonians.is_empty(), "a cluster needs members");
        assert_eq!(
            task_indices.len(),
            member_hamiltonians.len(),
            "task indices and Hamiltonians must correspond"
        );
        let refs: Vec<&PauliOp> = member_hamiltonians.iter().map(|h| h.as_ref()).collect();
        let mixed_hamiltonian = Arc::new(PauliOp::mixed(&refs));
        let num_members = member_hamiltonians.len();
        VqaCluster {
            node_id,
            level,
            task_indices,
            member_hamiltonians,
            mixed_hamiltonian,
            params: initial_params,
            optimizer,
            mixed_monitor: SlopeMonitor::new(window_size.max(2)),
            member_monitors: (0..num_members)
                .map(|_| SlopeMonitor::new(window_size.max(2)))
                .collect(),
            latest_member_losses: vec![f64::NAN; num_members],
            iterations: 0,
            shots_used: 0,
            member_sums: vec![0.0; num_members],
            evals_acc: 0,
            shots_acc: 0,
        }
    }

    /// Number of member tasks.
    pub fn num_members(&self) -> usize {
        self.member_hamiltonians.len()
    }

    /// Shared parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// The cluster's mixed Hamiltonian.
    pub fn mixed_hamiltonian(&self) -> &PauliOp {
        &self.mixed_hamiltonian
    }

    /// The mixed Hamiltonian's shared allocation (jobs submitted to the execution
    /// service `Arc`-share it instead of cloning the operator per candidate).
    pub fn mixed_hamiltonian_arc(&self) -> &Arc<PauliOp> {
        &self.mixed_hamiltonian
    }

    /// The member Hamiltonians, in `task_indices` order (shared allocations, ready to
    /// attach to jobs as free tracking observables).
    pub fn member_hamiltonians(&self) -> &[Arc<PauliOp>] {
        &self.member_hamiltonians
    }

    /// Optimizer iterations executed by this cluster.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Shots charged while this cluster was active.
    pub fn shots_used(&self) -> u64 {
        self.shots_used
    }

    /// The most recent per-member loss values (free tracking evaluations averaged over the
    /// optimizer's objective calls in the latest iteration).  `NaN` before the first step.
    pub fn latest_member_losses(&self) -> &[f64] {
        &self.latest_member_losses
    }

    /// The most recent mixed-loss value.
    pub fn latest_mixed_loss(&self) -> Option<f64> {
        self.mixed_monitor.latest()
    }

    /// Begins (or continues) one optimizer iteration: returns the candidate parameter
    /// vectors whose mixed-Hamiltonian losses the controller must supply to
    /// [`VqaCluster::observe`].  The batch shape follows the optimizer's phase protocol
    /// (SPSA's ± pair, a simplex build, …).
    pub fn propose(&mut self) -> Vec<Vec<f64>> {
        self.optimizer.propose(&self.params)
    }

    /// Consumes one phase's evaluation results (in candidate order).  Each result's
    /// charged value is the mixed loss; its free values are the member losses, in
    /// member order.  Returns `None` while the iteration needs another phase, or the
    /// split decision (Algorithm 2 line 11) once the iteration completes.
    pub fn observe(
        &mut self,
        results: &[EvalResult],
        policy: &SplitPolicy,
        max_cluster_iterations: usize,
        min_split_size: usize,
    ) -> Option<StepOutcome> {
        for result in results {
            for (sum, value) in self.member_sums.iter_mut().zip(&result.free) {
                *sum += value;
            }
            self.shots_acc += result.shots;
        }
        self.evals_acc += results.len();
        let values: Vec<f64> = results.iter().map(|r| r.charged).collect();
        let stats = self.optimizer.observe(&mut self.params, &values)?;

        // Iteration complete: fold the accumulated phase data into the monitors.
        self.shots_used += self.shots_acc;
        self.iterations += 1;
        self.mixed_monitor.push(stats.loss);
        if self.evals_acc > 0 {
            for (latest, sum) in self.latest_member_losses.iter_mut().zip(&self.member_sums) {
                *latest = sum / self.evals_acc as f64;
            }
            for (monitor, &value) in self
                .member_monitors
                .iter_mut()
                .zip(&self.latest_member_losses)
            {
                monitor.push(value);
            }
        }
        self.member_sums.fill(0.0);
        self.evals_acc = 0;
        self.shots_acc = 0;

        Some(self.split_decision(policy, max_cluster_iterations, min_split_size))
    }

    /// Performs one optimizer iteration (Algorithm 2 lines 5–10) and evaluates the split
    /// condition (line 11), driving the propose/observe phases against a bare driver
    /// with one batched submission per phase.
    ///
    /// Test-only: production cluster stepping goes through the execution service (the
    /// controller submits each phase's candidates as jobs via the cluster's
    /// `qexec::ExecClient`), and only `qexec` consumes the `Backend` driver interface.
    /// This in-process drive exists so the cluster's monitor/split logic is unit-testable
    /// without standing up an executor.
    #[cfg(test)]
    pub(crate) fn step(
        &mut self,
        ansatz: &Circuit,
        initial: &InitialState,
        backend: &mut dyn Backend,
        policy: &SplitPolicy,
        max_cluster_iterations: usize,
        min_split_size: usize,
    ) -> StepOutcome {
        loop {
            let candidates = self.propose();
            let members: Vec<&PauliOp> = self
                .member_hamiltonians
                .iter()
                .map(|h| h.as_ref())
                .collect();
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|candidate| EvalRequest {
                    circuit: ansatz,
                    params: candidate,
                    initial,
                    charged_op: self.mixed_hamiltonian.as_ref(),
                    free_ops: &members,
                    stream: None,
                })
                .collect();
            let results = backend.evaluate_batch(&requests);
            drop(requests);
            drop(members);
            if let Some(outcome) =
                self.observe(&results, policy, max_cluster_iterations, min_split_size)
            {
                return outcome;
            }
        }
    }

    /// Evaluates the split condition without stepping (exposed for tests).
    pub fn split_decision(
        &self,
        policy: &SplitPolicy,
        max_cluster_iterations: usize,
        min_split_size: usize,
    ) -> StepOutcome {
        if self.num_members() < min_split_size {
            return StepOutcome::Continue;
        }
        match *policy {
            SplitPolicy::Never => StepOutcome::Continue,
            SplitPolicy::ForcedSingle { at_fraction } => {
                // Only the root splits, exactly once, at the configured point.
                let trigger =
                    ((at_fraction * max_cluster_iterations as f64).ceil() as usize).max(1);
                if self.level == 1 && self.iterations >= trigger {
                    StepOutcome::SplitRequested
                } else {
                    StepOutcome::Continue
                }
            }
            SplitPolicy::Adaptive {
                warmup_iterations,
                epsilon_split,
                ..
            } => {
                if self.iterations <= warmup_iterations || !self.mixed_monitor.is_full() {
                    return StepOutcome::Continue;
                }
                let mixed_slope = match self.mixed_monitor.slope() {
                    Some(s) => s,
                    None => return StepOutcome::Continue,
                };
                let stalled = mixed_slope.abs() < epsilon_split;
                let any_member_worsening = self
                    .member_monitors
                    .iter()
                    .filter_map(|m| m.slope())
                    .any(|s| s > epsilon_split);
                if stalled || any_member_worsening {
                    StepOutcome::SplitRequested
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }

    /// Splits this cluster's members into two child clusters according to `labels`
    /// (one 0/1 label per member, in member order).  Children inherit this cluster's
    /// parameters (warm start, Algorithm 2 line 13).
    ///
    /// # Panics
    ///
    /// Panics if `labels` has the wrong length or does not name two non-empty groups.
    pub fn split_into(
        &self,
        labels: &[usize],
        child_node_ids: (usize, usize),
        make_optimizer: &mut dyn FnMut(usize) -> Box<dyn Optimizer + Send>,
        window_size: usize,
    ) -> (VqaCluster, VqaCluster) {
        assert_eq!(
            labels.len(),
            self.num_members(),
            "one label per member required"
        );
        let mut groups: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (member_pos, &label) in labels.iter().enumerate() {
            assert!(label < 2, "labels must be 0 or 1");
            groups[label].push(member_pos);
        }
        assert!(
            !groups[0].is_empty() && !groups[1].is_empty(),
            "both child clusters must be non-empty"
        );

        let build = |positions: &[usize], node_id: usize, optimizer| {
            VqaCluster::new(
                node_id,
                self.level + 1,
                positions.iter().map(|&p| self.task_indices[p]).collect(),
                positions
                    .iter()
                    .map(|&p| Arc::clone(&self.member_hamiltonians[p]))
                    .collect(),
                self.params.clone(),
                optimizer,
                window_size,
            )
        };
        let first = build(
            &groups[0],
            child_node_ids.0,
            make_optimizer(child_node_ids.0),
        );
        let second = build(
            &groups[1],
            child_node_ids.1,
            make_optimizer(child_node_ids.1),
        );
        (first, second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};
    use qopt::{OptimizerSpec, SpsaConfig};
    use vqa::StatevectorBackend;

    fn make_cluster(hams: Vec<PauliOp>, window: usize) -> (VqaCluster, Circuit) {
        let n = hams[0].num_qubits();
        let ansatz = HardwareEfficientAnsatz::new(n, 1, Entanglement::Linear).build();
        let params = vec![0.0; ansatz.num_parameters()];
        let task_indices = (0..hams.len()).collect();
        let hams: Vec<Arc<PauliOp>> = hams.into_iter().map(Arc::new).collect();
        let optimizer = OptimizerSpec::Spsa(SpsaConfig {
            a: 0.3,
            ..Default::default()
        })
        .build(3);
        let cluster = VqaCluster::new(0, 1, task_indices, hams, params, optimizer, window);
        (cluster, ansatz)
    }

    #[test]
    fn mixed_hamiltonian_is_the_average_of_members() {
        let a = PauliOp::from_labels(2, &[("ZZ", -1.0), ("XI", 0.4)]);
        let b = PauliOp::from_labels(2, &[("ZZ", -0.5), ("IX", 0.2)]);
        let (cluster, _) = make_cluster(vec![a.clone(), b.clone()], 5);
        let expected = PauliOp::mixed(&[&a, &b]);
        assert_eq!(cluster.mixed_hamiltonian(), &expected);
        assert_eq!(cluster.num_members(), 2);
    }

    #[test]
    fn stepping_charges_shots_and_tracks_member_losses() {
        let a = qchem::transverse_field_ising(3, 1.0, 0.4);
        let b = qchem::transverse_field_ising(3, 1.0, 0.5);
        let (mut cluster, ansatz) = make_cluster(vec![a, b], 4);
        let mut backend = StatevectorBackend::with_shots(64);
        let policy = SplitPolicy::Never;
        for _ in 0..5 {
            let outcome = cluster.step(
                &ansatz,
                &InitialState::Basis(0),
                &mut backend,
                &policy,
                100,
                2,
            );
            assert_eq!(outcome, StepOutcome::Continue);
        }
        assert_eq!(cluster.iterations(), 5);
        assert!(cluster.shots_used() > 0);
        assert_eq!(cluster.shots_used(), backend.shots_used());
        assert!(cluster.latest_member_losses().iter().all(|v| v.is_finite()));
        assert!(cluster.latest_mixed_loss().is_some());
    }

    #[test]
    fn singleton_clusters_never_split() {
        let a = PauliOp::from_labels(2, &[("ZZ", -1.0)]);
        let (cluster, _) = make_cluster(vec![a], 3);
        let adaptive = SplitPolicy::Adaptive {
            warmup_iterations: 0,
            window_size: 3,
            epsilon_split: 1e9, // would always trigger if allowed
        };
        assert_eq!(
            cluster.split_decision(&adaptive, 100, 2),
            StepOutcome::Continue
        );
    }

    #[test]
    fn forced_split_fires_at_the_configured_fraction() {
        let a = PauliOp::from_labels(2, &[("ZZ", -1.0)]);
        let b = PauliOp::from_labels(2, &[("ZZ", -0.9)]);
        let (mut cluster, ansatz) = make_cluster(vec![a, b], 3);
        let mut backend = StatevectorBackend::with_shots(16);
        let policy = SplitPolicy::ForcedSingle { at_fraction: 0.5 };
        let mut split_at = None;
        for i in 0..20 {
            let outcome = cluster.step(
                &ansatz,
                &InitialState::Basis(0),
                &mut backend,
                &policy,
                20,
                2,
            );
            if outcome == StepOutcome::SplitRequested {
                split_at = Some(i + 1);
                break;
            }
        }
        assert_eq!(split_at, Some(10));
    }

    #[test]
    fn adaptive_policy_requests_split_when_stalled() {
        // epsilon large enough that any slope counts as "stalled" right after warmup.
        let a = PauliOp::from_labels(2, &[("ZZ", -1.0), ("XI", 0.2)]);
        let b = PauliOp::from_labels(2, &[("ZZ", -0.7), ("IX", 0.1)]);
        let (mut cluster, ansatz) = make_cluster(vec![a, b], 3);
        let mut backend = StatevectorBackend::with_shots(16);
        let policy = SplitPolicy::Adaptive {
            warmup_iterations: 3,
            window_size: 3,
            epsilon_split: 1e6,
        };
        let mut requested = false;
        for _ in 0..10 {
            if cluster.step(
                &ansatz,
                &InitialState::Basis(0),
                &mut backend,
                &policy,
                100,
                2,
            ) == StepOutcome::SplitRequested
            {
                requested = true;
                break;
            }
        }
        assert!(
            requested,
            "split should fire once the warmup and window are satisfied"
        );
    }

    #[test]
    fn split_into_partitions_members_and_inherits_params() {
        let hams: Vec<PauliOp> = (0..4)
            .map(|i| PauliOp::from_labels(2, &[("ZZ", -1.0 - 0.1 * i as f64)]))
            .collect();
        let (mut cluster, ansatz) = make_cluster(hams, 3);
        let mut backend = StatevectorBackend::with_shots(8);
        // A couple of steps so that params move away from zero.
        for _ in 0..3 {
            cluster.step(
                &ansatz,
                &InitialState::Basis(0),
                &mut backend,
                &SplitPolicy::Never,
                100,
                2,
            );
        }
        let parent_params = cluster.params().to_vec();
        let mut make_opt =
            |id: usize| OptimizerSpec::default_spsa().build(id as u64) as Box<dyn Optimizer + Send>;
        let (left, right) = cluster.split_into(&[0, 0, 1, 1], (1, 2), &mut make_opt, 3);
        assert_eq!(left.task_indices, vec![0, 1]);
        assert_eq!(right.task_indices, vec![2, 3]);
        assert_eq!(left.level, 2);
        assert_eq!(right.level, 2);
        assert_eq!(left.params(), parent_params.as_slice());
        assert_eq!(right.params(), parent_params.as_slice());
        assert_eq!(left.num_members() + right.num_members(), 4);
    }

    #[test]
    #[should_panic]
    fn split_into_rejects_empty_groups() {
        let hams = vec![
            PauliOp::from_labels(1, &[("Z", 1.0)]),
            PauliOp::from_labels(1, &[("Z", 0.9)]),
        ];
        let (cluster, _) = make_cluster(hams, 3);
        let mut make_opt =
            |id: usize| OptimizerSpec::default_spsa().build(id as u64) as Box<dyn Optimizer + Send>;
        let _ = cluster.split_into(&[0, 0], (1, 2), &mut make_opt, 3);
    }
}
