//! # treevqa — the TreeVQA tree-structured execution framework
//!
//! This crate is the reproduction of the paper's primary contribution: a plug-and-play
//! wrapper that executes a family of related VQA tasks as a tree of jointly optimized
//! clusters, branching only as tasks diverge, and thereby cutting total execution shots by
//! large factors at equal fidelity.
//!
//! * [`TreeVqa`] — the central controller (Algorithm 1): owns the execution tree, steps
//!   clusters, performs spectral-clustering splits, enforces the shot budget, and
//!   post-processes the final states.
//! * [`VqaCluster`] — the per-cluster optimization unit (Algorithm 2): mixed-Hamiltonian
//!   construction, shared-parameter optimization, sliding-window slope monitoring.
//! * [`TreeVqaConfig`] / [`SplitPolicy`] — hyperparameters, including the forced-split and
//!   never-split modes used by the paper's sensitivity studies (Figures 13–14).
//! * [`ExecutionTree`] — tree bookkeeping, including the *Tree Critical Depth* metric.
//!
//! See the crate-level example on [`TreeVqa`] for an end-to-end run, and the `treevqa-bench`
//! crate for the full experiment harness that regenerates every table and figure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
mod config;
mod controller;
mod monitor;
mod tree;

pub use cluster::{StepOutcome, VqaCluster};
pub use config::{ConfigError, SplitPolicy, TreeVqaConfig};
pub use controller::{TreeVqa, TreeVqaRecord, TreeVqaResult, TreeVqaTaskOutcome};
pub use monitor::SlopeMonitor;
pub use tree::{ExecutionTree, TreeNode};
