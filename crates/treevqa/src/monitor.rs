//! Sliding-window slope monitoring (paper Section 5.2.2).
//!
//! Each cluster tracks the loss of its mixed Hamiltonian and of every member Hamiltonian.
//! After a warm-up phase, the slope of a simple linear regression over the last `W` loss
//! values decides whether the cluster has stalled (`|slope| < ε`) or a member is being
//! actively harmed (`slope_i > 0`), either of which triggers a split.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A fixed-length sliding window of loss values with an incremental linear-regression
/// slope estimate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlopeMonitor {
    capacity: usize,
    values: VecDeque<f64>,
    total_pushed: usize,
}

impl SlopeMonitor {
    /// Creates a monitor with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a slope needs at least two points).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "slope window must hold at least two values");
        SlopeMonitor {
            capacity,
            values: VecDeque::with_capacity(capacity),
            total_pushed: 0,
        }
    }

    /// Window length.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of values pushed over the monitor's lifetime.
    pub fn total_pushed(&self) -> usize {
        self.total_pushed
    }

    /// Pushes a new loss value, evicting the oldest if the window is full.
    pub fn push(&mut self, value: f64) {
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(value);
        self.total_pushed += 1;
    }

    /// `true` once the window holds `capacity` values.
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// The least-squares slope of the window contents against the iteration index, or
    /// `None` until the window is full.
    pub fn slope(&self) -> Option<f64> {
        if !self.is_full() {
            return None;
        }
        let n = self.values.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y: f64 = self.values.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in self.values.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (y - mean_y);
            den += dx * dx;
        }
        Some(num / den)
    }

    /// Clears the window (used when a child cluster inherits a parent's parameters but
    /// should re-establish its own convergence trend).
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// The most recent value pushed, if any.
    pub fn latest(&self) -> Option<f64> {
        self.values.back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_requires_a_full_window() {
        let mut m = SlopeMonitor::new(4);
        m.push(1.0);
        m.push(2.0);
        m.push(3.0);
        assert!(m.slope().is_none());
        m.push(4.0);
        assert!(m.is_full());
        assert!((m.slope().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decreasing_series_has_negative_slope() {
        let mut m = SlopeMonitor::new(5);
        for i in 0..5 {
            m.push(10.0 - 2.0 * i as f64);
        }
        assert!((m.slope().unwrap() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn flat_series_has_near_zero_slope() {
        let mut m = SlopeMonitor::new(6);
        for _ in 0..6 {
            m.push(-3.7);
        }
        assert!(m.slope().unwrap().abs() < 1e-12);
    }

    #[test]
    fn window_slides_and_forgets_old_values() {
        let mut m = SlopeMonitor::new(3);
        // Old decreasing trend followed by an increasing one; the window should only see
        // the increase.
        for v in [10.0, 8.0, 6.0, 7.0, 8.0, 9.0] {
            m.push(v);
        }
        assert!(m.slope().unwrap() > 0.9);
        assert_eq!(m.total_pushed(), 6);
        assert_eq!(m.latest(), Some(9.0));
    }

    #[test]
    fn clear_resets_the_window_but_not_lifetime_count() {
        let mut m = SlopeMonitor::new(3);
        for v in [1.0, 2.0, 3.0] {
            m.push(v);
        }
        m.clear();
        assert!(!m.is_full());
        assert!(m.slope().is_none());
        assert_eq!(m.total_pushed(), 3);
    }

    #[test]
    #[should_panic]
    fn capacity_below_two_panics() {
        let _ = SlopeMonitor::new(1);
    }
}
