//! The TreeVQA central controller (paper Section 5.1, Algorithm 1).
//!
//! The controller owns the execution tree: it creates the root cluster over all tasks,
//! repeatedly steps every active cluster, replaces clusters by their children when a split
//! triggers (spectral clustering on the precomputed Hamiltonian-similarity matrix), stops
//! when the global shot budget is exhausted, and finally post-processes by evaluating
//! every task Hamiltonian against every surviving cluster state and keeping the best.

use crate::cluster::{StepOutcome, VqaCluster};
use crate::config::{SplitPolicy, TreeVqaConfig};
use crate::tree::ExecutionTree;
use cluster::{spectral_bipartition, SimilarityMatrix};
use qexec::{wait_all, EvalJob, ExecClient, ExecError, Executor, JobHandle};
use qop::PauliOp;
use qopt::Optimizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vqa::VqaApplication;

/// Per-task outcome of a TreeVQA run (after post-processing).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaTaskOutcome {
    /// Task label.
    pub task_label: String,
    /// The task's sweep parameter (bond length, field, load scale).
    pub parameter: f64,
    /// The best energy found for this task across all final cluster states.
    pub energy: f64,
    /// Fidelity against the task's reference energy, if available.
    pub fidelity: Option<f64>,
    /// The execution-tree node whose state produced the best energy.
    pub source_node: usize,
}

/// One application-level history row (used for shots-vs-fidelity analysis).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaRecord {
    /// Controller round index.
    pub round: usize,
    /// Cumulative shots charged by the whole run up to this row.
    pub cumulative_shots: u64,
    /// Number of active clusters at this point.
    pub num_clusters: usize,
    /// Best-so-far exact energy per task.
    pub per_task_best_energy: Vec<f64>,
    /// Minimum fidelity across tasks (None if any task lacks a reference energy).
    pub min_fidelity: Option<f64>,
}

/// Result of a TreeVQA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaResult {
    /// Post-processed per-task outcomes, in application task order.
    pub per_task: Vec<TreeVqaTaskOutcome>,
    /// Total shots charged by the run.
    pub total_shots: u64,
    /// Application-level convergence history.
    pub history: Vec<TreeVqaRecord>,
    /// The execution tree.
    pub tree: ExecutionTree,
}

impl TreeVqaResult {
    /// Best energies per task, in task order.
    pub fn energies(&self) -> Vec<f64> {
        self.per_task.iter().map(|t| t.energy).collect()
    }

    /// The minimum fidelity across tasks, if every task has a reference energy.
    pub fn min_fidelity(&self) -> Option<f64> {
        self.per_task
            .iter()
            .map(|t| t.fidelity)
            .try_fold(f64::INFINITY, |acc, f| f.map(|v| acc.min(v)))
    }

    /// The cumulative shots at which the run first achieved `threshold` minimum fidelity,
    /// or `None` if it never did (or fidelity is unavailable).
    pub fn shots_to_reach_min_fidelity(&self, threshold: f64) -> Option<u64> {
        for record in &self.history {
            if record.min_fidelity? >= threshold {
                return Some(record.cumulative_shots);
            }
        }
        None
    }

    /// The best minimum-fidelity the run achieved within a shot budget (0.0 if no history
    /// row fits the budget, `None` if fidelity is unavailable).
    pub fn min_fidelity_at_budget(&self, budget: u64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for record in &self.history {
            if record.cumulative_shots > budget {
                break;
            }
            let f = record.min_fidelity?;
            best = Some(best.map_or(f, |b: f64| b.max(f)));
        }
        Some(best.unwrap_or(0.0))
    }
}

/// The TreeVQA wrapper: construct it around a [`VqaApplication`], then [`TreeVqa::run`]
/// it against a [`qexec::Executor`] — every active cluster becomes its own executor
/// client, so each controller round's candidates flow through the service's fair
/// round-robin scheduler and coalesce into the batched submissions the compiled
/// scratch-pool engine is built for.
///
/// # Examples
///
/// ```
/// use qcircuit::{Entanglement, HardwareEfficientAnsatz};
/// use qexec::Executor;
/// use qopt::{OptimizerSpec, SpsaConfig};
/// use treevqa::{TreeVqa, TreeVqaConfig};
/// use vqa::{InitialState, StatevectorBackend, VqaApplication, VqaTask};
///
/// // Two nearly identical 3-qubit Ising tasks.
/// let tasks: Vec<VqaTask> = [0.45, 0.5]
///     .iter()
///     .map(|&h| {
///         VqaTask::with_computed_reference(
///             format!("h={h}"),
///             h,
///             qchem::transverse_field_ising(3, 1.0, h),
///         )
///     })
///     .collect();
/// let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Circular).build();
/// let app = VqaApplication::new("demo", tasks, ansatz, InitialState::Basis(0));
///
/// let config = TreeVqaConfig {
///     max_cluster_iterations: 40,
///     optimizer: OptimizerSpec::Spsa(SpsaConfig { a: 0.3, ..Default::default() }),
///     ..Default::default()
/// };
/// let tree_vqa = TreeVqa::new(app, config);
/// let executor = Executor::single(StatevectorBackend::with_shots(128));
/// let result = tree_vqa.run(&executor).expect("well-formed application");
/// assert_eq!(result.per_task.len(), 2);
/// assert!(result.total_shots > 0);
/// ```
pub struct TreeVqa {
    application: VqaApplication,
    config: TreeVqaConfig,
    distances: Vec<Vec<f64>>,
}

impl TreeVqa {
    /// Wraps an application with a TreeVQA controller.
    ///
    /// Precomputes the pairwise ℓ1 Hamiltonian-distance matrix used by every later split
    /// (paper Section 5.2.4: this is classical, cheap, and done once).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`TreeVqaConfig::validate`]); use
    /// [`TreeVqa::try_new`] to handle that as a [`crate::ConfigError`] instead.
    pub fn new(application: VqaApplication, config: TreeVqaConfig) -> Self {
        match Self::try_new(application, config) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Wraps an application with a TreeVQA controller, validating the configuration
    /// (the fallible form of [`TreeVqa::new`]).
    #[allow(clippy::needless_range_loop)]
    pub fn try_new(
        application: VqaApplication,
        config: TreeVqaConfig,
    ) -> Result<Self, crate::ConfigError> {
        config.try_validate()?;
        let n = application.tasks.len();
        let mut distances = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = application.tasks[i]
                    .hamiltonian
                    .l1_distance(&application.tasks[j].hamiltonian);
                distances[i][j] = d;
                distances[j][i] = d;
            }
        }
        Ok(TreeVqa {
            application,
            config,
            distances,
        })
    }

    /// The wrapped application.
    pub fn application(&self) -> &VqaApplication {
        &self.application
    }

    /// The configuration.
    pub fn config(&self) -> &TreeVqaConfig {
        &self.config
    }

    /// The precomputed pairwise ℓ1 distance matrix between task Hamiltonians.
    pub fn distance_matrix(&self) -> &[Vec<f64>] {
        &self.distances
    }

    /// The Gaussian-kernel similarity matrix over all tasks (paper Figure 4c).
    pub fn similarity_matrix(&self) -> SimilarityMatrix {
        SimilarityMatrix::from_distances(&self.distances)
    }

    /// Runs TreeVQA starting from all-zero ansatz parameters, submitting every
    /// evaluation as jobs to `executor`'s default backend.
    pub fn run(&self, executor: &Executor) -> Result<TreeVqaResult, ExecError> {
        let zeros = vec![0.0; self.application.num_parameters()];
        self.run_with_initial(executor, &zeros)
    }

    /// Runs TreeVQA starting from the given ansatz parameters (e.g. a CAFQA or Red-QAOA
    /// warm start).
    ///
    /// Every cluster owns its own [`ExecClient`]: each controller round phase, all
    /// active clusters submit their candidates while the executor is paused, and one
    /// resume releases the whole round as a fair round-robin slate — the service
    /// coalesces it into batched driver submissions exactly as the old hand-assembled
    /// mega-batches did, but clusters no longer need to know about each other (and
    /// other executor clients can interleave fairly with the controller).
    ///
    /// Returns an error if `initial_params` does not match the ansatz parameter count,
    /// or if any submission is rejected (malformed application shapes surface here as
    /// structured [`ExecError`]s instead of panics deep in a simulator kernel).
    pub fn run_with_initial(
        &self,
        executor: &Executor,
        initial_params: &[f64],
    ) -> Result<TreeVqaResult, ExecError> {
        if initial_params.len() != self.application.num_parameters() {
            return Err(ExecError::ParameterCountMismatch {
                expected: self.application.num_parameters(),
                got: initial_params.len(),
            });
        }
        let app = &self.application;
        let cfg = &self.config;
        let num_tasks = app.tasks.len();
        // One shared allocation per run for the ansatz and each task Hamiltonian; every
        // job Arc-shares them, which also keeps batches pointer-uniform in the circuit.
        let ansatz = Arc::new(app.ansatz.clone());
        let task_hams: Vec<Arc<PauliOp>> = app
            .tasks
            .iter()
            .map(|t| Arc::new(t.hamiltonian.clone()))
            .collect();
        // The controller's own client for uncharged probes (history records and
        // post-processing); clusters get one client each.
        let probe_client = executor.client();

        let mut tree = ExecutionTree::new();
        let root_id = tree.add_node(None, (0..num_tasks).collect());
        let make_optimizer = |seed_base: u64, node_id: usize, spec: &qopt::OptimizerSpec| {
            spec.build(seed_base.wrapping_add(node_id as u64 * 0x9E37_79B9))
        };
        let root = VqaCluster::new(
            root_id,
            1,
            (0..num_tasks).collect(),
            task_hams.clone(),
            initial_params.to_vec(),
            make_optimizer(cfg.seed, root_id, &cfg.optimizer),
            self.window_size(),
        );
        let mut clusters: Vec<VqaCluster> = vec![root];
        let mut clients: Vec<ExecClient> = vec![executor.client()];

        let mut per_task_best = vec![f64::INFINITY; num_tasks];
        let mut history: Vec<TreeVqaRecord> = Vec::new();
        let mut round = 0usize;
        // Shots charged by this run's jobs, accumulated from per-job results so several
        // controllers (or other clients) can share one executor without conflating
        // budgets.
        let mut total_shots = 0u64;

        loop {
            round += 1;
            if total_shots >= cfg.shot_budget {
                break;
            }
            let any_active = clusters
                .iter()
                .any(|c| c.iterations() < cfg.max_cluster_iterations);
            if !any_active {
                break;
            }

            // Step every active cluster once (Algorithm 1 lines 5–8).  Each cluster
            // submits its proposed candidates through its own client while the executor
            // is paused; the resume releases the whole phase as one fair-ordered slate,
            // which the service executes as one batched driver submission — one
            // compiled ansatz shared across the round, states prepared concurrently.
            // With SPSA every cluster completes in a single phase (2 jobs per cluster);
            // the simplex optimizers may keep a subset of clusters active for further
            // phases.
            let mut split_requests: Vec<usize> = Vec::new();
            let mut active: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| c.iterations() < cfg.max_cluster_iterations)
                .map(|(idx, _)| idx)
                .collect();
            while !active.is_empty() {
                // RAII pause: released at the end of the block even if a propose()
                // panics, so a shared executor can never be left paused by this run.
                let pause = executor.scoped_pause();
                // One deadline for the whole phase when configured: every cluster's
                // jobs expire together, so a stalled phase fails as a unit with
                // `DeadlineExceeded` instead of wedging the controller.
                let phase_deadline = self
                    .config
                    .phase_timeout_ms
                    .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
                let submitted: Result<Vec<(usize, Vec<JobHandle>)>, ExecError> = active
                    .iter()
                    .map(|&idx| {
                        let candidates = clusters[idx].propose();
                        let mixed = Arc::clone(clusters[idx].mixed_hamiltonian_arc());
                        let members = clusters[idx].member_hamiltonians().to_vec();
                        let handles =
                            clients[idx].submit_all(candidates.iter().map(|candidate| {
                                let mut job = EvalJob::new(
                                    Arc::clone(&ansatz),
                                    candidate.clone(),
                                    app.initial_state,
                                    Arc::clone(&mixed),
                                )
                                .with_free_ops(members.clone());
                                if let Some(deadline) = phase_deadline {
                                    job = job.with_deadline(deadline);
                                }
                                job
                            }))?;
                        Ok((idx, handles))
                    })
                    .collect();
                if submitted.is_err() {
                    // A rejected submission aborts the run: cancel every active
                    // cluster's already-queued jobs while the phase pause still
                    // guarantees none started, so no orphaned work executes (and
                    // consumes a shared backend's RNG stream) after we return.
                    for &idx in &active {
                        clients[idx].cancel_queued();
                    }
                }
                // Release the phase pause before waiting (and before error
                // propagation): the slate is fully assembled.
                drop(pause);
                let submitted = submitted?;

                // Hand each cluster its phase results.  The scheduler interleaves the
                // clusters' jobs round-robin; on deterministic backends per-candidate
                // results are order-independent so trajectories match the historical
                // cluster-major loop exactly, while on stochastic backends the noise
                // stream maps to evaluations in the scheduled (equally valid) order —
                // still bit-reproducible via the serial-replay contract.
                let mut still_active = Vec::new();
                for (idx, handles) in submitted {
                    let results = wait_all(&handles)?;
                    total_shots += results.iter().map(|r| r.shots).sum::<u64>();
                    match clusters[idx].observe(
                        &results,
                        &cfg.split_policy,
                        cfg.max_cluster_iterations,
                        cfg.min_split_size,
                    ) {
                        None => still_active.push(idx),
                        Some(StepOutcome::SplitRequested) => split_requests.push(idx),
                        Some(StepOutcome::Continue) => {}
                    }
                }
                active = still_active;
            }

            // Replace split clusters by their children (Algorithm 1 line 9).
            // Process highest index first so earlier indices stay valid.
            split_requests.sort_unstable();
            for &idx in split_requests.iter().rev() {
                let parent = clusters.remove(idx);
                clients.remove(idx);
                let labels = self.partition_labels(&parent);
                tree.finalize_node(
                    parent.node_id,
                    parent.iterations(),
                    parent.shots_used(),
                    true,
                );
                let left_id = tree.add_node(Some(parent.node_id), Vec::new());
                let right_id = tree.add_node(Some(parent.node_id), Vec::new());
                let mut make_opt = |node_id: usize| -> Box<dyn Optimizer + Send> {
                    make_optimizer(cfg.seed, node_id, &cfg.optimizer)
                };
                let (left, right) = parent.split_into(
                    &labels,
                    (left_id, right_id),
                    &mut make_opt,
                    self.window_size(),
                );
                // Now that the children exist we know their task lists; refresh the tree
                // nodes with them.  Each child registers as a fresh executor client.
                Self::set_node_tasks(&mut tree, left_id, left.task_indices.clone());
                Self::set_node_tasks(&mut tree, right_id, right.task_indices.clone());
                clusters.push(left);
                clients.push(executor.client());
                clusters.push(right);
                clients.push(executor.client());
            }

            // Periodic history recording with uncharged probes (metrics only).
            if round % cfg.record_every == 0 {
                self.record_round(
                    &probe_client,
                    &ansatz,
                    &task_hams,
                    &clusters,
                    &mut per_task_best,
                    &mut history,
                    round,
                    total_shots,
                )?;
            }
        }

        // Final record (captures the state at termination).
        self.record_round(
            &probe_client,
            &ansatz,
            &task_hams,
            &clusters,
            &mut per_task_best,
            &mut history,
            round,
            total_shots,
        )?;

        for cluster in &clusters {
            tree.finalize_node(
                cluster.node_id,
                cluster.iterations(),
                cluster.shots_used(),
                false,
            );
        }

        // Post-processing (Algorithm 1 lines 12–17): evaluate every task Hamiltonian on
        // every surviving cluster state and keep the best.  Probe jobs charge no shots.
        let mut per_task = Vec::with_capacity(num_tasks);
        for (task_idx, task) in app.tasks.iter().enumerate() {
            let handles: Vec<JobHandle> = clusters
                .iter()
                .map(|cluster| {
                    probe_client.submit_probe(EvalJob::new(
                        Arc::clone(&ansatz),
                        cluster.params().to_vec(),
                        app.initial_state,
                        Arc::clone(&task_hams[task_idx]),
                    ))
                })
                .collect::<Result<_, _>>()?;
            let mut best_energy = f64::INFINITY;
            let mut best_node = clusters.first().map(|c| c.node_id).unwrap_or(0);
            for (cluster, handle) in clusters.iter().zip(&handles) {
                let energy = handle.wait()?.charged;
                if energy < best_energy {
                    best_energy = energy;
                    best_node = cluster.node_id;
                }
            }
            // The best-so-far trajectory energy may beat the final states (SPSA is noisy);
            // the paper reports achieved accuracy, so keep the better of the two.
            best_energy = best_energy.min(per_task_best[task_idx]);
            per_task.push(TreeVqaTaskOutcome {
                task_label: task.label.clone(),
                parameter: task.parameter,
                energy: best_energy,
                fidelity: task.fidelity(best_energy),
                source_node: best_node,
            });
        }

        Ok(TreeVqaResult {
            per_task,
            total_shots,
            history,
            tree,
        })
    }

    fn window_size(&self) -> usize {
        match self.config.split_policy {
            SplitPolicy::Adaptive { window_size, .. } => window_size,
            _ => 10,
        }
    }

    fn set_node_tasks(tree: &mut ExecutionTree, node_id: usize, tasks: Vec<usize>) {
        tree.replace_node_tasks(node_id, tasks);
    }

    /// Spectral-clustering labels for splitting `cluster` (paper Section 5.2.5).
    fn partition_labels(&self, cluster: &VqaCluster) -> Vec<usize> {
        let members = &cluster.task_indices;
        let sub: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| members.iter().map(|&j| self.distances[i][j]).collect())
            .collect();
        let similarity = SimilarityMatrix::from_distances(&sub);
        spectral_bipartition(&similarity, self.config.seed ^ (cluster.node_id as u64))
    }

    #[allow(clippy::too_many_arguments)]
    fn record_round(
        &self,
        probe_client: &ExecClient,
        ansatz: &Arc<qcircuit::Circuit>,
        task_hams: &[Arc<PauliOp>],
        clusters: &[VqaCluster],
        per_task_best: &mut [f64],
        history: &mut Vec<TreeVqaRecord>,
        round: usize,
        cumulative_shots: u64,
    ) -> Result<(), ExecError> {
        let app = &self.application;
        // Submit every cluster-member probe first, then wait: the whole record becomes
        // one scheduler slate instead of one round trip per member.
        let mut probes: Vec<(usize, JobHandle)> = Vec::new();
        for cluster in clusters {
            for &task_idx in &cluster.task_indices {
                let handle = probe_client.submit_probe(EvalJob::new(
                    Arc::clone(ansatz),
                    cluster.params().to_vec(),
                    app.initial_state,
                    Arc::clone(&task_hams[task_idx]),
                ))?;
                probes.push((task_idx, handle));
            }
        }
        for (task_idx, handle) in probes {
            let energy = handle.wait()?.charged;
            if energy < per_task_best[task_idx] {
                per_task_best[task_idx] = energy;
            }
        }
        let min_fidelity = if per_task_best.iter().all(|e| e.is_finite()) {
            app.min_fidelity(per_task_best)
        } else {
            None
        };
        history.push(TreeVqaRecord {
            round,
            cumulative_shots,
            num_clusters: clusters.len(),
            per_task_best_energy: per_task_best.to_vec(),
            min_fidelity,
        });
        Ok(())
    }
}
