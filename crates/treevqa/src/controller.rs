//! The TreeVQA central controller (paper Section 5.1, Algorithm 1).
//!
//! The controller owns the execution tree: it creates the root cluster over all tasks,
//! repeatedly steps every active cluster, replaces clusters by their children when a split
//! triggers (spectral clustering on the precomputed Hamiltonian-similarity matrix), stops
//! when the global shot budget is exhausted, and finally post-processes by evaluating
//! every task Hamiltonian against every surviving cluster state and keeping the best.

use crate::cluster::{StepOutcome, VqaCluster};
use crate::config::{SplitPolicy, TreeVqaConfig};
use crate::tree::ExecutionTree;
use cluster::{spectral_bipartition, SimilarityMatrix};
use qopt::Optimizer;
use serde::{Deserialize, Serialize};
use vqa::{Backend, VqaApplication};

/// Per-task outcome of a TreeVQA run (after post-processing).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaTaskOutcome {
    /// Task label.
    pub task_label: String,
    /// The task's sweep parameter (bond length, field, load scale).
    pub parameter: f64,
    /// The best energy found for this task across all final cluster states.
    pub energy: f64,
    /// Fidelity against the task's reference energy, if available.
    pub fidelity: Option<f64>,
    /// The execution-tree node whose state produced the best energy.
    pub source_node: usize,
}

/// One application-level history row (used for shots-vs-fidelity analysis).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaRecord {
    /// Controller round index.
    pub round: usize,
    /// Cumulative shots charged by the whole run up to this row.
    pub cumulative_shots: u64,
    /// Number of active clusters at this point.
    pub num_clusters: usize,
    /// Best-so-far exact energy per task.
    pub per_task_best_energy: Vec<f64>,
    /// Minimum fidelity across tasks (None if any task lacks a reference energy).
    pub min_fidelity: Option<f64>,
}

/// Result of a TreeVQA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeVqaResult {
    /// Post-processed per-task outcomes, in application task order.
    pub per_task: Vec<TreeVqaTaskOutcome>,
    /// Total shots charged by the run.
    pub total_shots: u64,
    /// Application-level convergence history.
    pub history: Vec<TreeVqaRecord>,
    /// The execution tree.
    pub tree: ExecutionTree,
}

impl TreeVqaResult {
    /// Best energies per task, in task order.
    pub fn energies(&self) -> Vec<f64> {
        self.per_task.iter().map(|t| t.energy).collect()
    }

    /// The minimum fidelity across tasks, if every task has a reference energy.
    pub fn min_fidelity(&self) -> Option<f64> {
        self.per_task
            .iter()
            .map(|t| t.fidelity)
            .try_fold(f64::INFINITY, |acc, f| f.map(|v| acc.min(v)))
    }

    /// The cumulative shots at which the run first achieved `threshold` minimum fidelity,
    /// or `None` if it never did (or fidelity is unavailable).
    pub fn shots_to_reach_min_fidelity(&self, threshold: f64) -> Option<u64> {
        for record in &self.history {
            if record.min_fidelity? >= threshold {
                return Some(record.cumulative_shots);
            }
        }
        None
    }

    /// The best minimum-fidelity the run achieved within a shot budget (0.0 if no history
    /// row fits the budget, `None` if fidelity is unavailable).
    pub fn min_fidelity_at_budget(&self, budget: u64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for record in &self.history {
            if record.cumulative_shots > budget {
                break;
            }
            let f = record.min_fidelity?;
            best = Some(best.map_or(f, |b: f64| b.max(f)));
        }
        Some(best.unwrap_or(0.0))
    }
}

/// The TreeVQA wrapper: construct it around a [`VqaApplication`], then [`TreeVqa::run`] it
/// on any [`Backend`].
///
/// # Examples
///
/// ```
/// use qcircuit::{Entanglement, HardwareEfficientAnsatz};
/// use qopt::{OptimizerSpec, SpsaConfig};
/// use treevqa::{TreeVqa, TreeVqaConfig};
/// use vqa::{InitialState, StatevectorBackend, VqaApplication, VqaTask};
///
/// // Two nearly identical 3-qubit Ising tasks.
/// let tasks: Vec<VqaTask> = [0.45, 0.5]
///     .iter()
///     .map(|&h| {
///         VqaTask::with_computed_reference(
///             format!("h={h}"),
///             h,
///             qchem::transverse_field_ising(3, 1.0, h),
///         )
///     })
///     .collect();
/// let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Circular).build();
/// let app = VqaApplication::new("demo", tasks, ansatz, InitialState::Basis(0));
///
/// let config = TreeVqaConfig {
///     max_cluster_iterations: 40,
///     optimizer: OptimizerSpec::Spsa(SpsaConfig { a: 0.3, ..Default::default() }),
///     ..Default::default()
/// };
/// let tree_vqa = TreeVqa::new(app, config);
/// let mut backend = StatevectorBackend::with_shots(128);
/// let result = tree_vqa.run(&mut backend);
/// assert_eq!(result.per_task.len(), 2);
/// assert!(result.total_shots > 0);
/// ```
pub struct TreeVqa {
    application: VqaApplication,
    config: TreeVqaConfig,
    distances: Vec<Vec<f64>>,
}

impl TreeVqa {
    /// Wraps an application with a TreeVQA controller.
    ///
    /// Precomputes the pairwise ℓ1 Hamiltonian-distance matrix used by every later split
    /// (paper Section 5.2.4: this is classical, cheap, and done once).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`TreeVqaConfig::validate`]).
    #[allow(clippy::needless_range_loop)]
    pub fn new(application: VqaApplication, config: TreeVqaConfig) -> Self {
        config.validate();
        let n = application.tasks.len();
        let mut distances = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = application.tasks[i]
                    .hamiltonian
                    .l1_distance(&application.tasks[j].hamiltonian);
                distances[i][j] = d;
                distances[j][i] = d;
            }
        }
        TreeVqa {
            application,
            config,
            distances,
        }
    }

    /// The wrapped application.
    pub fn application(&self) -> &VqaApplication {
        &self.application
    }

    /// The configuration.
    pub fn config(&self) -> &TreeVqaConfig {
        &self.config
    }

    /// The precomputed pairwise ℓ1 distance matrix between task Hamiltonians.
    pub fn distance_matrix(&self) -> &[Vec<f64>] {
        &self.distances
    }

    /// The Gaussian-kernel similarity matrix over all tasks (paper Figure 4c).
    pub fn similarity_matrix(&self) -> SimilarityMatrix {
        SimilarityMatrix::from_distances(&self.distances)
    }

    /// Runs TreeVQA starting from all-zero ansatz parameters.
    pub fn run(&self, backend: &mut dyn Backend) -> TreeVqaResult {
        let zeros = vec![0.0; self.application.num_parameters()];
        self.run_with_initial(backend, &zeros)
    }

    /// Runs TreeVQA starting from the given ansatz parameters (e.g. a CAFQA or Red-QAOA
    /// warm start).
    ///
    /// # Panics
    ///
    /// Panics if `initial_params` does not match the ansatz parameter count.
    pub fn run_with_initial(
        &self,
        backend: &mut dyn Backend,
        initial_params: &[f64],
    ) -> TreeVqaResult {
        assert_eq!(
            initial_params.len(),
            self.application.num_parameters(),
            "initial parameter vector does not match the ansatz"
        );
        let app = &self.application;
        let cfg = &self.config;
        let num_tasks = app.tasks.len();
        let shots_at_start = backend.shots_used();

        let mut tree = ExecutionTree::new();
        let root_id = tree.add_node(None, (0..num_tasks).collect());
        let make_optimizer = |seed_base: u64, node_id: usize, spec: &qopt::OptimizerSpec| {
            spec.build(seed_base.wrapping_add(node_id as u64 * 0x9E37_79B9))
        };
        let root = VqaCluster::new(
            root_id,
            1,
            (0..num_tasks).collect(),
            app.tasks.iter().map(|t| t.hamiltonian.clone()).collect(),
            initial_params.to_vec(),
            make_optimizer(cfg.seed, root_id, &cfg.optimizer),
            self.window_size(),
        );
        let mut clusters: Vec<VqaCluster> = vec![root];

        let mut per_task_best = vec![f64::INFINITY; num_tasks];
        let mut history: Vec<TreeVqaRecord> = Vec::new();
        let mut round = 0usize;

        loop {
            round += 1;
            let total_shots = backend.shots_used() - shots_at_start;
            if total_shots >= cfg.shot_budget {
                break;
            }
            let any_active = clusters
                .iter()
                .any(|c| c.iterations() < cfg.max_cluster_iterations);
            if !any_active {
                break;
            }

            // Step every active cluster once (Algorithm 1 lines 5–8).  Instead of
            // evaluating clusters one at a time, gather every active cluster's proposed
            // candidate parameter vectors and submit them as ONE backend batch per round
            // phase — the dense backends then share one compiled ansatz across the whole
            // round and data-parallelize across the candidate states.  With SPSA every
            // cluster completes in a single phase (batch = 2 × active clusters); the
            // simplex optimizers may keep a subset of clusters active for further phases.
            let mut split_requests: Vec<usize> = Vec::new();
            let mut active: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| c.iterations() < cfg.max_cluster_iterations)
                .map(|(idx, _)| idx)
                .collect();
            while !active.is_empty() {
                let proposals: Vec<(usize, Vec<Vec<f64>>)> = active
                    .iter()
                    .map(|&idx| (idx, clusters[idx].propose()))
                    .collect();
                let member_refs: Vec<Vec<&qop::PauliOp>> = proposals
                    .iter()
                    .map(|(idx, _)| clusters[*idx].member_hamiltonians().iter().collect())
                    .collect();
                let mut requests = Vec::new();
                for ((idx, candidates), members) in proposals.iter().zip(&member_refs) {
                    let mixed = clusters[*idx].mixed_hamiltonian();
                    for candidate in candidates {
                        requests.push(vqa::EvalRequest {
                            circuit: &app.ansatz,
                            params: candidate,
                            initial: &app.initial_state,
                            charged_op: mixed,
                            free_ops: members,
                        });
                    }
                }
                let results = backend.evaluate_batch(&requests);
                drop(requests);

                // Hand each cluster its slice of the results, cluster-major in proposal
                // order.  For single-phase optimizers (SPSA, the paper's default) this
                // is exactly the order the old serial per-cluster loop evaluated, so
                // trajectories are unchanged on every backend.  Multi-phase optimizers
                // (COBYLA/Nelder–Mead) interleave clusters' phases round-robin instead
                // of draining one cluster at a time; on deterministic backends the
                // trajectories are still identical, while on stochastic backends the
                // noise stream maps to evaluations in a different (equally valid)
                // order.
                let mut offset = 0usize;
                let mut still_active = Vec::new();
                for (idx, candidates) in &proposals {
                    let slice = &results[offset..offset + candidates.len()];
                    offset += candidates.len();
                    match clusters[*idx].observe(
                        slice,
                        &cfg.split_policy,
                        cfg.max_cluster_iterations,
                        cfg.min_split_size,
                    ) {
                        None => still_active.push(*idx),
                        Some(StepOutcome::SplitRequested) => split_requests.push(*idx),
                        Some(StepOutcome::Continue) => {}
                    }
                }
                active = still_active;
            }

            // Replace split clusters by their children (Algorithm 1 line 9).
            // Process highest index first so earlier indices stay valid.
            split_requests.sort_unstable();
            for &idx in split_requests.iter().rev() {
                let parent = clusters.remove(idx);
                let labels = self.partition_labels(&parent);
                tree.finalize_node(
                    parent.node_id,
                    parent.iterations(),
                    parent.shots_used(),
                    true,
                );
                let left_id = tree.add_node(Some(parent.node_id), Vec::new());
                let right_id = tree.add_node(Some(parent.node_id), Vec::new());
                let mut make_opt = |node_id: usize| -> Box<dyn Optimizer + Send> {
                    make_optimizer(cfg.seed, node_id, &cfg.optimizer)
                };
                let (left, right) = parent.split_into(
                    &labels,
                    (left_id, right_id),
                    &mut make_opt,
                    self.window_size(),
                );
                // Now that the children exist we know their task lists; refresh the tree
                // nodes with them.
                Self::set_node_tasks(&mut tree, left_id, left.task_indices.clone());
                Self::set_node_tasks(&mut tree, right_id, right.task_indices.clone());
                clusters.push(left);
                clusters.push(right);
            }

            // Periodic history recording with uncharged probes (metrics only).
            if round % cfg.record_every == 0 {
                let shots_so_far = backend.shots_used() - shots_at_start;
                self.record_round(
                    backend,
                    &clusters,
                    &mut per_task_best,
                    &mut history,
                    round,
                    shots_so_far,
                );
            }
        }

        // Final record (captures the state at termination).
        let final_shots = backend.shots_used() - shots_at_start;
        self.record_round(
            backend,
            &clusters,
            &mut per_task_best,
            &mut history,
            round,
            final_shots,
        );

        for cluster in &clusters {
            tree.finalize_node(
                cluster.node_id,
                cluster.iterations(),
                cluster.shots_used(),
                false,
            );
        }

        // Post-processing (Algorithm 1 lines 12–17): evaluate every task Hamiltonian on
        // every surviving cluster state and keep the best.  No shots are charged.
        let mut per_task = Vec::with_capacity(num_tasks);
        for (task_idx, task) in app.tasks.iter().enumerate() {
            let mut best_energy = f64::INFINITY;
            let mut best_node = clusters.first().map(|c| c.node_id).unwrap_or(0);
            for cluster in &clusters {
                let energy = backend.probe(
                    &app.ansatz,
                    cluster.params(),
                    &app.initial_state,
                    &task.hamiltonian,
                );
                if energy < best_energy {
                    best_energy = energy;
                    best_node = cluster.node_id;
                }
            }
            // The best-so-far trajectory energy may beat the final states (SPSA is noisy);
            // the paper reports achieved accuracy, so keep the better of the two.
            best_energy = best_energy.min(per_task_best[task_idx]);
            per_task.push(TreeVqaTaskOutcome {
                task_label: task.label.clone(),
                parameter: task.parameter,
                energy: best_energy,
                fidelity: task.fidelity(best_energy),
                source_node: best_node,
            });
        }

        TreeVqaResult {
            per_task,
            total_shots: final_shots,
            history,
            tree,
        }
    }

    fn window_size(&self) -> usize {
        match self.config.split_policy {
            SplitPolicy::Adaptive { window_size, .. } => window_size,
            _ => 10,
        }
    }

    fn set_node_tasks(tree: &mut ExecutionTree, node_id: usize, tasks: Vec<usize>) {
        tree.replace_node_tasks(node_id, tasks);
    }

    /// Spectral-clustering labels for splitting `cluster` (paper Section 5.2.5).
    fn partition_labels(&self, cluster: &VqaCluster) -> Vec<usize> {
        let members = &cluster.task_indices;
        let sub: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| members.iter().map(|&j| self.distances[i][j]).collect())
            .collect();
        let similarity = SimilarityMatrix::from_distances(&sub);
        spectral_bipartition(&similarity, self.config.seed ^ (cluster.node_id as u64))
    }

    #[allow(clippy::too_many_arguments)]
    fn record_round(
        &self,
        backend: &mut dyn Backend,
        clusters: &[VqaCluster],
        per_task_best: &mut [f64],
        history: &mut Vec<TreeVqaRecord>,
        round: usize,
        cumulative_shots: u64,
    ) {
        let app = &self.application;
        for cluster in clusters {
            for &task_idx in &cluster.task_indices {
                let energy = backend.probe(
                    &app.ansatz,
                    cluster.params(),
                    &app.initial_state,
                    &app.tasks[task_idx].hamiltonian,
                );
                if energy < per_task_best[task_idx] {
                    per_task_best[task_idx] = energy;
                }
            }
        }
        let min_fidelity = if per_task_best.iter().all(|e| e.is_finite()) {
            app.min_fidelity(per_task_best)
        } else {
            None
        };
        history.push(TreeVqaRecord {
            round,
            cumulative_shots,
            num_clusters: clusters.len(),
            per_task_best_energy: per_task_best.to_vec(),
            min_fidelity,
        });
    }
}
