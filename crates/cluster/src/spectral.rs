//! Similarity matrices and spectral clustering (normalized-Laplacian bipartition).
//!
//! Implements the split machinery of the paper's Section 5.2.4–5.2.5: pairwise distances
//! are turned into a Gaussian (RBF) affinity matrix with the median pairwise distance as
//! the bandwidth, and a cluster split partitions its members by spectral clustering on
//! that affinity matrix (normalized Laplacian → leading eigenvectors → k-means).

use crate::eigen::symmetric_eigen;
use crate::kmeans::kmeans;
use serde::{Deserialize, Serialize};

/// A symmetric affinity (similarity) matrix over N items.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    values: Vec<Vec<f64>>,
}

impl SimilarityMatrix {
    /// Wraps an explicit symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or not symmetric.
    pub fn new(values: Vec<Vec<f64>>) -> Self {
        let n = values.len();
        for (i, row) in values.iter().enumerate() {
            assert_eq!(row.len(), n, "similarity matrix must be square");
            for (j, &v) in row.iter().enumerate() {
                assert!(
                    (v - values[j][i]).abs() < 1e-9,
                    "similarity matrix must be symmetric"
                );
            }
        }
        SimilarityMatrix { values }
    }

    /// Builds the Gaussian (RBF) affinity matrix `S_ij = exp(−d_ij² / (2σ²))` from a
    /// pairwise distance matrix, with `σ` equal to the median non-zero pairwise distance
    /// (the paper's choice).  If every distance is zero (identical items), all affinities
    /// are 1.
    ///
    /// # Panics
    ///
    /// Panics if `distances` is not square/symmetric.
    pub fn from_distances(distances: &[Vec<f64>]) -> Self {
        let n = distances.len();
        let mut off_diag: Vec<f64> = Vec::new();
        for (i, row) in distances.iter().enumerate() {
            assert_eq!(row.len(), n, "distance matrix must be square");
            for (j, &d) in row.iter().enumerate() {
                assert!(
                    (d - distances[j][i]).abs() < 1e-9,
                    "distance matrix must be symmetric"
                );
                if i < j {
                    off_diag.push(d);
                }
            }
        }
        let sigma = median(&mut off_diag).max(1e-12);
        let values = distances
            .iter()
            .map(|row| {
                row.iter()
                    .map(|d| (-(d * d) / (2.0 * sigma * sigma)).exp())
                    .collect()
            })
            .collect();
        SimilarityMatrix { values }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the matrix covers zero items.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The affinity between items `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i][j]
    }

    /// The raw matrix.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// The symmetric normalized Laplacian `L = I − D^{-1/2} S D^{-1/2}`.
    pub fn normalized_laplacian(&self) -> Vec<Vec<f64>> {
        let n = self.len();
        let degrees: Vec<f64> = self.values.iter().map(|row| row.iter().sum()).collect();
        let inv_sqrt: Vec<f64> = degrees
            .iter()
            .map(|&d| if d > 1e-300 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut lap = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let norm = inv_sqrt[i] * self.values[i][j] * inv_sqrt[j];
                lap[i][j] = if i == j { 1.0 - norm } else { -norm };
            }
        }
        lap
    }
}

/// Splits N items into two groups by spectral clustering on their affinity matrix.
///
/// Returns a label (0 or 1) per item.  Both groups are guaranteed non-empty for `N ≥ 2`
/// (falling back to a Fiedler-vector median split if k-means collapses).
///
/// # Panics
///
/// Panics if the matrix has fewer than 2 items.
///
/// # Examples
///
/// ```
/// use cluster::{spectral_bipartition, SimilarityMatrix};
///
/// // Two obvious groups: {0, 1} similar to each other, {2, 3} similar to each other.
/// let s = SimilarityMatrix::new(vec![
///     vec![1.0, 0.9, 0.1, 0.1],
///     vec![0.9, 1.0, 0.1, 0.1],
///     vec![0.1, 0.1, 1.0, 0.9],
///     vec![0.1, 0.1, 0.9, 1.0],
/// ]);
/// let labels = spectral_bipartition(&s, 7);
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[2], labels[3]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn spectral_bipartition(similarity: &SimilarityMatrix, seed: u64) -> Vec<usize> {
    let n = similarity.len();
    assert!(n >= 2, "cannot bipartition fewer than two items");
    if n == 2 {
        return vec![0, 1];
    }

    let laplacian = similarity.normalized_laplacian();
    let eig = symmetric_eigen(&laplacian);

    // Embed each item with the two smallest-eigenvalue eigenvectors and row-normalize.
    let embedding: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let raw = vec![eig.eigenvectors[0][i], eig.eigenvectors[1][i]];
            let norm: f64 = raw.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                raw.into_iter().map(|v| v / norm).collect()
            } else {
                raw
            }
        })
        .collect();

    let result = kmeans(&embedding, 2, 200, seed);
    let count0 = result.labels.iter().filter(|&&l| l == 0).count();
    if count0 > 0 && count0 < n {
        return result.labels;
    }

    // Fallback: split by the median of the Fiedler vector (second-smallest eigenvector).
    let fiedler = &eig.eigenvectors[1];
    let mut sorted: Vec<f64> = fiedler.clone();
    let med = median(&mut sorted);
    let mut labels: Vec<usize> = fiedler.iter().map(|&v| usize::from(v > med)).collect();
    // Guarantee both sides are non-empty even with ties at the median.
    if labels.iter().all(|&l| l == labels[0]) {
        let (argmax, _) = fiedler
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        for (i, l) in labels.iter_mut().enumerate() {
            *l = usize::from(i == argmax);
        }
    }
    labels
}

/// Median of a slice (sorts the provided buffer). Returns 0.0 for an empty slice.
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = values.len() / 2;
    if values.len() % 2 == 0 {
        0.5 * (values[mid - 1] + values[mid])
    } else {
        values[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_affinity_is_one_on_diagonal_and_decreasing() {
        let distances = vec![
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 3.0],
            vec![4.0, 3.0, 0.0],
        ];
        let s = SimilarityMatrix::from_distances(&distances);
        for i in 0..3 {
            assert!((s.get(i, i) - 1.0).abs() < 1e-12);
        }
        assert!(
            s.get(0, 1) > s.get(0, 2),
            "closer pairs must be more similar"
        );
        assert!(s.get(0, 1) <= 1.0 && s.get(0, 2) > 0.0);
    }

    #[test]
    fn identical_items_produce_full_affinity() {
        let distances = vec![vec![0.0; 3]; 3];
        let s = SimilarityMatrix::from_distances(&distances);
        for i in 0..3 {
            for j in 0..3 {
                assert!((s.get(i, j) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn laplacian_rows_reflect_normalization() {
        let s = SimilarityMatrix::new(vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
        let lap = s.normalized_laplacian();
        // Symmetric, diagonal in (0, 1], off-diagonal negative.
        assert!((lap[0][1] - lap[1][0]).abs() < 1e-12);
        assert!(lap[0][0] > 0.0 && lap[0][0] <= 1.0);
        assert!(lap[0][1] < 0.0);
    }

    #[test]
    fn bipartition_of_two_chains_groups_neighbours() {
        // Items 0-4 close together, 5-9 close together, large gap between groups.
        let positions: Vec<f64> = (0..5)
            .map(|i| i as f64 * 0.1)
            .chain((0..5).map(|i| 10.0 + i as f64 * 0.1))
            .collect();
        let n = positions.len();
        let distances: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| (positions[i] - positions[j]).abs())
                    .collect()
            })
            .collect();
        let s = SimilarityMatrix::from_distances(&distances);
        let labels = spectral_bipartition(&s, 11);
        for i in 1..5 {
            assert_eq!(labels[i], labels[0]);
        }
        for i in 6..10 {
            assert_eq!(labels[i], labels[5]);
        }
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn two_items_always_split() {
        let s = SimilarityMatrix::new(vec![vec![1.0, 0.99], vec![0.99, 1.0]]);
        let labels = spectral_bipartition(&s, 0);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn bipartition_always_produces_two_nonempty_groups() {
        // Nearly uniform similarities: hard case where k-means may collapse.
        let n = 7;
        let values: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.8 }).collect())
            .collect();
        let s = SimilarityMatrix::new(values);
        let labels = spectral_bipartition(&s, 5);
        let zeros = labels.iter().filter(|&&l| l == 0).count();
        assert!(zeros > 0 && zeros < n);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
    }
}
