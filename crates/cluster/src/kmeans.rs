//! Seeded k-means clustering in low-dimensional embedding space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster label (0..k) assigned to each point.
    pub labels: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Runs Lloyd's k-means with k-means++-style seeding.
///
/// # Panics
///
/// Panics if `k == 0`, `points` is empty, `k > points.len()`, or the points have
/// inconsistent dimensionality.
///
/// # Examples
///
/// ```
/// use cluster::kmeans;
///
/// let points = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
/// let result = kmeans(&points, 2, 100, 7);
/// assert_eq!(result.labels[0], result.labels[1]);
/// assert_eq!(result.labels[2], result.labels[3]);
/// assert_ne!(result.labels[0], result.labels[2]);
/// ```
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iterations: usize, seed: u64) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "no points to cluster");
    assert!(k <= points.len(), "more clusters than points");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensionality"
    );

    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[rng.random_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.random::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    let mut labels = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iterations {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (best, _) = centroids
                .iter()
                .enumerate()
                .map(|(c, centroid)| (c, squared_distance(p, centroid)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &label) in points.iter().zip(&labels) {
            counts[label] += 1;
            for (s, x) in sums[label].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                *c = sum.iter().map(|s| s / count as f64).collect();
            } else {
                // Re-seed an empty cluster at the point farthest from its centroid.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        squared_distance(
                            a.1,
                            &centroids_snapshot(points, &labels, dim, k)[labels[a.0]],
                        )
                        .partial_cmp(&squared_distance(
                            b.1,
                            &centroids_snapshot(points, &labels, dim, k)[labels[b.0]],
                        ))
                        .unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                *c = points[far].clone();
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| squared_distance(p, &centroids[l]))
        .sum();
    KMeansResult {
        labels,
        centroids,
        inertia,
        iterations,
    }
}

fn centroids_snapshot(
    points: &[Vec<f64>],
    labels: &[usize],
    dim: usize,
    k: usize,
) -> Vec<Vec<f64>> {
    let mut sums = vec![vec![0.0f64; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &label) in points.iter().zip(labels) {
        counts[label] += 1;
        for (s, x) in sums[label].iter_mut().zip(p) {
            *s += x;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(sum, count)| {
            if count > 0 {
                sum.into_iter().map(|s| s / count as f64).collect()
            } else {
                vec![0.0; dim]
            }
        })
        .collect()
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_blobs() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            points.push(vec![3.0 + 0.01 * i as f64, 3.0]);
        }
        let result = kmeans(&points, 2, 100, 42);
        let first = result.labels[0];
        for i in (0..20).step_by(2) {
            assert_eq!(result.labels[i], first);
        }
        for i in (1..20).step_by(2) {
            assert_ne!(result.labels[i], first);
        }
        assert!(result.inertia < 0.1);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let result = kmeans(&points, 3, 50, 1);
        assert!(result.inertia < 1e-18);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64])
            .collect();
        let a = kmeans(&points, 3, 100, 9);
        let b = kmeans(&points, 3, 100, 9);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = vec![vec![1.0, 1.0]; 6];
        let result = kmeans(&points, 2, 20, 3);
        assert_eq!(result.labels.len(), 6);
        assert!(result.inertia < 1e-18);
    }

    #[test]
    #[should_panic]
    fn too_many_clusters_panics() {
        let points = vec![vec![0.0]];
        let _ = kmeans(&points, 2, 10, 0);
    }
}
