//! # cluster — similarity and spectral-clustering machinery for TreeVQA splits
//!
//! Implements the split-side substrate of the paper: pairwise Hamiltonian distances are
//! converted to a Gaussian affinity matrix ([`SimilarityMatrix::from_distances`], with the
//! median pairwise distance as bandwidth), and a triggered split partitions the cluster's
//! members by spectral clustering on that matrix ([`spectral_bipartition`]: normalized
//! Laplacian → leading eigenvectors → k-means).  The dense symmetric eigensolver
//! ([`symmetric_eigen`]) and seeded [`kmeans`] are exposed as reusable building blocks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod eigen;
mod kmeans;
mod spectral;

pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use kmeans::{kmeans, KMeansResult};
pub use spectral::{spectral_bipartition, SimilarityMatrix};
