//! Dense symmetric eigen-decomposition via the cyclic Jacobi method.
//!
//! Spectral clustering needs the smallest eigenvectors of the normalized graph Laplacian.
//! Task counts in the paper are small (≤ 30 Hamiltonians per application), so a dense
//! Jacobi sweep is more than fast enough and numerically robust.

/// Eigen-decomposition of a real symmetric matrix.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// `eigenvectors[i]` is the eigenvector (length n) paired with `eigenvalues[i]`.
    pub eigenvectors: Vec<Vec<f64>>,
}

/// Computes all eigenvalues/eigenvectors of a real symmetric matrix with the cyclic Jacobi
/// method.
///
/// # Panics
///
/// Panics if the matrix is not square, is empty, or is not (approximately) symmetric.
///
/// # Examples
///
/// ```
/// use cluster::symmetric_eigen;
///
/// let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
/// let eig = symmetric_eigen(&m);
/// assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-10);
/// ```
#[allow(clippy::needless_range_loop)]
pub fn symmetric_eigen(matrix: &[Vec<f64>]) -> SymmetricEigen {
    let n = matrix.len();
    assert!(n > 0, "matrix must be non-empty");
    for (i, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n, "matrix must be square");
        for (j, &v) in row.iter().enumerate() {
            assert!(
                (v - matrix[j][i]).abs() < 1e-9,
                "matrix must be symmetric (mismatch at ({i},{j}))"
            );
        }
    }

    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    // v starts as identity and accumulates rotations; columns become eigenvectors.
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off_diag = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off_diag += a[i][j] * a[i][j];
            }
        }
        if off_diag.sqrt() < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-18 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }

    // Extract and sort.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|col| {
            let value = a[col][col];
            let vector: Vec<f64> = (0..n).map(|row| v[row][col]).collect();
            (value, vector)
        })
        .collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));

    SymmetricEigen {
        eigenvalues: pairs.iter().map(|(val, _)| *val).collect(),
        eigenvectors: pairs.into_iter().map(|(_, vec)| vec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
        m.iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let m = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let eig = symmetric_eigen(&m);
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let m = vec![
            vec![4.0, 1.0, 0.5, 0.0],
            vec![1.0, 3.0, 0.2, 0.7],
            vec![0.5, 0.2, 2.0, 0.1],
            vec![0.0, 0.7, 0.1, 1.0],
        ];
        let eig = symmetric_eigen(&m);
        for (val, vec) in eig.eigenvalues.iter().zip(&eig.eigenvectors) {
            let mv = mat_vec(&m, vec);
            for (a, b) in mv.iter().zip(vec.iter()) {
                assert!((a - val * b).abs() < 1e-8, "residual too large");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = vec![
            vec![2.0, 0.5, 0.1],
            vec![0.5, 1.0, 0.3],
            vec![0.1, 0.3, 4.0],
        ];
        let eig = symmetric_eigen(&m);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = eig.eigenvectors[i]
                    .iter()
                    .zip(&eig.eigenvectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = vec![
            vec![1.0, 0.9, -0.4],
            vec![0.9, -2.0, 0.3],
            vec![-0.4, 0.3, 0.5],
        ];
        let eig = symmetric_eigen(&m);
        let trace: f64 = (0..3).map(|i| m[i][i]).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    #[should_panic]
    fn asymmetric_matrix_panics() {
        let m = vec![vec![1.0, 2.0], vec![0.0, 1.0]];
        let _ = symmetric_eigen(&m);
    }
}
