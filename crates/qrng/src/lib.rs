//! # qrng — counter-based deterministic randomness
//!
//! Every stochastic consumer in this workspace (shot sampling, noise trajectories,
//! SPSA perturbations) draws from this crate so that **a draw's value is a pure
//! function of `(root seed, stream, counter)`** — never of what executed before it.
//! That is the property that lets the execution service run slates on any number of
//! workers, in any order, with retries and failover, and still produce bit-identical
//! results (the "schedule-independent determinism" contract in `qexec`).
//!
//! The design follows the counter-mode DRBG construction (Philox/Threefry-style: a
//! stateless block function over a key and a counter) with SplitMix64's finalizer as
//! the block function.  There is no mutable cross-draw state anywhere: a
//! [`CounterRng`] is just `(key, counter)`, and `draw(n)` is `mix(key, n)`.
//!
//! ## The three-level key schedule
//!
//! ```text
//! SeedPolicy { root }                    — one per backend / optimizer instance
//!     └─ StreamId                        — one per job (or named consumer)
//!         └─ substream(i)                — independent lanes within a job
//!             └─ counter 0, 1, 2, …      — the draws
//! ```
//!
//! * [`SeedPolicy`] wraps the root seed.  It replaces the raw `u64 seed` constructor
//!   parameters that used to be threaded through `SampledBackend::new` and friends;
//!   [`SeedPolicy::legacy`] wraps an old raw seed unchanged for migration.
//! * [`StreamId`] is an opaque derived key: [`StreamId::for_job`] from an executor
//!   job id, [`StreamId::named`] from a label, [`StreamId::substream`] for
//!   independent lanes (e.g. trajectory seeds vs. shot noise within one evaluation).
//! * [`CounterRng`] implements the vendored [`rand::Rng`], so every drawing helper
//!   (`random::<f64>()`, `random_range`, …) works on it unchanged.
//!
//! ## Bit-compatibility note
//!
//! [`mix`] is exactly the SplitMix64-finalizer hash that `qnoise::trajectory_seed`
//! has used since the trajectory-seeding contract landed: `trajectory_seed(s, i)`
//! `== mix(s, i)`.  qnoise delegates here, so the per-trajectory noise schedules of
//! previously recorded runs are unchanged by this crate's introduction.
//!
//! ## Draw accounting
//!
//! Every [`CounterRng`] draw bumps a process-wide relaxed counter, readable via
//! [`total_draws`].  The schedule-independence suite uses deltas of this counter to
//! assert that different executor schedules perform *identical* draw work, not just
//! identical results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Golden-ratio increment (SplitMix64's gamma); also the counter multiplier in
/// [`mix`].
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain-separation constant for job-derived streams.
const DOMAIN_JOB: u64 = 0x4A4F_425F_5354_524D; // "JOB_STRM"

/// Domain-separation constant for label-derived streams.
const DOMAIN_NAMED: u64 = 0x4E41_4D45_445F_5354; // "NAMED_ST"

/// Domain-separation constant for instance-local evaluation-order streams.
const DOMAIN_EVAL: u64 = 0x4556_414C_5F4F_5244; // "EVAL_ORD"

/// Domain-separation constant for substream derivation.
const DOMAIN_SUB: u64 = 0x5355_425F_5354_5245; // "SUB_STRE"

static TOTAL_DRAWS: AtomicU64 = AtomicU64::new(0);

/// The counter-mode block function: a stateless 64-bit hash of `(key, counter)`
/// built from SplitMix64's finalizer.
///
/// Bit-identical to the `qnoise::trajectory_seed(seed, trajectory)` contract hash
/// (qnoise delegates here), so `mix(s, i)` *is* the trajectory-seed of stream `s`,
/// index `i`.
#[inline]
pub const fn mix(key: u64, counter: u64) -> u64 {
    let mut z = key ^ counter.wrapping_mul(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Total [`CounterRng`] draws performed by this process (relaxed, monotone).
///
/// Take deltas around a workload to compare the draw *work* of two schedules; the
/// schedule-independence suite asserts the deltas match across worker counts.
pub fn total_draws() -> u64 {
    TOTAL_DRAWS.load(Ordering::Relaxed)
}

/// An opaque derived stream key: the middle level of the `root → stream →
/// substream → counter` schedule.
///
/// Streams with distinct derivations are computationally independent; equality is
/// exact key equality (two jobs given the same explicit stream intentionally share
/// draws — that is how a retry reproduces its first attempt bit-for-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct StreamId(u64);

impl StreamId {
    /// Wraps a raw key without derivation (for persistence/round-tripping).
    pub const fn from_raw(raw: u64) -> Self {
        StreamId(raw)
    }

    /// The raw key.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The stream of one executor job: derived from the service-assigned job id.
    ///
    /// This is the default every submitted job gets when no explicit stream is
    /// chosen (`SubmitOptions::rng_stream` in `qexec`), making a job's stochastic
    /// results a function of *which* job it is, not *when* it ran.
    pub const fn for_job(job_id: u64) -> Self {
        StreamId(mix(DOMAIN_JOB, job_id))
    }

    /// The stream of the `index`-th stream-less evaluation of one backend instance.
    ///
    /// Stochastic backends fall back to this derivation (with a per-instance
    /// counter) for requests that carry no explicit stream — direct trait callers,
    /// pre-executor test harnesses — preserving the historical "batched equals
    /// serial" request-order semantics for them.  Executor-submitted requests
    /// always carry a stream and never touch the counter.
    pub const fn for_eval(index: u64) -> Self {
        StreamId(mix(DOMAIN_EVAL, index))
    }

    /// A stream derived from a human-readable label (e.g. `"spsa"`), for consumers
    /// that are not executor jobs.
    pub fn named(label: &str) -> Self {
        let mut key = DOMAIN_NAMED;
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            key = mix(key, u64::from_le_bytes(word));
        }
        StreamId(mix(key, label.len() as u64))
    }

    /// The `index`-th independent lane within this stream (e.g. lane 0 for
    /// trajectory seeds, lane 1 for shot noise, one lane per request of a batch).
    pub const fn substream(self, index: u64) -> Self {
        StreamId(mix(self.0 ^ DOMAIN_SUB, index))
    }
}

/// The typed root-seed policy: how an instance (a backend, an optimizer) turns its
/// configured seed plus a [`StreamId`] into concrete draw keys.
///
/// Replaces raw `u64 seed` constructor parameters across the workspace.  Two
/// instances with the same policy and the same stream draw identically — on any
/// thread, in any order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SeedPolicy {
    root: u64,
}

impl SeedPolicy {
    /// A policy rooted at `root`.
    pub const fn new(root: u64) -> Self {
        SeedPolicy { root }
    }

    /// Wraps a seed that used to be passed as a raw `u64` constructor parameter.
    ///
    /// Identical to [`SeedPolicy::new`]; the name marks migration call sites so the
    /// deprecated-style `u64` wrappers (`SampledBackend::new(shots, seed)`, …) read
    /// as intentional.
    pub const fn legacy(seed: u64) -> Self {
        SeedPolicy { root: seed }
    }

    /// The root seed.
    pub const fn root(self) -> u64 {
        self.root
    }

    /// The concrete draw key of `stream` under this policy.
    pub const fn key(self, stream: StreamId) -> u64 {
        mix(self.root, stream.raw())
    }

    /// A counter-based generator over `stream`, starting at counter 0.
    pub const fn rng(self, stream: StreamId) -> CounterRng {
        CounterRng::new(self.key(stream))
    }
}

impl Default for SeedPolicy {
    fn default() -> Self {
        SeedPolicy::new(0)
    }
}

/// A counter-based generator: `(key, counter)` with `draw(n) = mix(key, n)`.
///
/// Implements the vendored [`rand::Rng`], so all drawing helpers (`random`,
/// `random_range`) work unchanged.  Cloning forks the exact position; there is no
/// hidden state, so any draw can be recomputed from the key and its index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// A generator over `key` starting at counter 0.
    pub const fn new(key: u64) -> Self {
        CounterRng { key, counter: 0 }
    }

    /// A generator resumed at an explicit counter position.
    pub const fn from_parts(key: u64, counter: u64) -> Self {
        CounterRng { key, counter }
    }

    /// The stream key.
    pub const fn key(&self) -> u64 {
        self.key
    }

    /// Draws performed so far (the counter position).
    pub const fn draws(&self) -> u64 {
        self.counter
    }

    /// Standard normal via Box–Muller (consumes two draws).
    pub fn normal(&mut self) -> f64 {
        use rand::Rng as _;
        let u1: f64 = self.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform index in `[0, n)` (`n > 0`).
    pub fn choice(&mut self, n: u64) -> u64 {
        use rand::Rng as _;
        self.random_range(0..n)
    }
}

impl rand::Rng for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let value = mix(self.key, self.counter);
        self.counter += 1;
        TOTAL_DRAWS.fetch_add(1, Ordering::Relaxed);
        value
    }
}

impl rand::SeedableRng for CounterRng {
    fn seed_from_u64(state: u64) -> Self {
        CounterRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    /// The trajectory-seeding hash as written in qnoise before this crate existed.
    fn legacy_trajectory_seed(seed: u64, trajectory: u64) -> u64 {
        let mut z = seed ^ trajectory.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn mix_matches_the_trajectory_seed_contract() {
        for &s in &[0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            for i in 0..64 {
                assert_eq!(mix(s, i), legacy_trajectory_seed(s, i));
            }
        }
    }

    #[test]
    fn draws_are_pure_functions_of_key_and_counter() {
        let mut a = CounterRng::new(7);
        let first: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        // Re-deriving any position reproduces the draw with no prior history.
        for (i, &v) in first.iter().enumerate() {
            let mut fresh = CounterRng::from_parts(7, i as u64);
            assert_eq!(fresh.next_u64(), v);
        }
        assert_eq!(a.draws(), 16);
    }

    #[test]
    fn streams_and_substreams_decorrelate() {
        let policy = SeedPolicy::new(99);
        let a = policy.key(StreamId::for_job(0));
        let b = policy.key(StreamId::for_job(1));
        assert_ne!(a, b);
        let s = StreamId::named("spsa");
        assert_ne!(s.substream(0), s.substream(1));
        assert_ne!(s.substream(0), StreamId::named("spsa-other").substream(0));
        // Named derivation is injective-ish on realistic labels: prefix-extended
        // labels must not collide.
        assert_ne!(StreamId::named("ab"), StreamId::named("abab"));
    }

    #[test]
    fn same_policy_same_stream_is_bit_identical_anywhere() {
        let policy = SeedPolicy::legacy(1234);
        let stream = StreamId::for_job(17);
        let mut x = policy.rng(stream);
        let mut y = policy.rng(stream);
        // Interleave arbitrary extra work on y's clone: positions still agree.
        let mut noise = policy.rng(StreamId::for_job(18));
        for _ in 0..10 {
            let _ = noise.random::<f64>();
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn uniform_helpers_behave() {
        let mut rng = SeedPolicy::new(5).rng(StreamId::named("uniformity"));
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.choice(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut acc = 0.0;
        for _ in 0..4_000 {
            acc += rng.normal();
        }
        assert!((acc / 4_000.0).abs() < 0.1, "normal mean {}", acc / 4_000.0);
    }

    #[test]
    fn total_draws_counts_every_draw() {
        let before = total_draws();
        let mut rng = CounterRng::new(3);
        for _ in 0..32 {
            let _ = rng.next_u64();
        }
        assert!(total_draws() - before >= 32);
    }
}
