//! Nelder–Mead simplex optimizer.
//!
//! Not used by the paper directly, but provided as an additional derivative-free baseline
//! for the optimizer-agnosticism experiments and as an independent cross-check of the
//! COBYLA implementation in tests.

use crate::{IterationStats, Optimizer};
use serde::{Deserialize, Serialize};

/// Nelder–Mead coefficients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NelderMeadConfig {
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Reflection coefficient (α).
    pub reflection: f64,
    /// Expansion coefficient (γ).
    pub expansion: f64,
    /// Contraction coefficient (ρ).
    pub contraction: f64,
    /// Shrink coefficient (σ).
    pub shrink: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            initial_step: 0.25,
            reflection: 1.0,
            expansion: 2.0,
            contraction: 0.5,
            shrink: 0.5,
        }
    }
}

/// The Nelder–Mead optimizer.
#[derive(Clone, Debug)]
pub struct NelderMead {
    config: NelderMeadConfig,
    simplex: Vec<(Vec<f64>, f64)>,
}

impl NelderMead {
    /// Creates a new instance.
    pub fn new(config: NelderMeadConfig) -> Self {
        NelderMead {
            config,
            simplex: Vec::new(),
        }
    }

    fn build_simplex(&mut self, params: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> usize {
        self.simplex.clear();
        self.simplex.push((params.to_vec(), objective(params)));
        for i in 0..params.len() {
            let mut p = params.to_vec();
            p[i] += self.config.initial_step;
            let f = objective(&p);
            self.simplex.push((p, f));
        }
        params.len() + 1
    }
}

impl Optimizer for NelderMead {
    fn step(
        &mut self,
        params: &mut Vec<f64>,
        objective: &mut dyn FnMut(&[f64]) -> f64,
    ) -> IterationStats {
        let n = params.len();
        let mut evaluations = 0usize;
        if self.simplex.len() != n + 1 {
            evaluations += self.build_simplex(params, objective);
        }
        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let best = self.simplex[0].clone();
        let worst_idx = self.simplex.len() - 1;
        let worst = self.simplex[worst_idx].clone();
        let second_worst_value = self.simplex[worst_idx - 1].1;

        // Centroid of all vertices except the worst.
        let mut centroid = vec![0.0f64; n];
        for (point, _) in self.simplex.iter().take(worst_idx) {
            for (c, x) in centroid.iter_mut().zip(point.iter()) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= worst_idx as f64;
        }

        let cfg = &self.config;
        let lerp = |from: &[f64], towards: &[f64], t: f64| -> Vec<f64> {
            from.iter()
                .zip(towards.iter())
                .map(|(a, b)| a + t * (b - a))
                .collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &worst.0, -cfg.reflection);
        let f_reflected = objective(&reflected);
        evaluations += 1;

        if f_reflected < best.1 {
            // Expansion.
            let expanded = lerp(&centroid, &worst.0, -cfg.expansion);
            let f_expanded = objective(&expanded);
            evaluations += 1;
            self.simplex[worst_idx] = if f_expanded < f_reflected {
                (expanded, f_expanded)
            } else {
                (reflected, f_reflected)
            };
        } else if f_reflected < second_worst_value {
            self.simplex[worst_idx] = (reflected, f_reflected);
        } else {
            // Contraction.
            let contracted = lerp(&centroid, &worst.0, cfg.contraction);
            let f_contracted = objective(&contracted);
            evaluations += 1;
            if f_contracted < worst.1 {
                self.simplex[worst_idx] = (contracted, f_contracted);
            } else {
                // Shrink toward the best vertex.
                for i in 1..self.simplex.len() {
                    let shrunk = lerp(&best.0, &self.simplex[i].0, cfg.shrink);
                    let f = objective(&shrunk);
                    evaluations += 1;
                    self.simplex[i] = (shrunk, f);
                }
            }
        }

        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        *params = self.simplex[0].0.clone();
        IterationStats {
            evaluations,
            loss: self.simplex[0].1,
        }
    }

    fn name(&self) -> &'static str {
        "NelderMead"
    }

    fn reset(&mut self) {
        self.simplex.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let mut params = vec![1.5, -1.5, 0.8];
        let mut obj = |p: &[f64]| p.iter().map(|x| (x - 0.2).powi(2)).sum();
        for _ in 0..250 {
            opt.step(&mut params, &mut obj);
        }
        let loss: f64 = params.iter().map(|x| (x - 0.2).powi(2)).sum();
        assert!(loss < 1e-4, "{loss}");
    }

    #[test]
    fn handles_anisotropic_objectives() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        // Classic Rosenbrock start, far from the (1, 1) minimum.
        let mut params = vec![-1.2, 1.0];
        let mut obj = |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let start = obj(&params);
        for _ in 0..500 {
            opt.step(&mut params, &mut obj);
        }
        let end = 100.0 * (params[1] - params[0] * params[0]).powi(2) + (1.0 - params[0]).powi(2);
        assert!(end < start * 0.05, "{end} vs {start}");
    }

    #[test]
    fn loss_is_monotone_non_increasing_across_steps() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let mut params = vec![0.9, -0.3];
        let mut obj = |p: &[f64]| p.iter().map(|x| x * x).sum();
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            let stats = opt.step(&mut params, &mut obj);
            assert!(stats.loss <= last + 1e-12);
            last = stats.loss;
        }
    }

    #[test]
    fn reset_rebuilds_simplex_next_step() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let mut params = vec![0.4];
        let mut obj = |p: &[f64]| p[0] * p[0];
        opt.step(&mut params, &mut obj);
        opt.reset();
        let mut count = 0usize;
        let mut counting_obj = |p: &[f64]| {
            count += 1;
            p[0] * p[0]
        };
        opt.step(&mut params, &mut counting_obj);
        assert!(count >= 2, "simplex should be rebuilt after reset");
    }
}
