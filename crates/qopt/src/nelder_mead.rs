//! Nelder–Mead simplex optimizer.
//!
//! Not used by the paper directly, but provided as an additional derivative-free baseline
//! for the optimizer-agnosticism experiments and as an independent cross-check of the
//! COBYLA implementation in tests.
//!
//! The optimizer is written against the propose/observe phase interface of
//! [`Optimizer`]: each logical iteration unfolds as one or more candidate batches (the
//! initial simplex, the reflection, then expansion *or* contraction, then a possible
//! shrink batch), visiting exactly the candidates the classic sequential algorithm
//! would.  With [`NelderMeadConfig::speculative_batch`] the reflection, expansion and
//! contraction candidates are proposed as **one** batch instead — the decision logic is
//! unchanged (trajectories are identical), but all three states can be prepared
//! concurrently by a batched backend at the cost of charging up to two extra
//! evaluations per iteration.

use crate::{IterationStats, Optimizer};
use serde::{Deserialize, Serialize};

/// Nelder–Mead coefficients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NelderMeadConfig {
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Reflection coefficient (α).
    pub reflection: f64,
    /// Expansion coefficient (γ).
    pub expansion: f64,
    /// Contraction coefficient (ρ).
    pub contraction: f64,
    /// Shrink coefficient (σ).
    pub shrink: f64,
    /// Propose the reflection/expansion/contraction candidates as one speculative batch
    /// (better batching at the cost of up to two extra objective evaluations per
    /// iteration).  Off by default, which reproduces the classic sequential algorithm's
    /// evaluation count exactly.
    pub speculative_batch: bool,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            initial_step: 0.25,
            reflection: 1.0,
            expansion: 2.0,
            contraction: 0.5,
            shrink: 0.5,
            speculative_batch: false,
        }
    }
}

/// Which candidate batch the optimizer is waiting on.
#[derive(Clone, Debug)]
enum Phase {
    Idle,
    /// Initial simplex construction: base point plus one perturbed point per axis.
    Build {
        points: Vec<Vec<f64>>,
    },
    /// The sequential reflection probe.
    Reflect {
        centroid: Vec<f64>,
        worst_point: Vec<f64>,
        worst_value: f64,
        best_value: f64,
        second_worst_value: f64,
        reflected: Vec<f64>,
    },
    /// Speculative mode: reflection, expansion and contraction as one batch.
    Speculative {
        worst_value: f64,
        best_value: f64,
        second_worst_value: f64,
        reflected: Vec<f64>,
        expanded: Vec<f64>,
        contracted: Vec<f64>,
    },
    /// Expansion probe after a winning reflection.
    Expand {
        reflected: Vec<f64>,
        f_reflected: f64,
        expanded: Vec<f64>,
    },
    /// Contraction probe after a losing reflection.
    Contract {
        contracted: Vec<f64>,
        worst_value: f64,
    },
    /// Shrink every non-best vertex toward the best.
    Shrink {
        points: Vec<Vec<f64>>,
    },
}

/// The Nelder–Mead optimizer.
#[derive(Clone, Debug)]
pub struct NelderMead {
    config: NelderMeadConfig,
    simplex: Vec<(Vec<f64>, f64)>,
    phase: Phase,
    /// Objective evaluations consumed so far in the current logical iteration.
    evals_acc: usize,
}

fn lerp(from: &[f64], towards: &[f64], t: f64) -> Vec<f64> {
    from.iter()
        .zip(towards.iter())
        .map(|(a, b)| a + t * (b - a))
        .collect()
}

impl NelderMead {
    /// Creates a new instance.
    pub fn new(config: NelderMeadConfig) -> Self {
        NelderMead {
            config,
            simplex: Vec::new(),
            phase: Phase::Idle,
            evals_acc: 0,
        }
    }

    fn sort_simplex(&mut self) {
        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Completes the iteration: re-sorts, publishes the best vertex, resets phase state.
    fn finish(&mut self, params: &mut Vec<f64>) -> Option<IterationStats> {
        self.sort_simplex();
        *params = self.simplex[0].0.clone();
        let stats = IterationStats {
            evaluations: self.evals_acc,
            loss: self.simplex[0].1,
        };
        self.phase = Phase::Idle;
        self.evals_acc = 0;
        Some(stats)
    }

    fn shrink_points(&self) -> Vec<Vec<f64>> {
        let best = &self.simplex[0].0;
        (1..self.simplex.len())
            .map(|i| lerp(best, &self.simplex[i].0, self.config.shrink))
            .collect()
    }
}

impl Optimizer for NelderMead {
    fn propose(&mut self, params: &[f64]) -> Vec<Vec<f64>> {
        match &self.phase {
            Phase::Idle => {}
            Phase::Build { points } | Phase::Shrink { points } => return points.clone(),
            Phase::Reflect { reflected, .. } => return vec![reflected.clone()],
            Phase::Speculative {
                reflected,
                expanded,
                contracted,
                ..
            } => return vec![reflected.clone(), expanded.clone(), contracted.clone()],
            Phase::Expand { expanded, .. } => return vec![expanded.clone()],
            Phase::Contract { contracted, .. } => return vec![contracted.clone()],
        }

        let n = params.len();
        if self.simplex.len() != n + 1 {
            let mut points = Vec::with_capacity(n + 1);
            points.push(params.to_vec());
            for i in 0..n {
                let mut p = params.to_vec();
                p[i] += self.config.initial_step;
                points.push(p);
            }
            self.phase = Phase::Build {
                points: points.clone(),
            };
            return points;
        }

        self.sort_simplex();
        let worst_idx = self.simplex.len() - 1;
        let best_value = self.simplex[0].1;
        let worst = self.simplex[worst_idx].clone();
        let second_worst_value = self.simplex[worst_idx - 1].1;

        // Centroid of all vertices except the worst.
        let mut centroid = vec![0.0f64; n];
        for (point, _) in self.simplex.iter().take(worst_idx) {
            for (c, x) in centroid.iter_mut().zip(point.iter()) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= worst_idx as f64;
        }

        let reflected = lerp(&centroid, &worst.0, -self.config.reflection);
        if self.config.speculative_batch {
            let expanded = lerp(&centroid, &worst.0, -self.config.expansion);
            let contracted = lerp(&centroid, &worst.0, self.config.contraction);
            let batch = vec![reflected.clone(), expanded.clone(), contracted.clone()];
            self.phase = Phase::Speculative {
                worst_value: worst.1,
                best_value,
                second_worst_value,
                reflected,
                expanded,
                contracted,
            };
            return batch;
        }
        let batch = vec![reflected.clone()];
        self.phase = Phase::Reflect {
            centroid,
            worst_point: worst.0,
            worst_value: worst.1,
            best_value,
            second_worst_value,
            reflected,
        };
        batch
    }

    fn observe(&mut self, params: &mut Vec<f64>, values: &[f64]) -> Option<IterationStats> {
        let worst_idx = |s: &Vec<(Vec<f64>, f64)>| s.len() - 1;
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => panic!("observe called without a pending proposal"),
            Phase::Build { points } => {
                assert_eq!(values.len(), points.len(), "one value per simplex point");
                self.evals_acc += values.len();
                self.simplex = points.into_iter().zip(values.iter().copied()).collect();
                None
            }
            Phase::Reflect {
                centroid,
                worst_point,
                worst_value,
                best_value,
                second_worst_value,
                reflected,
            } => {
                let f_reflected = values[0];
                self.evals_acc += 1;
                if f_reflected < best_value {
                    let expanded = lerp(&centroid, &worst_point, -self.config.expansion);
                    self.phase = Phase::Expand {
                        reflected,
                        f_reflected,
                        expanded,
                    };
                    None
                } else if f_reflected < second_worst_value {
                    let w = worst_idx(&self.simplex);
                    self.simplex[w] = (reflected, f_reflected);
                    self.finish(params)
                } else {
                    let contracted = lerp(&centroid, &worst_point, self.config.contraction);
                    self.phase = Phase::Contract {
                        contracted,
                        worst_value,
                    };
                    None
                }
            }
            Phase::Speculative {
                worst_value,
                best_value,
                second_worst_value,
                reflected,
                expanded,
                contracted,
            } => {
                let (f_reflected, f_expanded, f_contracted) = (values[0], values[1], values[2]);
                self.evals_acc += 3;
                let w = worst_idx(&self.simplex);
                if f_reflected < best_value {
                    self.simplex[w] = if f_expanded < f_reflected {
                        (expanded, f_expanded)
                    } else {
                        (reflected, f_reflected)
                    };
                    self.finish(params)
                } else if f_reflected < second_worst_value {
                    self.simplex[w] = (reflected, f_reflected);
                    self.finish(params)
                } else if f_contracted < worst_value {
                    self.simplex[w] = (contracted, f_contracted);
                    self.finish(params)
                } else {
                    self.phase = Phase::Shrink {
                        points: self.shrink_points(),
                    };
                    None
                }
            }
            Phase::Expand {
                reflected,
                f_reflected,
                expanded,
            } => {
                let f_expanded = values[0];
                self.evals_acc += 1;
                let w = worst_idx(&self.simplex);
                self.simplex[w] = if f_expanded < f_reflected {
                    (expanded, f_expanded)
                } else {
                    (reflected, f_reflected)
                };
                self.finish(params)
            }
            Phase::Contract {
                contracted,
                worst_value,
            } => {
                let f_contracted = values[0];
                self.evals_acc += 1;
                if f_contracted < worst_value {
                    let w = worst_idx(&self.simplex);
                    self.simplex[w] = (contracted, f_contracted);
                    self.finish(params)
                } else {
                    self.phase = Phase::Shrink {
                        points: self.shrink_points(),
                    };
                    None
                }
            }
            Phase::Shrink { points } => {
                assert_eq!(values.len(), points.len(), "one value per shrink point");
                self.evals_acc += values.len();
                for (i, (point, &value)) in points.into_iter().zip(values.iter()).enumerate() {
                    self.simplex[i + 1] = (point, value);
                }
                self.finish(params)
            }
        }
    }

    fn name(&self) -> &'static str {
        "NelderMead"
    }

    fn reset(&mut self) {
        self.simplex.clear();
        self.phase = Phase::Idle;
        self.evals_acc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let mut params = vec![1.5, -1.5, 0.8];
        let mut obj = |p: &[f64]| p.iter().map(|x| (x - 0.2).powi(2)).sum();
        for _ in 0..250 {
            opt.step(&mut params, &mut obj);
        }
        let loss: f64 = params.iter().map(|x| (x - 0.2).powi(2)).sum();
        assert!(loss < 1e-4, "{loss}");
    }

    #[test]
    fn handles_anisotropic_objectives() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        // Classic Rosenbrock start, far from the (1, 1) minimum.
        let mut params = vec![-1.2, 1.0];
        let mut obj = |p: &[f64]| 100.0 * (p[1] - p[0] * p[0]).powi(2) + (1.0 - p[0]).powi(2);
        let start = obj(&params);
        for _ in 0..500 {
            opt.step(&mut params, &mut obj);
        }
        let end = 100.0 * (params[1] - params[0] * params[0]).powi(2) + (1.0 - params[0]).powi(2);
        assert!(end < start * 0.05, "{end} vs {start}");
    }

    #[test]
    fn loss_is_monotone_non_increasing_across_steps() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let mut params = vec![0.9, -0.3];
        let mut obj = |p: &[f64]| p.iter().map(|x| x * x).sum();
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            let stats = opt.step(&mut params, &mut obj);
            assert!(stats.loss <= last + 1e-12);
            last = stats.loss;
        }
    }

    #[test]
    fn reset_rebuilds_simplex_next_step() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let mut params = vec![0.4];
        let mut obj = |p: &[f64]| p[0] * p[0];
        opt.step(&mut params, &mut obj);
        opt.reset();
        let mut count = 0usize;
        let mut counting_obj = |p: &[f64]| {
            count += 1;
            p[0] * p[0]
        };
        opt.step(&mut params, &mut counting_obj);
        assert!(count >= 2, "simplex should be rebuilt after reset");
    }

    #[test]
    fn speculative_batch_follows_the_same_trajectory() {
        // Speculation evaluates extra candidates but must make identical decisions.
        let mut sequential = NelderMead::new(NelderMeadConfig::default());
        let mut speculative = NelderMead::new(NelderMeadConfig {
            speculative_batch: true,
            ..Default::default()
        });
        let mut p1 = vec![1.1, -0.6, 0.3];
        let mut p2 = p1.clone();
        let mut obj = |p: &[f64]| {
            p.iter()
                .enumerate()
                .map(|(i, x)| (x - 0.1 * i as f64).powi(2))
                .sum()
        };
        for _ in 0..60 {
            let s1 = sequential.step(&mut p1, &mut obj);
            let s2 = speculative.step(&mut p2, &mut obj);
            assert_eq!(p1, p2, "speculation must not change the trajectory");
            assert_eq!(s1.loss, s2.loss);
            assert!(s2.evaluations >= s1.evaluations);
        }
    }

    #[test]
    fn propose_returns_pending_batch_idempotently() {
        let mut opt = NelderMead::new(NelderMeadConfig::default());
        let params = vec![0.5, 0.5];
        let first = opt.propose(&params);
        let again = opt.propose(&params);
        assert_eq!(first, again);
        assert_eq!(first.len(), 3, "initial simplex batch for 2 parameters");
    }
}
