//! # qopt — classical optimizers for variational quantum algorithms
//!
//! The paper's evaluations use SPSA (default) and COBYLA (optimizer-agnosticism study,
//! Section 8.6, and the noisy study, Section 8.7).  This crate provides both, plus
//! Nelder–Mead as an extra derivative-free baseline, behind a single step-wise
//! [`Optimizer`] trait so the VQA loop (and TreeVQA's controller) can monitor the loss
//! after *every* iteration — which is exactly what the sliding-window split monitor needs.
//!
//! ```
//! use qopt::{Optimizer, Spsa, SpsaConfig};
//!
//! // Minimize a quadratic: SPSA should walk toward the minimum at 1.0.
//! let mut spsa = Spsa::new(SpsaConfig { a: 0.3, ..Default::default() }, 42);
//! let mut params = vec![0.0];
//! let mut objective = |p: &[f64]| (p[0] - 1.0).powi(2);
//! for _ in 0..200 {
//!     spsa.step(&mut params, &mut objective);
//! }
//! assert!((params[0] - 1.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cobyla;
mod nelder_mead;
mod spsa;

pub use cobyla::{Cobyla, CobylaConfig};
pub use nelder_mead::{NelderMead, NelderMeadConfig};
pub use spsa::{Spsa, SpsaConfig};

use serde::{Deserialize, Serialize};

/// Statistics reported by one optimizer iteration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// How many times the objective function was evaluated during this iteration.
    pub evaluations: usize,
    /// The loss value representative of this iteration (used by TreeVQA's sliding-window
    /// slope monitor).
    pub loss: f64,
}

/// A step-wise, derivative-free optimizer with a propose/observe batch interface.
///
/// One logical iteration is driven as one or more **phases**: [`Optimizer::propose`]
/// returns a batch of candidate parameter vectors whose objective values the caller
/// obtains however it likes — serially, or as one batched backend submission — and
/// [`Optimizer::observe`] consumes the values in candidate order.  `observe` returns
/// `None` while the iteration needs another phase (e.g. COBYLA rebuilding its simplex
/// after a rejected trust-region step) and `Some(stats)` once the iteration is complete
/// and `params` has been updated in place.
///
/// Derivative-free optimizers naturally emit batches — SPSA's ± perturbation pair, a
/// simplex's reflection/expansion candidates, an initial simplex — and the propose form
/// exposes exactly those batches so the execution layer can evaluate all candidates of a
/// phase concurrently.  Phases replay the classic serial algorithms *exactly*: driving
/// an optimizer through propose/observe visits the same candidates in the same order as
/// [`Optimizer::step`], so trajectories (and shot accounting) are identical.
///
/// [`Optimizer::step`] is a provided convenience that drives the phase loop with a
/// closure; implementations only write `propose`/`observe`.
pub trait Optimizer {
    /// Begins (or continues) one iteration: returns the candidate parameter vectors the
    /// caller must evaluate next.  Calling `propose` again before `observe` returns the
    /// same pending batch.
    fn propose(&mut self, params: &[f64]) -> Vec<Vec<f64>>;

    /// Consumes the objective values for the batch returned by the last
    /// [`Optimizer::propose`] (in the same order).  Returns `None` if the iteration
    /// needs another propose/observe phase, or `Some(stats)` when the iteration is
    /// complete; `stats.evaluations` counts every evaluation across the iteration's
    /// phases, so the caller can charge execution shots accurately.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `values.len()` does not match the pending batch.
    fn observe(&mut self, params: &mut Vec<f64>, values: &[f64]) -> Option<IterationStats>;

    /// Performs one optimizer iteration by driving the propose/observe phases with a
    /// serial objective closure.
    fn step(
        &mut self,
        params: &mut Vec<f64>,
        objective: &mut dyn FnMut(&[f64]) -> f64,
    ) -> IterationStats {
        loop {
            let candidates = self.propose(params);
            let values: Vec<f64> = candidates.iter().map(|c| objective(c)).collect();
            if let Some(stats) = self.observe(params, &values) {
                return stats;
            }
        }
    }

    /// Human-readable optimizer name.
    fn name(&self) -> &'static str;

    /// Resets internal state (iteration counters, simplex caches, pending phases) so the
    /// optimizer can be reused for a fresh run with inherited parameters — which is what
    /// TreeVQA's child clusters do after a split.
    fn reset(&mut self);
}

/// Which optimizer a VQA run should use, with its configuration.
///
/// This enum exists so higher-level crates can store the optimizer choice in plain-data
/// experiment configurations (it is `Serialize`/`Deserialize`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Simultaneous Perturbation Stochastic Approximation.
    Spsa(SpsaConfig),
    /// COBYLA-style linear-approximation trust-region optimizer.
    Cobyla(CobylaConfig),
    /// Nelder–Mead simplex.
    NelderMead(NelderMeadConfig),
}

impl OptimizerSpec {
    /// The paper's default optimizer (SPSA with default gains).
    pub fn default_spsa() -> Self {
        OptimizerSpec::Spsa(SpsaConfig::default())
    }

    /// Builds a fresh optimizer instance from a raw RNG seed (thin wrapper over
    /// [`OptimizerSpec::build_with_policy`] with `qrng::SeedPolicy::legacy`).
    pub fn build(&self, seed: u64) -> Box<dyn Optimizer + Send> {
        self.build_with_policy(qrng::SeedPolicy::legacy(seed))
    }

    /// Builds a fresh optimizer instance with a typed seeding policy.  Stochastic
    /// optimizers draw from the policy's counter-based streams; deterministic ones
    /// ignore it.
    pub fn build_with_policy(&self, policy: qrng::SeedPolicy) -> Box<dyn Optimizer + Send> {
        match self {
            OptimizerSpec::Spsa(cfg) => Box::new(Spsa::with_policy(cfg.clone(), policy)),
            OptimizerSpec::Cobyla(cfg) => Box::new(Cobyla::new(cfg.clone())),
            OptimizerSpec::NelderMead(cfg) => Box::new(NelderMead::new(cfg.clone())),
        }
    }

    /// Name of the selected optimizer.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerSpec::Spsa(_) => "SPSA",
            OptimizerSpec::Cobyla(_) => "COBYLA",
            OptimizerSpec::NelderMead(_) => "NelderMead",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shifted quadratic bowl in `dim` dimensions.
    fn quadratic(dim: usize) -> impl FnMut(&[f64]) -> f64 {
        let _ = dim;
        move |p: &[f64]| {
            p.iter()
                .enumerate()
                .map(|(i, &x)| (x - (i as f64 + 1.0) * 0.1).powi(2))
                .sum()
        }
    }

    fn run(spec: &OptimizerSpec, dim: usize, iters: usize, seed: u64) -> f64 {
        let mut opt = spec.build(seed);
        let mut params = vec![0.5; dim];
        let mut obj = quadratic(dim);
        let mut last = f64::INFINITY;
        for _ in 0..iters {
            last = opt.step(&mut params, &mut obj).loss;
        }
        let final_val = quadratic(dim)(&params);
        assert!(last.is_finite());
        final_val
    }

    #[test]
    fn all_optimizers_reduce_a_quadratic() {
        let start = quadratic(4)(&[0.5; 4]);
        for spec in [
            OptimizerSpec::Spsa(SpsaConfig {
                a: 0.2,
                ..Default::default()
            }),
            OptimizerSpec::Cobyla(CobylaConfig::default()),
            OptimizerSpec::NelderMead(NelderMeadConfig::default()),
        ] {
            let end = run(&spec, 4, 300, 11);
            assert!(
                end < start * 0.5,
                "{} failed to reduce the objective: {end} vs {start}",
                spec.name()
            );
        }
    }

    #[test]
    fn spec_names_and_default() {
        assert_eq!(OptimizerSpec::default_spsa().name(), "SPSA");
        assert_eq!(
            OptimizerSpec::Cobyla(CobylaConfig::default()).name(),
            "COBYLA"
        );
        assert_eq!(
            OptimizerSpec::NelderMead(NelderMeadConfig::default()).name(),
            "NelderMead"
        );
    }

    #[test]
    fn evaluations_are_reported() {
        let mut opt = OptimizerSpec::default_spsa().build(3);
        let mut params = vec![0.1, 0.2];
        let mut count = 0usize;
        let mut obj = |p: &[f64]| {
            count += 1;
            p.iter().map(|x| x * x).sum()
        };
        let stats = opt.step(&mut params, &mut obj);
        assert_eq!(stats.evaluations, count);
        assert!(stats.evaluations >= 2);
    }
}
