//! Simultaneous Perturbation Stochastic Approximation (SPSA).
//!
//! SPSA estimates the gradient from exactly two objective evaluations per iteration by
//! perturbing all parameters simultaneously along a random ±1 direction — this is the
//! "mini-batch size of 2" the paper uses for its shot accounting (Section 7.3).  Gain
//! sequences follow Spall's standard recommendations:
//! `a_k = a / (A + k + 1)^α`, `c_k = c / (k + 1)^γ` with `α = 0.602`, `γ = 0.101`.

use crate::{IterationStats, Optimizer};
use qrng::{CounterRng, SeedPolicy, StreamId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// SPSA gain-sequence configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpsaConfig {
    /// Gain numerator `a` of the update step size.
    pub a: f64,
    /// Perturbation magnitude numerator `c`.
    pub c: f64,
    /// Step-size decay exponent `α`.
    pub alpha: f64,
    /// Perturbation decay exponent `γ`.
    pub gamma: f64,
    /// Stability constant `A` added to the iteration count in the step-size denominator.
    pub stability: f64,
    /// Optional clip on the per-coordinate update magnitude (guards against the occasional
    /// huge stochastic-gradient spike when shot noise is large). `None` disables clipping.
    pub max_update: Option<f64>,
    /// Automatic gain calibration: if `Some(target)`, the first call to
    /// [`crate::Optimizer::step`] spends a handful of extra objective evaluations to
    /// estimate the typical gradient magnitude and rescales `a` so that the first update
    /// moves each parameter by roughly `target` radians (the standard Spall/Qiskit
    /// calibration).  `None` uses `a` verbatim.
    pub calibrate_first_step: Option<f64>,
    /// Number of gradient samples used by the calibration.
    pub calibration_samples: usize,
}

impl Default for SpsaConfig {
    fn default() -> Self {
        SpsaConfig {
            a: 0.15,
            c: 0.1,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
            max_update: Some(1.0),
            calibrate_first_step: Some(0.15),
            calibration_samples: 5,
        }
    }
}

/// A proposed SPSA phase awaiting its objective values.
#[derive(Clone, Debug)]
struct SpsaPending {
    candidates: Vec<Vec<f64>>,
    /// The Rademacher direction of the final ± pair.
    delta: Vec<f64>,
    c_k: f64,
    /// `(samples, c0, target)` when the batch is prefixed by calibration pairs.
    calibration: Option<(usize, f64, f64)>,
}

/// The SPSA optimizer.
///
/// Perturbation directions are drawn from a counter-based `qrng` stream keyed by the
/// seeding policy: the `k`-th Rademacher draw of a run is a pure function of
/// `(policy, stream, k)`, so optimizer trajectories are reproducible regardless of how
/// (or where) the candidate evaluations execute.
#[derive(Clone, Debug)]
pub struct Spsa {
    config: SpsaConfig,
    iteration: usize,
    policy: SeedPolicy,
    stream: StreamId,
    rng: CounterRng,
    calibrated_a: Option<f64>,
    pending: Option<SpsaPending>,
}

impl Spsa {
    /// Creates a new SPSA instance from a raw RNG seed.
    ///
    /// Thin wrapper over [`Spsa::with_policy`] with [`SeedPolicy::legacy`]; prefer the
    /// typed form in new code.
    pub fn new(config: SpsaConfig, seed: u64) -> Self {
        Self::with_policy(config, SeedPolicy::legacy(seed))
    }

    /// Creates a new SPSA instance drawing from `policy`'s default optimizer stream.
    pub fn with_policy(config: SpsaConfig, policy: SeedPolicy) -> Self {
        Self::with_stream(config, policy, StreamId::named("spsa"))
    }

    /// Creates a new SPSA instance drawing from an explicit stream of `policy` (e.g. a
    /// per-task substream, so concurrent runs sharing one root seed stay decorrelated).
    pub fn with_stream(config: SpsaConfig, policy: SeedPolicy, stream: StreamId) -> Self {
        Spsa {
            config,
            iteration: 0,
            policy,
            stream,
            rng: policy.rng(stream),
            calibrated_a: None,
            pending: None,
        }
    }

    /// The current iteration counter.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The effective gain numerator (calibrated if calibration has run).
    pub fn effective_a(&self) -> f64 {
        self.calibrated_a.unwrap_or(self.config.a)
    }

    /// The current step-size gain `a_k`.
    pub fn step_size(&self) -> f64 {
        let k = self.iteration as f64;
        self.effective_a() / (self.config.stability + k + 1.0).powf(self.config.alpha)
    }

    /// The current perturbation magnitude `c_k`.
    pub fn perturbation(&self) -> f64 {
        let k = self.iteration as f64;
        self.config.c / (k + 1.0).powf(self.config.gamma)
    }

    fn rademacher(&mut self, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|_| if self.rng.random::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }
}

impl Optimizer for Spsa {
    /// One SPSA iteration is a single phase: the optional first-step calibration pairs
    /// followed by the ± perturbation pair, all in one batch (so a batched backend can
    /// prepare every state of the iteration concurrently).
    fn propose(&mut self, params: &[f64]) -> Vec<Vec<f64>> {
        if let Some(pending) = &self.pending {
            return pending.candidates.clone();
        }
        let dim = params.len();
        let mut candidates = Vec::new();
        let mut calibration = None;
        if self.iteration == 0 && self.calibrated_a.is_none() {
            if let Some(target) = self.config.calibrate_first_step {
                let samples = self.config.calibration_samples.max(1);
                let c0 = self.config.c.max(1e-6);
                for _ in 0..samples {
                    let delta = self.rademacher(dim);
                    candidates.push(params.iter().zip(&delta).map(|(p, d)| p + c0 * d).collect());
                    candidates.push(params.iter().zip(&delta).map(|(p, d)| p - c0 * d).collect());
                }
                calibration = Some((samples, c0, target));
            }
        }
        let c_k = self.perturbation();
        let delta = self.rademacher(dim);
        candidates.push(
            params
                .iter()
                .zip(&delta)
                .map(|(p, d)| p + c_k * d)
                .collect(),
        );
        candidates.push(
            params
                .iter()
                .zip(&delta)
                .map(|(p, d)| p - c_k * d)
                .collect(),
        );
        let batch = candidates.clone();
        self.pending = Some(SpsaPending {
            candidates,
            delta,
            c_k,
            calibration,
        });
        batch
    }

    fn observe(&mut self, params: &mut Vec<f64>, values: &[f64]) -> Option<IterationStats> {
        let pending = self
            .pending
            .take()
            .expect("observe called without a pending proposal");
        assert_eq!(
            values.len(),
            pending.candidates.len(),
            "one objective value per proposed candidate required"
        );
        let mut offset = 0usize;
        if let Some((samples, c0, target)) = pending.calibration {
            // Spall's calibration rule: rescale `a` so the first update moves each
            // coordinate by about `target`.
            let mut magnitude_sum = 0.0;
            for s in 0..samples {
                magnitude_sum += ((values[2 * s] - values[2 * s + 1]) / (2.0 * c0)).abs();
            }
            let mean_magnitude = magnitude_sum / samples as f64;
            if mean_magnitude > 1e-10 {
                self.calibrated_a = Some(
                    target * (self.config.stability + 1.0).powf(self.config.alpha) / mean_magnitude,
                );
            }
            offset = 2 * samples;
        }
        let a_k = self.step_size();
        let f_plus = values[offset];
        let f_minus = values[offset + 1];
        let diff = (f_plus - f_minus) / (2.0 * pending.c_k);

        for (p, d) in params.iter_mut().zip(&pending.delta) {
            // ghat_i = diff / delta_i and delta_i = ±1, so ghat_i = diff * delta_i.
            let mut update = a_k * diff * d;
            if let Some(clip) = self.config.max_update {
                update = update.clamp(-clip, clip);
            }
            *p -= update;
        }

        self.iteration += 1;
        Some(IterationStats {
            evaluations: values.len(),
            loss: 0.5 * (f_plus + f_minus),
        })
    }

    fn name(&self) -> &'static str {
        "SPSA"
    }

    fn reset(&mut self) {
        self.iteration = 0;
        self.rng = self.policy.rng(self.stream);
        self.calibrated_a = None;
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gains_decay_with_iterations() {
        let mut spsa = Spsa::new(SpsaConfig::default(), 1);
        let a0 = spsa.step_size();
        let c0 = spsa.perturbation();
        let mut params = vec![0.0; 3];
        let mut obj = |p: &[f64]| p.iter().map(|x| x * x).sum();
        for _ in 0..50 {
            spsa.step(&mut params, &mut obj);
        }
        assert!(spsa.step_size() < a0);
        assert!(spsa.perturbation() < c0);
        assert_eq!(spsa.iteration(), 50);
    }

    #[test]
    fn converges_on_separable_quadratic() {
        let mut spsa = Spsa::new(
            SpsaConfig {
                a: 0.3,
                ..Default::default()
            },
            7,
        );
        let target = [0.7, -0.4, 1.1, 0.0, -0.9];
        let mut params = vec![0.0; 5];
        let mut obj = |p: &[f64]| -> f64 {
            p.iter()
                .zip(target.iter())
                .map(|(x, t)| (x - t).powi(2))
                .sum()
        };
        for _ in 0..600 {
            spsa.step(&mut params, &mut obj);
        }
        let final_loss: f64 = params
            .iter()
            .zip(target.iter())
            .map(|(x, t)| (x - t).powi(2))
            .sum();
        assert!(final_loss < 0.05, "final loss {final_loss}");
    }

    #[test]
    fn tolerates_noisy_objectives() {
        // Additive noise should not prevent coarse convergence — this is SPSA's selling
        // point for shot-noisy VQA objectives.
        let mut spsa = Spsa::new(SpsaConfig::default(), 99);
        let mut noise_rng = StdRng::seed_from_u64(5);
        let mut params = vec![2.0, -2.0];
        let mut obj = |p: &[f64]| -> f64 {
            let clean: f64 = p.iter().map(|x| x * x).sum();
            clean + 0.01 * (noise_rng.random::<f64>() - 0.5)
        };
        for _ in 0..800 {
            spsa.step(&mut params, &mut obj);
        }
        let clean: f64 = params.iter().map(|x| x * x).sum();
        assert!(clean < 0.5, "noisy convergence too poor: {clean}");
    }

    #[test]
    fn reset_restores_iteration_and_rng() {
        let mut spsa = Spsa::new(SpsaConfig::default(), 21);
        let mut params_a = vec![0.5; 2];
        let mut obj = |p: &[f64]| p.iter().map(|x| x * x).sum();
        for _ in 0..10 {
            spsa.step(&mut params_a, &mut obj);
        }
        spsa.reset();
        assert_eq!(spsa.iteration(), 0);
        let mut params_b = vec![0.5; 2];
        let mut spsa2 = Spsa::new(SpsaConfig::default(), 21);
        let s1 = spsa.step(&mut params_b, &mut obj);
        let mut params_c = vec![0.5; 2];
        let s2 = spsa2.step(&mut params_c, &mut obj);
        assert_eq!(params_b, params_c);
        assert_eq!(s1.loss, s2.loss);
    }

    #[test]
    fn update_clipping_bounds_step() {
        let mut spsa = Spsa::new(
            SpsaConfig {
                a: 100.0,
                max_update: Some(0.1),
                ..Default::default()
            },
            3,
        );
        let mut params = vec![0.0];
        let mut obj = |p: &[f64]| 100.0 * p[0];
        let before = params[0];
        spsa.step(&mut params, &mut obj);
        assert!((params[0] - before).abs() <= 0.1 + 1e-12);
    }
}
