//! COBYLA-style derivative-free trust-region optimizer.
//!
//! The original COBYLA (Powell 1994) builds a linear model of the objective (and of the
//! constraints) from a simplex of `n + 1` interpolation points and minimizes it inside a
//! shrinking trust region.  VQA objectives are unconstrained, so this implementation keeps
//! the defining ingredients — simplex-based linear interpolation, trust-region step,
//! radius management — and drops the constraint machinery.  See DESIGN.md §3 for the
//! substitution note.

use crate::{IterationStats, Optimizer};
use serde::{Deserialize, Serialize};

/// COBYLA configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CobylaConfig {
    /// Initial trust-region radius (also the initial simplex edge length).
    pub initial_radius: f64,
    /// The radius below which the trust region stops shrinking.
    pub min_radius: f64,
    /// Multiplicative radius shrink factor applied after an unsuccessful step.
    pub shrink_factor: f64,
    /// Multiplicative radius growth factor applied after a very successful step.
    pub grow_factor: f64,
}

impl Default for CobylaConfig {
    fn default() -> Self {
        CobylaConfig {
            initial_radius: 0.3,
            min_radius: 1e-4,
            shrink_factor: 0.5,
            grow_factor: 1.5,
        }
    }
}

/// Which candidate batch the optimizer is waiting on.
#[derive(Clone, Debug)]
enum Phase {
    Idle,
    /// Initial simplex construction around the current parameters.
    Build {
        points: Vec<Vec<f64>>,
    },
    /// The trust-region candidate probe.
    Candidate {
        candidate: Vec<f64>,
        best_value: f64,
        best_point: Vec<f64>,
    },
    /// Post-rejection simplex rebuild around the best point at the shrunk radius.
    Rebuild {
        points: Vec<Vec<f64>>,
        f_candidate: f64,
    },
}

/// The COBYLA-style optimizer.
#[derive(Clone, Debug)]
pub struct Cobyla {
    config: CobylaConfig,
    radius: f64,
    /// Simplex vertices (`n + 1` points) and their objective values, lazily built on the
    /// first step around the caller-supplied parameters.
    simplex: Vec<(Vec<f64>, f64)>,
    phase: Phase,
    /// Objective evaluations consumed so far in the current logical iteration.
    evals_acc: usize,
}

impl Cobyla {
    /// Creates a new optimizer instance.
    pub fn new(config: CobylaConfig) -> Self {
        let radius = config.initial_radius;
        Cobyla {
            config,
            radius,
            simplex: Vec::new(),
            phase: Phase::Idle,
            evals_acc: 0,
        }
    }

    /// The current trust-region radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Simplex points around `center` at the current radius (base point first).
    fn simplex_points(&self, center: &[f64]) -> Vec<Vec<f64>> {
        let n = center.len();
        let mut points = Vec::with_capacity(n + 1);
        points.push(center.to_vec());
        for i in 0..n {
            let mut p = center.to_vec();
            p[i] += self.radius;
            points.push(p);
        }
        points
    }

    /// Estimates the gradient of the linear interpolation model from the simplex: solves
    /// the `n × n` system `(x_i − x_0) · g = f_i − f_0`.
    fn linear_model_gradient(&self) -> Option<Vec<f64>> {
        let n = self.simplex[0].0.len();
        if self.simplex.len() != n + 1 {
            return None;
        }
        let x0 = &self.simplex[0].0;
        let f0 = self.simplex[0].1;
        let mut a = vec![vec![0.0f64; n]; n];
        let mut b = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = self.simplex[i + 1].0[j] - x0[j];
            }
            b[i] = self.simplex[i + 1].1 - f0;
        }
        solve_linear_system(&mut a, &mut b)
    }
}

impl Optimizer for Cobyla {
    fn propose(&mut self, params: &[f64]) -> Vec<Vec<f64>> {
        match &self.phase {
            Phase::Idle => {}
            Phase::Build { points } | Phase::Rebuild { points, .. } => return points.clone(),
            Phase::Candidate { candidate, .. } => return vec![candidate.clone()],
        }

        let n = params.len();
        if self.simplex.len() != n + 1 {
            let points = self.simplex_points(params);
            self.phase = Phase::Build {
                points: points.clone(),
            };
            return points;
        }

        // Sort so that vertex 0 is the best.
        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best_value = self.simplex[0].1;
        let best_point = self.simplex[0].0.clone();

        let gradient = self.linear_model_gradient();
        let candidate = match &gradient {
            Some(g) => {
                let norm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm < 1e-15 {
                    best_point.clone()
                } else {
                    best_point
                        .iter()
                        .zip(g.iter())
                        .map(|(x, gi)| x - self.radius * gi / norm)
                        .collect()
                }
            }
            // Degenerate simplex: perturb the best point along the first axis.
            None => {
                let mut p = best_point.clone();
                if !p.is_empty() {
                    p[0] += self.radius;
                }
                p
            }
        };
        let batch = vec![candidate.clone()];
        self.phase = Phase::Candidate {
            candidate,
            best_value,
            best_point,
        };
        batch
    }

    fn observe(&mut self, params: &mut Vec<f64>, values: &[f64]) -> Option<IterationStats> {
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => panic!("observe called without a pending proposal"),
            Phase::Build { points } => {
                assert_eq!(values.len(), points.len(), "one value per simplex point");
                self.evals_acc += values.len();
                self.simplex = points.into_iter().zip(values.iter().copied()).collect();
                None
            }
            Phase::Candidate {
                candidate,
                best_value,
                best_point,
            } => {
                let f_candidate = values[0];
                self.evals_acc += 1;
                if f_candidate < best_value {
                    // Successful step: replace the worst vertex and recentre on the new
                    // best.
                    let worst = self.simplex.len() - 1;
                    self.simplex[worst] = (candidate.clone(), f_candidate);
                    *params = candidate;
                    if f_candidate < best_value - 0.1 * self.radius {
                        self.radius *= self.config.grow_factor;
                    }
                    self.finish(f_candidate)
                } else {
                    // Unsuccessful: keep the best-known point, shrink the trust region,
                    // and rebuild the simplex around it at the new radius so the linear
                    // model stays well conditioned.
                    *params = best_point;
                    self.radius =
                        (self.radius * self.config.shrink_factor).max(self.config.min_radius);
                    self.phase = Phase::Rebuild {
                        points: self.simplex_points(params),
                        f_candidate,
                    };
                    None
                }
            }
            Phase::Rebuild {
                points,
                f_candidate,
            } => {
                assert_eq!(values.len(), points.len(), "one value per simplex point");
                self.evals_acc += values.len();
                self.simplex = points.into_iter().zip(values.iter().copied()).collect();
                self.finish(f_candidate)
            }
        }
    }

    fn name(&self) -> &'static str {
        "COBYLA"
    }

    fn reset(&mut self) {
        self.radius = self.config.initial_radius;
        self.simplex.clear();
        self.phase = Phase::Idle;
        self.evals_acc = 0;
    }
}

impl Cobyla {
    /// Completes the iteration, reporting the best value seen across the simplex and the
    /// candidate.
    fn finish(&mut self, f_candidate: f64) -> Option<IterationStats> {
        let reported = self
            .simplex
            .iter()
            .map(|(_, f)| *f)
            .fold(f64::INFINITY, f64::min)
            .min(f_candidate);
        let stats = IterationStats {
            evaluations: self.evals_acc,
            loss: reported,
        };
        self.phase = Phase::Idle;
        self.evals_acc = 0;
        Some(stats)
    }
}

/// Solves `A x = b` in place by Gaussian elimination with partial pivoting.  Returns
/// `None` if the matrix is (numerically) singular.
#[allow(clippy::needless_range_loop)]
fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot_row][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_solver_recovers_known_solution() {
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve_linear_system(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_returns_none() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear_system(&mut a, &mut b).is_none());
    }

    #[test]
    fn converges_on_rosenbrock_like_bowl() {
        let mut opt = Cobyla::new(CobylaConfig::default());
        let mut params = vec![0.0, 0.0];
        let mut obj = |p: &[f64]| (p[0] - 0.5).powi(2) + 4.0 * (p[1] + 0.25).powi(2);
        for _ in 0..150 {
            opt.step(&mut params, &mut obj);
        }
        let final_val = (params[0] - 0.5).powi(2) + 4.0 * (params[1] + 0.25).powi(2);
        assert!(final_val < 1e-2, "{final_val}");
    }

    #[test]
    fn radius_shrinks_when_stuck_at_optimum() {
        let mut opt = Cobyla::new(CobylaConfig::default());
        let mut params = vec![0.0, 0.0];
        let mut obj = |p: &[f64]| p.iter().map(|x| x * x).sum();
        let start_radius = opt.radius();
        for _ in 0..60 {
            opt.step(&mut params, &mut obj);
        }
        assert!(opt.radius() < start_radius);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Cobyla::new(CobylaConfig::default());
        let mut params = vec![0.2];
        let mut obj = |p: &[f64]| p[0] * p[0];
        opt.step(&mut params, &mut obj);
        opt.reset();
        assert_eq!(opt.radius(), CobylaConfig::default().initial_radius);
    }

    #[test]
    fn first_step_reports_simplex_evaluations() {
        let mut opt = Cobyla::new(CobylaConfig::default());
        let mut params = vec![0.3, 0.4, 0.5];
        let mut count = 0usize;
        let mut obj = |p: &[f64]| {
            count += 1;
            p.iter().map(|x| x * x).sum()
        };
        let stats = opt.step(&mut params, &mut obj);
        assert_eq!(stats.evaluations, count);
        assert!(stats.evaluations >= params.len() + 2);
    }
}
