//! Structured execution-service errors.

use std::fmt;

/// Why a job could not be accepted, scheduled, or executed.
///
/// Every malformed-input condition that used to panic deep inside the simulator stack
/// (parameter-count mismatches, operator/register size disagreements, out-of-range basis
/// states, empty circuits) is validated at the submission boundary and reported as a
/// value — either immediately from `submit`, or through the [`crate::JobHandle`] for
/// conditions that arise after queueing (cancellation, shutdown, a panicking driver).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// No backend with this name is registered with the executor.
    UnknownBackend(String),
    /// The selected backend does not advertise a capability the job requires.
    MissingCapability {
        /// The backend that was selected.
        backend: String,
        /// The first required capability it lacks (`"batch"`, `"shots"`, `"noise"`, or
        /// `"trajectories"`).
        missing: &'static str,
    },
    /// The job's circuit has no gates.
    EmptyCircuit,
    /// The job's parameter vector does not match the circuit's parameter count.
    ParameterCountMismatch {
        /// Parameters the circuit expects.
        expected: usize,
        /// Parameters the job supplied.
        got: usize,
    },
    /// An observable's register size does not match the circuit's.
    QubitCountMismatch {
        /// Qubits in the circuit's register.
        circuit: usize,
        /// Qubits in the offending operator.
        operator: usize,
    },
    /// A basis-state initial state indexes outside the circuit's register.
    BasisStateOutOfRange {
        /// The requested basis index.
        basis: u64,
        /// Qubits in the circuit's register.
        num_qubits: usize,
    },
    /// The job was cancelled before execution started.
    Cancelled,
    /// The executor shut down before the job executed.
    ShutDown,
    /// The job's deadline passed before it was scheduled: the scheduler drops expired
    /// jobs ahead of slate assembly so a backlog never wastes backend time on work
    /// nobody is still waiting for.
    DeadlineExceeded,
    /// Admission control refused (or load-shedding evicted) the job: a bounded client
    /// or global queue was at capacity under the executor's
    /// [`crate::AdmissionPolicy`].
    Overloaded,
    /// The job targeted a quarantined backend (a driver panic tripped supervision), no
    /// failover was permitted or possible, and the supervisor has not yet readmitted
    /// the backend via a canary probe.
    BackendQuarantined {
        /// The quarantined backend's registry name.
        backend: String,
    },
    /// The backend driver panicked while executing the job (the payload is the panic
    /// message).  Validation makes this unreachable for well-formed jobs; it is the
    /// safety net that turns any residual driver panic into a per-job error instead of
    /// a crashed service.
    Execution(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownBackend(name) => write!(f, "unknown backend {name:?}"),
            ExecError::MissingCapability { backend, missing } => {
                write!(
                    f,
                    "backend {backend:?} lacks required capability {missing:?}"
                )
            }
            ExecError::EmptyCircuit => write!(f, "the job's circuit has no gates"),
            ExecError::ParameterCountMismatch { expected, got } => write!(
                f,
                "parameter vector length {got} does not match the circuit's {expected} parameters"
            ),
            ExecError::QubitCountMismatch { circuit, operator } => write!(
                f,
                "operator acts on {operator} qubits but the circuit register has {circuit}"
            ),
            ExecError::BasisStateOutOfRange { basis, num_qubits } => write!(
                f,
                "basis state {basis} does not fit a {num_qubits}-qubit register"
            ),
            ExecError::Cancelled => write!(f, "the job was cancelled before execution"),
            ExecError::ShutDown => write!(f, "the executor shut down before the job executed"),
            ExecError::DeadlineExceeded => {
                write!(f, "the job's deadline passed before it was scheduled")
            }
            ExecError::Overloaded => write!(
                f,
                "the executor is overloaded: a bounded queue rejected or shed the job"
            ),
            ExecError::BackendQuarantined { backend } => write!(
                f,
                "backend {backend:?} is quarantined after a driver panic and no failover applied"
            ),
            ExecError::Execution(msg) => write!(f, "the backend driver panicked: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}
