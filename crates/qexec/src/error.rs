//! Structured execution-service errors.

use std::fmt;

/// Why a job could not be accepted, scheduled, or executed.
///
/// Every malformed-input condition that used to panic deep inside the simulator stack
/// (parameter-count mismatches, operator/register size disagreements, out-of-range basis
/// states, empty circuits) is validated at the submission boundary and reported as a
/// value — either immediately from `submit`, or through the [`crate::JobHandle`] for
/// conditions that arise after queueing (cancellation, shutdown, a panicking driver).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// No backend with this name is registered with the executor.
    UnknownBackend(String),
    /// The selected backend does not advertise a capability the job requires.
    MissingCapability {
        /// The backend that was selected.
        backend: String,
        /// The first required capability it lacks (one of [`CAPABILITY_NAMES`]:
        /// `"batch"`, `"shots"`, `"noise"`, `"trajectories"`, or `"retry_safe"`).
        missing: &'static str,
    },
    /// The job's circuit has no gates.
    EmptyCircuit,
    /// The job's parameter vector does not match the circuit's parameter count.
    ParameterCountMismatch {
        /// Parameters the circuit expects.
        expected: usize,
        /// Parameters the job supplied.
        got: usize,
    },
    /// An observable's register size does not match the circuit's.
    QubitCountMismatch {
        /// Qubits in the circuit's register.
        circuit: usize,
        /// Qubits in the offending operator.
        operator: usize,
    },
    /// A basis-state initial state indexes outside the circuit's register.
    BasisStateOutOfRange {
        /// The requested basis index.
        basis: u64,
        /// Qubits in the circuit's register.
        num_qubits: usize,
    },
    /// The job was cancelled before execution started.
    Cancelled,
    /// The executor shut down before the job executed.
    ShutDown,
    /// The job's deadline passed before it was scheduled: the scheduler drops expired
    /// jobs ahead of slate assembly so a backlog never wastes backend time on work
    /// nobody is still waiting for.
    DeadlineExceeded,
    /// Admission control refused (or load-shedding evicted) the job: a bounded client
    /// or global queue was at capacity under the executor's
    /// [`crate::AdmissionPolicy`].
    Overloaded,
    /// The job targeted a quarantined backend (a driver panic tripped supervision), no
    /// failover was permitted or possible, and the supervisor has not yet readmitted
    /// the backend via a canary probe.
    BackendQuarantined {
        /// The quarantined backend's registry name.
        backend: String,
    },
    /// The backend driver panicked while executing the job (the payload is the panic
    /// message).  Validation makes this unreachable for well-formed jobs; it is the
    /// safety net that turns any residual driver panic into a per-job error instead of
    /// a crashed service.
    Execution(String),
    /// A parameter is NaN or infinite.  Non-finite parameters poison every amplitude
    /// they touch and can stall iterative optimizers silently, so the service boundary
    /// rejects them outright now that jobs arrive from untrusted network callers.
    NonFiniteParameter {
        /// Index of the first offending entry in the job's parameter vector.
        index: usize,
    },
    /// The circuit's register exceeds the service cap ([`crate::MAX_JOB_QUBITS`]).  A
    /// dense statevector is `2^n` amplitudes; an absurd `n` from a hostile caller must
    /// fail here, not as an allocation the size of the address space.
    RegisterTooLarge {
        /// Qubits in the circuit's register.
        num_qubits: usize,
        /// The service cap the register exceeds.
        max: usize,
    },
    /// The charged observable (or a free tracking observable) has zero Pauli terms.
    /// Its expectation is identically zero — a well-behaved in-process caller never
    /// submits one, so over the network it is treated as malformed input rather than
    /// silently billed work.
    EmptyObservable,
    /// The network transport to a remote executor failed (connection refused, reset,
    /// or closed mid-request; the payload describes the failure).  Local submissions
    /// never produce this — it exists so remote handles resolve with a structured
    /// error instead of a panic when the wire drops.
    Transport(String),
}

/// Capability names as they appear in [`ExecError::MissingCapability::missing`], in
/// wire-code order: [`ExecError::parts`] encodes the missing capability as an index
/// into this table so the `&'static str` survives a network round trip.
pub const CAPABILITY_NAMES: [&str; 5] = ["batch", "shots", "noise", "trajectories", "retry_safe"];

impl ExecError {
    /// The error's stable numeric wire code.
    ///
    /// Codes are part of the network protocol (`qnet` error frames carry them) and of
    /// the observability contract (failed jobs count under an `err<code>_<name>`
    /// label, so a Prometheus scrape and a wire client agree on what failed).  They
    /// are append-only: a new variant takes the next free code, existing codes are
    /// never renumbered.
    pub fn code(&self) -> u16 {
        match self {
            ExecError::UnknownBackend(_) => 1,
            ExecError::MissingCapability { .. } => 2,
            ExecError::EmptyCircuit => 3,
            ExecError::ParameterCountMismatch { .. } => 4,
            ExecError::QubitCountMismatch { .. } => 5,
            ExecError::BasisStateOutOfRange { .. } => 6,
            ExecError::Cancelled => 7,
            ExecError::ShutDown => 8,
            ExecError::DeadlineExceeded => 9,
            ExecError::Overloaded => 10,
            ExecError::BackendQuarantined { .. } => 11,
            ExecError::Execution(_) => 12,
            ExecError::NonFiniteParameter { .. } => 13,
            ExecError::RegisterTooLarge { .. } => 14,
            ExecError::EmptyObservable => 15,
            ExecError::Transport(_) => 16,
        }
    }

    /// The error's stable snake-case label, paired with [`ExecError::code`] in the
    /// qobs `err<code>_<name>` counter labels and in rendered error frames.
    pub fn code_name(&self) -> &'static str {
        match self {
            ExecError::UnknownBackend(_) => "unknown_backend",
            ExecError::MissingCapability { .. } => "missing_capability",
            ExecError::EmptyCircuit => "empty_circuit",
            ExecError::ParameterCountMismatch { .. } => "parameter_count_mismatch",
            ExecError::QubitCountMismatch { .. } => "qubit_count_mismatch",
            ExecError::BasisStateOutOfRange { .. } => "basis_state_out_of_range",
            ExecError::Cancelled => "cancelled",
            ExecError::ShutDown => "shut_down",
            ExecError::DeadlineExceeded => "deadline_exceeded",
            ExecError::Overloaded => "overloaded",
            ExecError::BackendQuarantined { .. } => "backend_quarantined",
            ExecError::Execution(_) => "execution",
            ExecError::NonFiniteParameter { .. } => "non_finite_parameter",
            ExecError::RegisterTooLarge { .. } => "register_too_large",
            ExecError::EmptyObservable => "empty_observable",
            ExecError::Transport(_) => "transport",
        }
    }

    /// Decomposes the error into its wire payload: two numeric auxiliaries and a
    /// string, exactly what [`ExecError::from_code`] needs (together with
    /// [`ExecError::code`]) to rebuild the value on the other side of a connection.
    pub fn parts(&self) -> (u64, u64, String) {
        match self {
            ExecError::UnknownBackend(name) => (0, 0, name.clone()),
            ExecError::MissingCapability { backend, missing } => {
                let idx = CAPABILITY_NAMES
                    .iter()
                    .position(|c| c == missing)
                    .expect("missing capability names come from CAPABILITY_NAMES");
                (idx as u64, 0, backend.clone())
            }
            ExecError::ParameterCountMismatch { expected, got } => {
                (*expected as u64, *got as u64, String::new())
            }
            ExecError::QubitCountMismatch { circuit, operator } => {
                (*circuit as u64, *operator as u64, String::new())
            }
            ExecError::BasisStateOutOfRange { basis, num_qubits } => {
                (*basis, *num_qubits as u64, String::new())
            }
            ExecError::BackendQuarantined { backend } => (0, 0, backend.clone()),
            ExecError::Execution(msg) | ExecError::Transport(msg) => (0, 0, msg.clone()),
            ExecError::NonFiniteParameter { index } => (*index as u64, 0, String::new()),
            ExecError::RegisterTooLarge { num_qubits, max } => {
                (*num_qubits as u64, *max as u64, String::new())
            }
            ExecError::EmptyCircuit
            | ExecError::Cancelled
            | ExecError::ShutDown
            | ExecError::DeadlineExceeded
            | ExecError::Overloaded
            | ExecError::EmptyObservable => (0, 0, String::new()),
        }
    }

    /// Rebuilds an error from its wire code and payload; the exact inverse of
    /// [`ExecError::code`] + [`ExecError::parts`]:
    /// `ExecError::from_code(e.code(), a, b, text) == Some(e)` for `(a, b, text) =
    /// e.parts()`.  Returns `None` for unknown codes or out-of-range payloads (e.g. a
    /// capability index past [`CAPABILITY_NAMES`]), so a newer peer's codes degrade
    /// into an explicit decode failure instead of a mislabeled error.
    pub fn from_code(code: u16, aux0: u64, aux1: u64, text: String) -> Option<ExecError> {
        Some(match code {
            1 => ExecError::UnknownBackend(text),
            2 => ExecError::MissingCapability {
                backend: text,
                missing: CAPABILITY_NAMES.get(aux0 as usize)?,
            },
            3 => ExecError::EmptyCircuit,
            4 => ExecError::ParameterCountMismatch {
                expected: aux0 as usize,
                got: aux1 as usize,
            },
            5 => ExecError::QubitCountMismatch {
                circuit: aux0 as usize,
                operator: aux1 as usize,
            },
            6 => ExecError::BasisStateOutOfRange {
                basis: aux0,
                num_qubits: aux1 as usize,
            },
            7 => ExecError::Cancelled,
            8 => ExecError::ShutDown,
            9 => ExecError::DeadlineExceeded,
            10 => ExecError::Overloaded,
            11 => ExecError::BackendQuarantined { backend: text },
            12 => ExecError::Execution(text),
            13 => ExecError::NonFiniteParameter {
                index: aux0 as usize,
            },
            14 => ExecError::RegisterTooLarge {
                num_qubits: aux0 as usize,
                max: aux1 as usize,
            },
            15 => ExecError::EmptyObservable,
            16 => ExecError::Transport(text),
            _ => return None,
        })
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownBackend(name) => write!(f, "unknown backend {name:?}"),
            ExecError::MissingCapability { backend, missing } => {
                write!(
                    f,
                    "backend {backend:?} lacks required capability {missing:?}"
                )
            }
            ExecError::EmptyCircuit => write!(f, "the job's circuit has no gates"),
            ExecError::ParameterCountMismatch { expected, got } => write!(
                f,
                "parameter vector length {got} does not match the circuit's {expected} parameters"
            ),
            ExecError::QubitCountMismatch { circuit, operator } => write!(
                f,
                "operator acts on {operator} qubits but the circuit register has {circuit}"
            ),
            ExecError::BasisStateOutOfRange { basis, num_qubits } => write!(
                f,
                "basis state {basis} does not fit a {num_qubits}-qubit register"
            ),
            ExecError::Cancelled => write!(f, "the job was cancelled before execution"),
            ExecError::ShutDown => write!(f, "the executor shut down before the job executed"),
            ExecError::DeadlineExceeded => {
                write!(f, "the job's deadline passed before it was scheduled")
            }
            ExecError::Overloaded => write!(
                f,
                "the executor is overloaded: a bounded queue rejected or shed the job"
            ),
            ExecError::BackendQuarantined { backend } => write!(
                f,
                "backend {backend:?} is quarantined after a driver panic and no failover applied"
            ),
            ExecError::Execution(msg) => write!(f, "the backend driver panicked: {msg}"),
            ExecError::NonFiniteParameter { index } => {
                write!(f, "parameter {index} is NaN or infinite")
            }
            ExecError::RegisterTooLarge { num_qubits, max } => write!(
                f,
                "a {num_qubits}-qubit register exceeds the service cap of {max} qubits"
            ),
            ExecError::EmptyObservable => {
                write!(f, "an observable has zero Pauli terms")
            }
            ExecError::Transport(msg) => {
                write!(f, "transport to the remote executor failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ExecError {}
