//! Transport-agnostic submission: the trait pair that lets VQA-level drivers run
//! against a local [`ExecClient`] or a remote `qnet::NetClient` unchanged.
//!
//! [`JobSubmitter`] abstracts "something that accepts [`EvalJob`]s and hands back
//! completion handles"; [`CompletionHandle`] abstracts the blocking result side of
//! [`JobHandle`].  The runners in [`crate::runner`] are generic over these, so the
//! *same* optimizer loop drives an in-process executor and a TCP connection to one —
//! which is exactly the property the loopback bit-identity suite pins: a driver's
//! results cannot depend on which side of a socket its executor lives on.

use crate::error::ExecError;
use crate::executor::ExecClient;
use crate::job::{EvalJob, JobHandle, SubmitOptions};
use std::time::Duration;
use vqa::EvalResult;

/// The blocking completion side of a submitted job, local or remote.
pub trait CompletionHandle {
    /// Blocks until the job completes and returns its result.
    fn wait(&self) -> Result<EvalResult, ExecError>;

    /// Blocks until the job completes or `timeout` elapses (`None` on timeout; the
    /// job stays pending and can be waited on again).
    fn wait_timeout(&self, timeout: Duration) -> Option<Result<EvalResult, ExecError>>;

    /// The job's result if it has already completed (non-blocking).
    fn try_result(&self) -> Option<Result<EvalResult, ExecError>>;

    /// Whether the job has completed (successfully or not).
    fn is_finished(&self) -> bool {
        self.try_result().is_some()
    }
}

/// Something that accepts owned evaluation jobs: a local [`ExecClient`], or a remote
/// client speaking the `qnet` wire protocol.
pub trait JobSubmitter {
    /// The completion handle this submitter hands back.
    type Handle: CompletionHandle;

    /// Submits a charged evaluation job.
    fn submit_job(&self, job: EvalJob, opts: &SubmitOptions) -> Result<Self::Handle, ExecError>;

    /// Submits an uncharged probe (exact expectation of the charged observable, zero
    /// shots, free observables ignored).
    fn submit_probe_job(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
    ) -> Result<Self::Handle, ExecError>;

    /// Submits a group of jobs (default backend, default priority) that should
    /// coalesce into one batched slate where the transport supports it.  On a
    /// rejected job, already-submitted jobs of the group are withdrawn before the
    /// error returns.  The default implementation submits sequentially with no
    /// coalescing guarantee; [`ExecClient`] pauses the executor around the group and
    /// `qnet` ships the group as one batch frame.
    fn submit_job_group(&self, jobs: Vec<EvalJob>) -> Result<Vec<Self::Handle>, ExecError> {
        jobs.into_iter()
            .map(|job| self.submit_job(job, &SubmitOptions::default()))
            .collect()
    }
}

impl CompletionHandle for JobHandle {
    fn wait(&self) -> Result<EvalResult, ExecError> {
        JobHandle::wait(self)
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<EvalResult, ExecError>> {
        JobHandle::wait_timeout(self, timeout)
    }

    fn try_result(&self) -> Option<Result<EvalResult, ExecError>> {
        JobHandle::try_result(self)
    }

    fn is_finished(&self) -> bool {
        JobHandle::is_finished(self)
    }
}

impl JobSubmitter for ExecClient {
    type Handle = JobHandle;

    fn submit_job(&self, job: EvalJob, opts: &SubmitOptions) -> Result<JobHandle, ExecError> {
        self.submit_with(job, opts)
    }

    fn submit_probe_job(&self, job: EvalJob, opts: &SubmitOptions) -> Result<JobHandle, ExecError> {
        self.submit_probe_with(job, opts)
    }

    fn submit_job_group(&self, jobs: Vec<EvalJob>) -> Result<Vec<JobHandle>, ExecError> {
        self.submit_all(jobs)
    }
}
