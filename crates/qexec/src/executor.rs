//! The executor: backend registry, fair scheduler, admission control, supervision,
//! and the worker.

use crate::error::ExecError;
use crate::fault::TransientFault;
use crate::job::{EvalJob, JobHandle, JobKind, JobState, SubmitOptions};
use crate::supervisor::{self, BackendHealth, Health};
use qop::PauliOp;
use qrng::StreamId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use vqa::{Backend, BackendCaps, EvalRequest, EvalResult};

/// Name under which [`Executor::single`] registers its only backend.
pub const DEFAULT_BACKEND: &str = "default";

/// Event-counter name table for the executor's [`qobs::Registry`]: the seven
/// [`ExecStats`] fields in declaration order, then the supervision events that have no
/// stats field.  The indices in the crate-private `event` module must match
/// this order.
pub const EVENT_NAMES: &[&str] = &[
    "rejected",
    "shed",
    "expired",
    "retries",
    "failovers",
    "panics",
    "readmissions",
    "quarantines",
    "canary_probes",
];

/// Indices into [`EVENT_NAMES`] for the executor's event counters.
pub(crate) mod event {
    pub const REJECTED: usize = 0;
    pub const SHED: usize = 1;
    pub const EXPIRED: usize = 2;
    pub const RETRIES: usize = 3;
    pub const FAILOVERS: usize = 4;
    pub const PANICS: usize = 5;
    pub const READMISSIONS: usize = 6;
    pub const QUARANTINES: usize = 7;
    pub const CANARY_PROBES: usize = 8;
}

/// Default cap on [`SubmitOptions::retries`] (override with
/// [`ExecutorBuilder::retry_limit`]).
pub const DEFAULT_RETRY_LIMIT: u32 = 3;

/// What a bounded queue does with a submission that would overflow it (see
/// [`ExecutorBuilder::queue_capacity`] / [`ExecutorBuilder::per_client_capacity`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail the submission immediately with [`ExecError::Overloaded`] (the default:
    /// callers see backpressure as a structured error and decide themselves).
    #[default]
    Reject,
    /// Block the submitting thread until queue space frees up (jobs draining,
    /// cancellation, or deadline expiry).  Submitting against a full queue on a
    /// *paused* executor blocks until someone resumes it — callers holding a pause
    /// (e.g. inside [`ExecClient::submit_all`]) must size capacity for their largest
    /// group, or the group deadlocks against its own pause.
    Block,
    /// Evict the queued job that matters least — lowest priority first, then the one
    /// expiring soonest, then the newest — completing it with
    /// [`ExecError::Overloaded`], and admit the newcomer in its place.  If the
    /// newcomer itself matters least, it is rejected instead.  Under sustained
    /// overload this keeps the queue holding the highest-value work.
    ShedLowestPriority,
}

/// Lifetime counters of the service's robustness machinery (see [`Executor::stats`]).
/// Monotonic; consistent whenever the jobs a caller cares about have resolved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Submissions refused with [`ExecError::Overloaded`] (both
    /// [`AdmissionPolicy::Reject`] refusals and newcomers that lost the shedding
    /// comparison).
    pub rejected: u64,
    /// Queued jobs evicted by [`AdmissionPolicy::ShedLowestPriority`].
    pub shed: u64,
    /// Jobs dropped with [`ExecError::DeadlineExceeded`] before execution.
    pub expired: u64,
    /// Failed executions re-queued for retry.
    pub retries: u64,
    /// Jobs executed on a standby backend because their target was quarantined.
    pub failovers: u64,
    /// Hard driver panics (each one quarantines its backend).
    pub panics: u64,
    /// Quarantined backends readmitted after a successful canary probe.
    pub readmissions: u64,
}

/// Immutable per-backend registry metadata (the boxed driver itself lives on the worker
/// thread; this is the submission-side view).
struct BackendMeta {
    name: String,
    caps: BackendCaps,
    /// Mirror of the driver's shot ledger, refreshed by the worker after every executed
    /// group — consistent whenever the jobs a caller cares about have completed.
    shots: AtomicU64,
}

/// A job sitting in a client queue (or the executor's retry queue).
struct QueuedJob {
    uid: u64,
    priority: i32,
    kind: JobKind,
    backend: usize,
    /// The submission's capability requirements, kept for failover selection.
    require: BackendCaps,
    /// Remaining retry budget (decremented each time the job is re-queued).
    retries_left: u32,
    /// Whether a quarantined target may be substituted by a compatible standby.
    failover: bool,
    /// The job's `qrng` draw stream, resolved at admission (pinned by the submission
    /// or derived from the job's uid).  Passed to the driver with every execution —
    /// including retries and failovers, which therefore reproduce the same draws.
    stream: StreamId,
    job: EvalJob,
    state: Arc<JobState>,
}

impl QueuedJob {
    /// A re-queued copy for one retry attempt (shares the completion state, keeps the
    /// first scheduling's sequence number).
    fn retry_clone(&self) -> QueuedJob {
        QueuedJob {
            uid: self.uid,
            priority: self.priority,
            kind: self.kind,
            backend: self.backend,
            require: self.require,
            retries_left: self.retries_left - 1,
            failover: self.failover,
            stream: self.stream,
            job: self.job.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

/// Whether shedding evicts `a` in preference to `b`: lower priority first; at equal
/// priority the job expiring soonest (no deadline sorts last — it can still wait); then
/// the newest.  With a full queue of equals, the newest *is* the incoming job, so
/// sustained equal-priority overload degenerates to rejecting arrivals — FIFO order of
/// accepted work is preserved.
fn sheds_before(a: &QueuedJob, b: &QueuedJob) -> bool {
    match a.priority.cmp(&b.priority) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => match (a.job.deadline, b.job.deadline) {
            (Some(x), Some(y)) if x != y => x < y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            _ => a.uid > b.uid,
        },
    }
}

enum Control {
    ResetShots {
        backend: usize,
        ack: Arc<(Mutex<bool>, Condvar)>,
    },
}

/// Lifecycle of a client's queue slot: slots are reused so a long-lived executor
/// serving many short-lived clients (every TreeVQA run registers a handful) does not
/// accumulate dead queues.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// At least one `ExecClient` clone holds the slot.
    Active,
    /// Every clone was dropped but queued jobs remain; freed once they drain.
    Retired,
    /// Reusable by the next [`Executor::client`] call.
    Free,
}

#[derive(Default)]
struct QueueState {
    /// One FIFO per client slot.
    queues: Vec<VecDeque<QueuedJob>>,
    /// Lifecycle of each slot, parallel to `queues`.
    slots: Vec<SlotState>,
    /// Indices of `Free` slots, reused before growing `queues`.
    free_slots: Vec<usize>,
    /// Round-robin cursor: the client index served next at equal priority.
    rr_next: usize,
    /// Jobs queued across all clients (excludes the retry queue).
    pending: usize,
    /// Jobs picked into the current slate but not yet completed.
    in_flight: usize,
    /// Failed executions awaiting their retry: drained ahead of the client queues into
    /// the *next* slate, so a retry replays exactly one slate after its failure — a
    /// deterministic backoff measured in slates, not wall time.
    retries: VecDeque<QueuedJob>,
    /// Scheduler rounds completed; the clock the canary backoff counts in.
    round: u64,
    /// Per-backend health, parallel to the registry (the queue lock is the health
    /// lock).
    health: Vec<Health>,
    /// Nesting depth of [`Executor::pause`]; scheduling runs only at 0.
    pause_depth: usize,
    shutdown: bool,
    controls: VecDeque<Control>,
}

impl QueueState {
    /// Moves drained retired slots to the free list (called after a slate empties the
    /// queues, and when a client drops with nothing queued).
    fn reclaim_retired(&mut self) {
        for id in 0..self.queues.len() {
            if self.slots[id] == SlotState::Retired && self.queues[id].is_empty() {
                self.slots[id] = SlotState::Free;
                self.free_slots.push(id);
            }
        }
    }

    /// No work queued, retrying, or executing.
    fn is_idle(&self) -> bool {
        self.pending == 0 && self.in_flight == 0 && self.retries.is_empty()
    }

    /// The soonest deadline among queued and retrying jobs — bounds the worker's idle
    /// and paused waits so deadlines fire even when nothing else wakes it.
    fn earliest_deadline(&self) -> Option<Instant> {
        self.queues
            .iter()
            .flatten()
            .chain(self.retries.iter())
            .filter_map(|j| j.job.deadline)
            .min()
    }
}

/// Owned by every clone of an [`ExecClient`]; the last drop retires the client's queue
/// slot so the executor can reuse it.
struct SlotGuard {
    shared: std::sync::Weak<Shared>,
    id: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            let mut q = shared.queue.lock().unwrap();
            q.slots[self.id] = SlotState::Retired;
            if q.queues[self.id].is_empty() {
                q.slots[self.id] = SlotState::Free;
                q.free_slots.push(self.id);
            }
        }
    }
}

/// State shared between the submission side and the worker thread.
pub(crate) struct Shared {
    queue: Mutex<QueueState>,
    /// Wakes the worker (new jobs, resume, shutdown, controls).
    work_cv: Condvar,
    /// Wakes `wait_idle` callers.
    idle_cv: Condvar,
    /// Wakes [`AdmissionPolicy::Block`] submitters when queue space frees up.
    space_cv: Condvar,
    meta: Vec<BackendMeta>,
    policy: AdmissionPolicy,
    /// Cap on jobs queued across all clients (admission bound; `usize::MAX` =
    /// unbounded).
    global_cap: usize,
    /// Cap on jobs queued under one client slot.
    per_client_cap: usize,
    /// Cap applied to every submission's [`SubmitOptions::retries`].
    retry_limit: u32,
    /// Global execution sequence counter (assigned in scheduled order).
    next_seq: AtomicU64,
    next_uid: AtomicU64,
    /// Observability registry: event counters are always live (they back
    /// [`Executor::stats`], replacing the lock-held `ExecStats` increments); span and
    /// histogram recording is on only when the registry was built enabled.
    obs: Arc<qobs::Registry>,
}

impl Shared {
    fn backend_index(&self, name: &str) -> Result<usize, ExecError> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| ExecError::UnknownBackend(name.to_string()))
    }

    /// Increments the pause depth (see [`Executor::pause`]).
    pub(crate) fn pause(&self) {
        self.queue.lock().unwrap().pause_depth += 1;
    }

    /// Decrements the pause depth, waking the worker at zero (see [`Executor::resume`]).
    pub(crate) fn resume(&self) {
        let mut q = self.queue.lock().unwrap();
        q.pause_depth = q.pause_depth.saturating_sub(1);
        let runnable = q.pause_depth == 0;
        drop(q);
        if runnable {
            self.work_cv.notify_all();
        }
    }

    /// Pauses scheduling for the lifetime of the returned guard (panic-safe: the
    /// matching resume happens in `Drop`, so an unwinding caller cannot leave a shared
    /// executor permanently paused).
    pub(crate) fn pause_guard(&self) -> PauseGuard<'_> {
        self.pause();
        PauseGuard { shared: self }
    }

    /// Cancels every job queued under one client slot.
    pub(crate) fn cancel_client_queue(&self, client: usize) {
        let mut q = self.queue.lock().unwrap();
        let jobs: Vec<QueuedJob> = q.queues[client].drain(..).collect();
        q.pending -= jobs.len();
        q.reclaim_retired();
        let idle = q.is_idle();
        drop(q);
        for job in jobs {
            job.state.complete(Err(ExecError::Cancelled));
        }
        self.space_cv.notify_all();
        if idle {
            self.idle_cv.notify_all();
        }
    }

    /// Removes a still-queued (or retry-queued) job and completes it as cancelled.
    /// Returns whether the job was found.
    pub(crate) fn cancel_queued(&self, uid: u64) -> bool {
        let mut q = self.queue.lock().unwrap();
        let mut found = None;
        for queue in &mut q.queues {
            if let Some(pos) = queue.iter().position(|j| j.uid == uid) {
                found = Some(queue.remove(pos).expect("position came from iter"));
                break;
            }
        }
        match found {
            Some(_) => q.pending -= 1,
            None => {
                if let Some(pos) = q.retries.iter().position(|j| j.uid == uid) {
                    found = Some(q.retries.remove(pos).expect("position came from iter"));
                }
            }
        }
        let Some(job) = found else {
            return false;
        };
        // Cancellation may have emptied a retired client's queue.
        q.reclaim_retired();
        let idle = q.is_idle();
        drop(q);
        job.state.complete(Err(ExecError::Cancelled));
        self.space_cv.notify_all();
        if idle {
            self.idle_cv.notify_all();
        }
        true
    }
}

/// An RAII pause of an executor's scheduling (see [`Executor::scoped_pause`]): the
/// matching resume runs in `Drop`, so the pause is released even if the scope unwinds.
pub struct PauseGuard<'a> {
    shared: &'a Shared,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.shared.resume();
    }
}

/// Builds an [`Executor`] over a registry of named backends.
pub struct ExecutorBuilder {
    backends: Vec<(String, Box<dyn Backend + Send>, BackendCaps)>,
    paused: bool,
    policy: AdmissionPolicy,
    global_cap: Option<usize>,
    per_client_cap: Option<usize>,
    retry_limit: u32,
    observability: Option<bool>,
    obs_ring_capacity: Option<usize>,
    workers: Option<usize>,
}

impl Default for ExecutorBuilder {
    fn default() -> Self {
        ExecutorBuilder {
            backends: Vec::new(),
            paused: false,
            policy: AdmissionPolicy::default(),
            global_cap: None,
            per_client_cap: None,
            retry_limit: DEFAULT_RETRY_LIMIT,
            observability: None,
            obs_ring_capacity: None,
            workers: None,
        }
    }
}

impl ExecutorBuilder {
    /// Registers a backend under `name`, advertising the capabilities it reports via
    /// [`Backend::capabilities`].  The first registered backend is the default target
    /// for jobs that do not name one.
    pub fn register(self, name: impl Into<String>, backend: impl Backend + Send + 'static) -> Self {
        self.register_boxed(name, Box::new(backend))
    }

    /// Registers an already-boxed backend (see [`ExecutorBuilder::register`]).
    pub fn register_boxed(
        mut self,
        name: impl Into<String>,
        backend: Box<dyn Backend + Send>,
    ) -> Self {
        let caps = backend.capabilities();
        self.backends.push((name.into(), backend, caps));
        self
    }

    /// Starts the executor paused: submissions queue but nothing executes until
    /// [`Executor::resume`].  Useful for deterministic multi-client scheduling (all
    /// clients submit, then one resume releases the fair-ordered slate).
    pub fn paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Bounds the jobs queued across **all** clients.  Defaults to the
    /// `QEXEC_QUEUE_CAP` environment variable, or unbounded when unset.  What happens
    /// at the bound is the [`ExecutorBuilder::admission`] policy's call.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.global_cap = Some(cap);
        self
    }

    /// Bounds the jobs queued under **one** client slot (defaults to the global
    /// capacity): one runaway client hits its own bound before it can crowd out the
    /// rest.
    pub fn per_client_capacity(mut self, cap: usize) -> Self {
        self.per_client_cap = Some(cap);
        self
    }

    /// Sets the overflow policy for bounded queues (default
    /// [`AdmissionPolicy::Reject`]).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps every submission's [`SubmitOptions::retries`] (default
    /// [`DEFAULT_RETRY_LIMIT`]; 0 disables retries service-wide).
    pub fn retry_limit(mut self, limit: u32) -> Self {
        self.retry_limit = limit;
        self
    }

    /// Turns per-job lifecycle span and latency-histogram recording on or off for this
    /// executor, overriding the process-wide `QOBS` environment default
    /// ([`qobs::enabled`]).  Event counters (and thus [`Executor::stats`]) are always
    /// live regardless — when disabled, the per-job tracing cost is one branch on an
    /// absent span handle, verified ~free by the perf gate.  Tracing never changes
    /// results: span recording is entirely off the driver path, so enabled and disabled
    /// runs are bit-identical.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = Some(enabled);
        self
    }

    /// Capacity of the finished-span ring buffer (default: the `QOBS_RING_CAP`
    /// environment variable, or [`qobs::DEFAULT_RING_CAPACITY`]).  When full, the
    /// oldest finished span is evicted and counted as dropped — tracing never applies
    /// backpressure to submissions.
    pub fn obs_ring_capacity(mut self, capacity: usize) -> Self {
        self.obs_ring_capacity = Some(capacity);
        self
    }

    /// Number of execution worker threads (default: the `QEXEC_WORKERS` environment
    /// variable, or 1).  Each registered backend is owned by exactly one worker
    /// (backend `i` lives on worker `i % workers`), so drivers never migrate and never
    /// need internal synchronization; the scheduler partitions every slate across the
    /// workers by backend.  Clamped to `[1, number of backends]` — more workers than
    /// backends would leave the excess idle.
    ///
    /// Results are **bit-identical across worker counts**: since the counter-based
    /// `qrng` rework every job's stochastic draws are keyed by its own stream, so how
    /// the slate is partitioned (or raced) between workers cannot change any result —
    /// see the crate-level schedule-independence contract.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Spawns the scheduler (and its execution worker threads) and returns the running
    /// executor.
    ///
    /// # Panics
    ///
    /// Panics if no backend was registered or two backends share a name (builder-time
    /// programming errors, not runtime job input).
    pub fn start(self) -> Executor {
        assert!(
            !self.backends.is_empty(),
            "an executor needs at least one registered backend"
        );
        let mut names: Vec<&str> = self.backends.iter().map(|(n, _, _)| n.as_str()).collect();
        names.sort_unstable();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "backend names must be unique"
        );
        let global_cap = self
            .global_cap
            .or_else(|| {
                std::env::var("QEXEC_QUEUE_CAP")
                    .ok()
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(usize::MAX)
            .max(1);
        let per_client_cap = self.per_client_cap.unwrap_or(global_cap).max(1);
        let workers = self
            .workers
            .or_else(|| {
                std::env::var("QEXEC_WORKERS")
                    .ok()
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(1)
            .clamp(1, self.backends.len());
        let mut drivers = Vec::with_capacity(self.backends.len());
        let mut meta = Vec::with_capacity(self.backends.len());
        for (name, backend, caps) in self.backends {
            meta.push(BackendMeta {
                name,
                caps,
                shots: AtomicU64::new(backend.shots_used()),
            });
            drivers.push(backend);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pause_depth: usize::from(self.paused),
                health: vec![Health::Healthy; meta.len()],
                ..QueueState::default()
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            space_cv: Condvar::new(),
            meta,
            policy: self.policy,
            global_cap,
            per_client_cap,
            retry_limit: self.retry_limit,
            next_seq: AtomicU64::new(0),
            next_uid: AtomicU64::new(0),
            obs: qobs::Registry::with_capacity(
                EVENT_NAMES,
                self.observability.unwrap_or_else(qobs::enabled),
                self.obs_ring_capacity
                    .unwrap_or_else(qobs::ring_capacity_from_env),
            ),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("qexec-scheduler".into())
            .spawn(move || worker_loop(&worker_shared, drivers, workers))
            .expect("spawning the executor scheduler thread failed");
        Executor {
            shared,
            worker: Some(worker),
        }
    }
}

/// The execution service: owns a registry of named backends behind a worker thread,
/// accepts owned [`EvalJob`]s from any number of [`ExecClient`]s, and schedules them
/// with per-job priority and fair round-robin across clients.
///
/// See the crate docs for the serial-replay equivalence contract and the robustness
/// contract (deadlines, admission control, supervision, retries).
pub struct Executor {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Executor {
    /// Starts building an executor (multi-backend registry form).
    pub fn builder() -> ExecutorBuilder {
        ExecutorBuilder::default()
    }

    /// The one-backend convenience: registers `backend` as [`DEFAULT_BACKEND`] and
    /// starts the service.
    pub fn single(backend: impl Backend + Send + 'static) -> Executor {
        Self::builder().register(DEFAULT_BACKEND, backend).start()
    }

    /// [`Executor::single`] for an already-boxed backend.
    pub fn single_boxed(backend: Box<dyn Backend + Send>) -> Executor {
        Self::builder()
            .register_boxed(DEFAULT_BACKEND, backend)
            .start()
    }

    /// Registers a new client and returns its submission handle.  Each client gets its
    /// own FIFO; the scheduler serves clients round-robin at equal priority, so no
    /// client can starve another.  Slots of fully dropped clients are reused, so a
    /// long-lived executor can serve any number of short-lived clients without
    /// accumulating state.
    pub fn client(&self) -> ExecClient {
        let mut q = self.shared.queue.lock().unwrap();
        let id = match q.free_slots.pop() {
            Some(id) => {
                q.slots[id] = SlotState::Active;
                id
            }
            None => {
                q.queues.push(VecDeque::new());
                q.slots.push(SlotState::Active);
                q.queues.len() - 1
            }
        };
        drop(q);
        ExecClient {
            shared: Arc::clone(&self.shared),
            id,
            slot: Arc::new(SlotGuard {
                shared: Arc::downgrade(&self.shared),
                id,
            }),
        }
    }

    /// Number of client queue slots currently allocated (diagnostic: stays bounded by
    /// the peak number of *simultaneously live* clients, not by how many were ever
    /// created, because dropped clients' slots are reused once their jobs drain).
    pub fn client_slots(&self) -> usize {
        self.shared.queue.lock().unwrap().queues.len()
    }

    /// Names of the registered backends, in registration order (index 0 is the default).
    pub fn backend_names(&self) -> Vec<String> {
        self.shared.meta.iter().map(|m| m.name.clone()).collect()
    }

    /// The capabilities a registered backend advertises.
    pub fn capabilities(&self, backend: &str) -> Result<BackendCaps, ExecError> {
        let idx = self.shared.backend_index(backend)?;
        Ok(self.shared.meta[idx].caps)
    }

    /// The name of the first registered backend satisfying `require`, if any.
    pub fn find_backend(&self, require: &BackendCaps) -> Option<String> {
        self.shared
            .meta
            .iter()
            .find(|m| m.caps.satisfies(require))
            .map(|m| m.name.clone())
    }

    /// The named backend's current supervision state.  A backend quarantined by a
    /// driver panic rejoins service automatically once a canary probe passes
    /// ([`crate::supervisor`] docs describe the lifecycle).
    pub fn backend_health(&self, backend: &str) -> Result<BackendHealth, ExecError> {
        let idx = self.shared.backend_index(backend)?;
        Ok(self.shared.queue.lock().unwrap().health[idx].into())
    }

    /// A snapshot of the service's robustness counters.
    ///
    /// Since PR 8 this is a thin view over the observability registry's event
    /// counters ([`Executor::observability`]): reads are lock-free — they sum sharded
    /// atomics instead of taking the queue lock — and the struct is kept so existing
    /// callers see the same seven fields with the same monotonic semantics.
    pub fn stats(&self) -> ExecStats {
        let c = self.shared.obs.counters();
        ExecStats {
            rejected: c.get(event::REJECTED),
            shed: c.get(event::SHED),
            expired: c.get(event::EXPIRED),
            retries: c.get(event::RETRIES),
            failovers: c.get(event::FAILOVERS),
            panics: c.get(event::PANICS),
            readmissions: c.get(event::READMISSIONS),
        }
    }

    /// The executor's observability registry: always-live event counters plus — when
    /// recording is enabled ([`ExecutorBuilder::observability`] or the `QOBS`
    /// environment variable) — per-job lifecycle spans and queue/exec/end-to-end
    /// latency histograms.  Snapshot it with [`qobs::Registry::snapshot`] and render
    /// via [`qobs::export`] (summary table, JSON, Prometheus text).
    pub fn observability(&self) -> Arc<qobs::Registry> {
        Arc::clone(&self.shared.obs)
    }

    /// Total shots the named backend has charged, as of its most recently completed
    /// job.  Consistent whenever the jobs the caller cares about have completed (e.g.
    /// after waiting on their handles or [`Executor::wait_idle`]).
    pub fn shots_used(&self, backend: &str) -> Result<u64, ExecError> {
        let idx = self.shared.backend_index(backend)?;
        Ok(self.shared.meta[idx].shots.load(Ordering::SeqCst))
    }

    /// Resets the named backend's shot ledger.  Blocks until the worker has applied the
    /// reset; jobs already queued when this is called may execute before or after the
    /// reset, so callers reusing a backend across experiment arms should
    /// [`Executor::wait_idle`] first.
    pub fn reset_shots(&self, backend: &str) -> Result<(), ExecError> {
        let idx = self.shared.backend_index(backend)?;
        let ack = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.shutdown {
                return Err(ExecError::ShutDown);
            }
            q.controls.push_back(Control::ResetShots {
                backend: idx,
                ack: Arc::clone(&ack),
            });
        }
        self.shared.work_cv.notify_all();
        let (done, cv) = &*ack;
        let mut done = done.lock().unwrap();
        while !*done {
            done = cv.wait(done).unwrap();
        }
        Ok(())
    }

    /// Pauses scheduling: queued and newly submitted jobs accumulate but do not
    /// execute.  Jobs already picked into a slate finish.  Pausing lets a set of
    /// clients assemble one fair-ordered slate (the TreeVQA controller does this every
    /// round phase so all clusters' candidates land in a single batched submission).
    ///
    /// Pauses **nest**: each `pause` must be matched by one [`Executor::resume`], and
    /// scheduling restarts only when every pause has been resumed — so independent
    /// controllers sharing one executor cannot release each other's half-assembled
    /// slates.
    ///
    /// Deadlines keep firing while paused: an expired job is dropped with
    /// [`ExecError::DeadlineExceeded`] even though nothing is scheduled.
    pub fn pause(&self) {
        self.shared.pause();
    }

    /// Undoes one [`Executor::pause`]; scheduling resumes when the pause depth reaches
    /// zero.  Unmatched resumes are ignored.
    pub fn resume(&self) {
        self.shared.resume();
    }

    /// [`Executor::pause`] as an RAII scope: the matching resume runs when the guard
    /// drops, including on unwind — prefer this over manual pause/resume pairs wherever
    /// a panic in between would otherwise leave a shared executor paused forever.
    pub fn scoped_pause(&self) -> PauseGuard<'_> {
        self.shared.pause_guard()
    }

    /// Blocks until no jobs are queued, retrying, or executing.  On a paused executor
    /// this waits for [`Executor::resume`] (queued jobs cannot drain while paused).
    pub fn wait_idle(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while !q.is_idle() {
            q = self.shared.idle_cv.wait(q).unwrap();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A client's submission handle.  Clones share the client's queue (and thus its
/// fair-scheduling slot); when the last clone drops, the slot is retired and reused by
/// a later [`Executor::client`] call once its queued jobs drain.
#[derive(Clone)]
pub struct ExecClient {
    shared: Arc<Shared>,
    id: usize,
    /// Retires the queue slot when the last clone drops (held only for its `Drop`).
    #[allow(dead_code)]
    slot: Arc<SlotGuard>,
}

impl ExecClient {
    /// Submits a job to the default backend at default priority.
    pub fn submit(&self, job: EvalJob) -> Result<JobHandle, ExecError> {
        self.submit_with(job, &SubmitOptions::default())
    }

    /// Submits a job with explicit backend selection, priority, capability
    /// requirements, retry budget, and failover opt-in.  Validation (shapes, backend,
    /// capabilities, already-expired deadlines) happens here, before queueing —
    /// malformed input never reaches a driver.
    pub fn submit_with(&self, job: EvalJob, opts: &SubmitOptions) -> Result<JobHandle, ExecError> {
        self.enqueue(job, opts, JobKind::Evaluate)
    }

    /// Submits every job of an iterator (in order, to the default backend at default
    /// priority) and returns their handles.
    ///
    /// The jobs are enqueued **atomically with respect to scheduling**: the executor is
    /// paused while they are queued, so the worker cannot race ahead and split the
    /// group across several slates — a phase's jobs always coalesce into one batched
    /// driver submission (nesting makes this compose with an explicit
    /// [`Executor::pause`]).  On a rejected job, exactly the already-queued jobs of
    /// this call are cancelled before the error is returned, so a failed group
    /// submission never leaves orphaned work consuming the backend's RNG stream —
    /// jobs the client queued outside this call are untouched.
    ///
    /// Under [`AdmissionPolicy::Block`], queue capacity must fit the whole group: the
    /// pause this call holds prevents the drain a blocked submission would wait for.
    pub fn submit_all(
        &self,
        jobs: impl IntoIterator<Item = EvalJob>,
    ) -> Result<Vec<JobHandle>, ExecError> {
        let _pause = self.shared.pause_guard();
        let mut handles = Vec::new();
        for job in jobs {
            match self.submit(job) {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // The pause guarantees none of this call's jobs started, so each
                    // cancel succeeds and only this group is withdrawn.
                    for handle in &handles {
                        handle.cancel();
                    }
                    return Err(e);
                }
            }
        }
        Ok(handles)
    }

    /// Cancels every job still queued under this client (jobs already executing are
    /// unaffected).  Their handles report [`ExecError::Cancelled`].
    pub fn cancel_queued(&self) {
        self.shared.cancel_client_queue(self.id);
    }

    /// Submits an uncharged probe: the job's charged observable is evaluated exactly on
    /// the prepared state via the driver's `probe` path (zero shots, free observables
    /// ignored).
    pub fn submit_probe(&self, job: EvalJob) -> Result<JobHandle, ExecError> {
        self.submit_probe_with(job, &SubmitOptions::default())
    }

    /// [`ExecClient::submit_probe`] with explicit options.
    pub fn submit_probe_with(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
    ) -> Result<JobHandle, ExecError> {
        self.enqueue(job, opts, JobKind::Probe)
    }

    fn enqueue(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
        kind: JobKind,
    ) -> Result<JobHandle, ExecError> {
        let backend = match &opts.backend {
            Some(name) => self.shared.backend_index(name)?,
            None => 0,
        };
        let meta = &self.shared.meta[backend];
        if let Some(missing) = meta.caps.first_missing(&opts.require) {
            return Err(ExecError::MissingCapability {
                backend: meta.name.clone(),
                missing,
            });
        }
        // Retrying is only observationally invisible on an idempotent backend: a
        // stream-stateful stochastic driver re-executing a request would shift every
        // later job's draws, changing *other* jobs' results.  The workspace backends
        // are all retry-safe since the counter-based `qrng` rework; the gate remains
        // for third-party drivers that carry cross-request mutable state.
        if opts.retries > 0 && !meta.caps.retry_safe {
            return Err(ExecError::MissingCapability {
                backend: meta.name.clone(),
                missing: "retry_safe",
            });
        }
        job.validate()?;
        if job.deadline.is_some_and(|d| d <= Instant::now()) {
            return Err(ExecError::DeadlineExceeded);
        }
        let state = Arc::new(JobState::default());
        let uid = self.shared.next_uid.fetch_add(1, Ordering::Relaxed);
        // The job's draw stream: explicit submit option first, then the job's own
        // builder stream, then the uid-derived default.  Resolved here — once, at
        // admission — so retries, failovers, and any worker partitioning all execute
        // with the same stream.
        let stream = opts
            .rng_stream
            .or(job.rng_stream)
            .unwrap_or_else(|| StreamId::for_job(uid));
        let queued = QueuedJob {
            uid,
            priority: opts.priority,
            kind,
            backend,
            require: opts.require,
            retries_left: opts.retries.min(self.shared.retry_limit),
            failover: opts.failover,
            stream,
            job,
            state: Arc::clone(&state),
        };
        let mut q = self.shared.queue.lock().unwrap();
        if q.shutdown {
            return Err(ExecError::ShutDown);
        }
        // Admission control: both bounds must hold before the job enters its queue.
        loop {
            let client_full = q.queues[self.id].len() >= self.shared.per_client_cap;
            let global_full = q.pending >= self.shared.global_cap;
            if !client_full && !global_full {
                break;
            }
            match self.shared.policy {
                AdmissionPolicy::Reject => {
                    self.shared.obs.counters().inc(event::REJECTED);
                    return Err(ExecError::Overloaded);
                }
                AdmissionPolicy::Block => {
                    q = self.shared.space_cv.wait(q).unwrap();
                    if q.shutdown {
                        return Err(ExecError::ShutDown);
                    }
                }
                AdmissionPolicy::ShedLowestPriority => {
                    // Victim scope is the saturated bound: this client's queue if it is
                    // the one at capacity, any queue when the global bound is.
                    let scope: Vec<usize> = if client_full {
                        vec![self.id]
                    } else {
                        (0..q.queues.len()).collect()
                    };
                    let mut victim: Option<(usize, usize)> = None;
                    for ci in scope {
                        for pos in 0..q.queues[ci].len() {
                            let better = match victim {
                                None => true,
                                Some((vci, vpos)) => {
                                    sheds_before(&q.queues[ci][pos], &q.queues[vci][vpos])
                                }
                            };
                            if better {
                                victim = Some((ci, pos));
                            }
                        }
                    }
                    match victim {
                        Some((vci, vpos)) if sheds_before(&q.queues[vci][vpos], &queued) => {
                            let shed = q.queues[vci].remove(vpos).expect("index in range");
                            q.pending -= 1;
                            self.shared.obs.counters().inc(event::SHED);
                            q.reclaim_retired();
                            // The completion funnel closes the victim's span with a
                            // `shed` terminal event (post-admission `Overloaded`).
                            shed.state.complete(Err(ExecError::Overloaded));
                        }
                        _ => {
                            // The newcomer matters least; shedding a queued job for it
                            // would be strictly worse.
                            self.shared.obs.counters().inc(event::REJECTED);
                            return Err(ExecError::Overloaded);
                        }
                    }
                }
            }
        }
        // Admission succeeded: open the lifecycle span (submissions refused above get
        // counters only — they never became jobs).  The `enabled` guard keeps label
        // construction (a name clone) off the disabled path entirely.
        if self.shared.obs.enabled() {
            // The registry rides along so the completion funnel can label failures by
            // wire error code even when the span ring is full.
            state.attach_obs(Arc::clone(&self.shared.obs));
            if let Some(span) = self.shared.obs.start_span(qobs::SpanLabels {
                client: self.id as u64,
                backend: self.shared.meta[backend].name.clone(),
                priority: i64::from(opts.priority),
                kind: match kind {
                    JobKind::Evaluate => "evaluate",
                    JobKind::Probe => "probe",
                },
                worker: None,
            }) {
                state.attach_span(span);
            }
        }
        q.queues[self.id].push_back(queued);
        q.pending += 1;
        drop(q);
        self.shared.work_cv.notify_one();
        Ok(JobHandle {
            state,
            shared: Arc::downgrade(&self.shared),
            uid,
            stream,
        })
    }
}

/// Drains the retry queue and then the whole client queue into one slate in scheduled
/// order: retries first (their backoff has elapsed and they already hold sequence
/// numbers); then strictly by descending priority; at equal priority, round-robin
/// across clients starting at the cursor; FIFO within a client (a higher-priority job
/// may overtake its client's earlier lower-priority jobs).
fn build_slate(q: &mut QueueState) -> Vec<QueuedJob> {
    let mut slate: Vec<QueuedJob> = q.retries.drain(..).collect();
    slate.reserve(q.pending);
    let num_clients = q.queues.len();
    while q.pending > 0 {
        // Highest remaining priority, computed once per level: nothing is enqueued
        // while the queue lock is held, so draining the whole level before recomputing
        // picks jobs in exactly the same order as a per-pick global rescan — without
        // the O(jobs) scan per pick.
        let level = q
            .queues
            .iter()
            .flat_map(|d| d.iter().map(|j| j.priority))
            .max()
            .expect("pending > 0 implies a queued job");
        loop {
            let mut served = None;
            for offset in 0..num_clients {
                let client = (q.rr_next + offset) % num_clients;
                if let Some(pos) = q.queues[client].iter().position(|j| j.priority == level) {
                    let job = q.queues[client]
                        .remove(pos)
                        .expect("position came from iter");
                    slate.push(job);
                    q.pending -= 1;
                    q.rr_next = (client + 1) % num_clients;
                    served = Some(client);
                    break;
                }
            }
            if served.is_none() {
                break;
            }
        }
    }
    slate
}

/// Completes the job as failed, or re-queues it for one more attempt if it has retry
/// budget left.  Retried jobs share their completion state and sequence number — a
/// successful retry is indistinguishable from a slow first attempt.
fn fail_or_retry(g: &QueuedJob, err: ExecError, retry_out: &mut Vec<QueuedJob>) {
    if g.retries_left > 0 {
        retry_out.push(g.retry_clone());
    } else {
        g.state.complete(Err(err));
    }
}

/// Routes a caught driver unwind: a [`TransientFault`] payload fails (or retries) the
/// affected jobs without quarantining; any other payload is a corrupted driver — the
/// backend is quarantined and its jobs fail or retry.
fn handle_panic(
    shared: &Shared,
    payload: Box<dyn std::any::Any + Send>,
    backend: usize,
    group: &[QueuedJob],
    retry_out: &mut Vec<QueuedJob>,
) {
    match payload.downcast::<TransientFault>() {
        Ok(transient) => {
            let msg = format!("transient fault: {}", transient.0);
            for g in group {
                fail_or_retry(g, ExecError::Execution(msg.clone()), retry_out);
            }
        }
        Err(payload) => {
            let msg = panic_message(payload);
            shared.obs.counters().inc(event::PANICS);
            shared.obs.counters().inc(event::QUARANTINES);
            {
                let mut q = shared.queue.lock().unwrap();
                let round = q.round;
                q.health[backend] = Health::Quarantined {
                    failures: 1,
                    next_canary_round: round + 1,
                };
            }
            for g in group {
                fail_or_retry(g, ExecError::Execution(msg.clone()), retry_out);
            }
        }
    }
}

/// Gate for dispatching to `backend`: healthy backends pass; a quarantined backend
/// whose canary backoff has elapsed gets one recovery + canary attempt (readmitted on
/// success, pushed out with doubled backoff on failure); otherwise the group must be
/// disposed of without touching the driver.
fn ensure_healthy(
    shared: &Shared,
    drivers: &mut [Option<Box<dyn Backend + Send>>],
    backend: usize,
) -> bool {
    let due_failures = {
        let q = shared.queue.lock().unwrap();
        match q.health[backend] {
            Health::Healthy => return true,
            Health::Quarantined {
                failures,
                next_canary_round,
            } => {
                if q.round >= next_canary_round {
                    Some(failures)
                } else {
                    None
                }
            }
        }
    };
    let Some(failures) = due_failures else {
        return false;
    };
    shared.obs.counters().inc(event::CANARY_PROBES);
    let passed = supervisor::canary(
        drivers[backend]
            .as_mut()
            .expect("backend owned by this worker")
            .as_mut(),
    );
    let mut q = shared.queue.lock().unwrap();
    if passed {
        q.health[backend] = Health::Healthy;
        shared.obs.counters().inc(event::READMISSIONS);
        true
    } else {
        let failures = failures + 1;
        let next = q.round + supervisor::backoff_rounds(failures - 1);
        q.health[backend] = Health::Quarantined {
            failures,
            next_canary_round: next,
        };
        false
    }
}

fn currently_healthy(shared: &Shared, backend: usize) -> bool {
    matches!(
        shared.queue.lock().unwrap().health[backend],
        Health::Healthy
    )
}

/// Executes one job on an explicit (possibly failover) backend, with full panic
/// supervision on that backend.  The request carries the job's pinned stream, so the
/// result is the same whether the job runs here, in a slate batch, or on a retry.
fn run_single(
    shared: &Shared,
    drivers: &mut [Option<Box<dyn Backend + Send>>],
    backend: usize,
    g: &QueuedJob,
    retry_out: &mut Vec<QueuedJob>,
    worker: usize,
) {
    if let Some(span) = g.state.span() {
        span.set_worker(worker as u64);
        span.mark_exec();
    }
    match g.kind {
        JobKind::Evaluate => {
            let free_refs: Vec<&PauliOp> = g.job.free_ops.iter().map(|op| op.as_ref()).collect();
            let request = EvalRequest {
                circuit: &g.job.circuit,
                params: &g.job.params,
                initial: &g.job.initial,
                charged_op: &g.job.charged_op,
                free_ops: &free_refs,
                stream: Some(g.stream),
            };
            let driver = drivers[backend]
                .as_mut()
                .expect("backend owned by this worker");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                driver.evaluate_batch(std::slice::from_ref(&request))
            }));
            shared.meta[backend].shots.store(
                drivers[backend]
                    .as_ref()
                    .expect("backend owned by this worker")
                    .shots_used(),
                Ordering::SeqCst,
            );
            match outcome {
                Ok(mut results) => g.state.complete(Ok(results.remove(0))),
                Err(payload) => {
                    handle_panic(shared, payload, backend, std::slice::from_ref(g), retry_out);
                }
            }
        }
        JobKind::Probe => {
            let driver = drivers[backend]
                .as_mut()
                .expect("backend owned by this worker");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                driver.probe(
                    &g.job.circuit,
                    &g.job.params,
                    &g.job.initial,
                    &g.job.charged_op,
                )
            }));
            match outcome {
                Ok(charged) => g.state.complete(Ok(EvalResult {
                    charged,
                    free: Vec::new(),
                    shots: 0,
                })),
                Err(payload) => {
                    handle_panic(shared, payload, backend, std::slice::from_ref(g), retry_out);
                }
            }
        }
    }
}

/// A message from the scheduler to a pool execution worker.  Each worker owns a
/// disjoint subset of the drivers (backend `i` lives on worker `i % workers`); the
/// scheduler routes all per-backend work to the owner, so no driver is ever shared.
enum WorkerMsg {
    /// Execute one backend's portion of a slate under the canonical grouping.
    Wave {
        backend: usize,
        jobs: Vec<QueuedJob>,
        reply: Sender<WaveReply>,
    },
    /// Execute one job on an explicit backend (failover dispatch after the wave).
    Single {
        backend: usize,
        job: QueuedJob,
        reply: Sender<WaveReply>,
    },
    /// Reset the shot counter of an owned backend and acknowledge.
    ResetShots {
        backend: usize,
        ack: Arc<(Mutex<bool>, Condvar)>,
    },
}

/// A worker's report after a [`WorkerMsg::Wave`] or [`WorkerMsg::Single`].
struct WaveReply {
    backend: usize,
    /// Jobs that earned a retry (transient fault with retries left).
    retries: Vec<QueuedJob>,
    /// Jobs that could not run because the backend is (or became) quarantined; the
    /// scheduler disposes of them after the wave barrier (failover or fail fast).
    quarantined: Vec<QueuedJob>,
}

/// The execution side of the service: either the drivers held inline by the scheduler
/// thread (`workers = 1`, no extra threads — the default), or a set of execution
/// worker threads each owning a disjoint subset of the drivers.
enum DriverPool {
    Inline(Vec<Option<Box<dyn Backend + Send>>>),
    Threads {
        senders: Vec<Sender<WorkerMsg>>,
        handles: Vec<JoinHandle<()>>,
    },
}

impl DriverPool {
    fn build(shared: &Arc<Shared>, drivers: Vec<Box<dyn Backend + Send>>, workers: usize) -> Self {
        if workers <= 1 {
            return DriverPool::Inline(drivers.into_iter().map(Some).collect());
        }
        let n = drivers.len();
        let mut slots: Vec<Vec<Option<Box<dyn Backend + Send>>>> = (0..workers)
            .map(|_| (0..n).map(|_| None).collect())
            .collect();
        for (i, driver) in drivers.into_iter().enumerate() {
            slots[i % workers][i] = Some(driver);
        }
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (w, owned) in slots.into_iter().enumerate() {
            let (tx, rx) = channel();
            let shared = Arc::clone(shared);
            let handle = std::thread::Builder::new()
                .name(format!("qexec-pool-{w}"))
                .spawn(move || pool_worker_loop(&shared, owned, &rx, w))
                .expect("spawning a qexec pool worker failed");
            senders.push(tx);
            handles.push(handle);
        }
        DriverPool::Threads { senders, handles }
    }

    /// Routes a shot-counter reset to whoever owns the backend's driver.
    fn reset_shots(&mut self, shared: &Shared, backend: usize, ack: Arc<(Mutex<bool>, Condvar)>) {
        match self {
            DriverPool::Inline(drivers) => {
                let driver = drivers[backend].as_mut().expect("backend owned inline");
                driver.reset_shots();
                shared.meta[backend]
                    .shots
                    .store(driver.shots_used(), Ordering::SeqCst);
                let (done, cv) = &*ack;
                *done.lock().unwrap() = true;
                cv.notify_all();
            }
            DriverPool::Threads { senders, .. } => {
                let workers = senders.len();
                senders[backend % workers]
                    .send(WorkerMsg::ResetShots { backend, ack })
                    .expect("pool worker alive");
            }
        }
    }
}

impl Drop for DriverPool {
    fn drop(&mut self) {
        if let DriverPool::Threads { senders, handles } = self {
            // Closing the channels ends each worker's run loop after it drains any
            // in-flight messages (including pending shot-reset acks); join so every
            // driver is dropped before the executor reports shutdown complete.
            senders.clear();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// The run loop of a pool execution worker: serves wave/single/reset messages over its
/// owned drivers until the scheduler drops the sending side at shutdown.
fn pool_worker_loop(
    shared: &Shared,
    mut drivers: Vec<Option<Box<dyn Backend + Send>>>,
    rx: &Receiver<WorkerMsg>,
    worker: usize,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Wave {
                backend,
                jobs,
                reply,
            } => {
                let r = execute_backend_wave(shared, &mut drivers, backend, jobs, worker);
                let _ = reply.send(r);
            }
            WorkerMsg::Single {
                backend,
                job,
                reply,
            } => {
                let mut retries = Vec::new();
                run_single(shared, &mut drivers, backend, &job, &mut retries, worker);
                let _ = reply.send(WaveReply {
                    backend,
                    retries,
                    quarantined: Vec::new(),
                });
            }
            WorkerMsg::ResetShots { backend, ack } => {
                let driver = drivers[backend]
                    .as_mut()
                    .expect("backend owned by this worker");
                driver.reset_shots();
                shared.meta[backend]
                    .shots
                    .store(driver.shots_used(), Ordering::SeqCst);
                let (done, cv) = &*ack;
                *done.lock().unwrap() = true;
                cv.notify_all();
            }
        }
    }
}

/// Disposes of one job whose target backend is quarantined: execute it on a healthy
/// capability-compatible standby if the submission opted into failover, otherwise fail
/// fast with [`ExecError::BackendQuarantined`] (no retry — retrying against the same
/// quarantined target would just spin).  Runs on the scheduler thread after the wave
/// barrier; the actual execution is routed to the standby's owning worker.
fn dispose_after_wave(
    shared: &Shared,
    pool: &mut DriverPool,
    job: QueuedJob,
    retry_out: &mut Vec<QueuedJob>,
) {
    if job.failover {
        let standby = {
            let q = shared.queue.lock().unwrap();
            let caps: Vec<BackendCaps> = shared.meta.iter().map(|m| m.caps).collect();
            supervisor::select_failover(&caps, &q.health, job.backend, &job.require)
        };
        if let Some(idx) = standby {
            shared.obs.counters().inc(event::FAILOVERS);
            // Re-label the span so its terminal record names the backend that
            // actually executed the job.
            if let Some(span) = job.state.span() {
                span.set_backend(&shared.meta[idx].name);
            }
            match pool {
                DriverPool::Inline(drivers) => {
                    run_single(shared, drivers, idx, &job, retry_out, 0);
                }
                DriverPool::Threads { senders, .. } => {
                    let workers = senders.len();
                    let (tx, rx) = channel();
                    senders[idx % workers]
                        .send(WorkerMsg::Single {
                            backend: idx,
                            job,
                            reply: tx,
                        })
                        .expect("pool worker alive");
                    let reply = rx.recv().expect("pool worker replies");
                    retry_out.extend(reply.retries);
                }
            }
            return;
        }
    }
    job.state.complete(Err(ExecError::BackendQuarantined {
        backend: shared.meta[job.backend].name.clone(),
    }));
}

/// Executes one backend's portion of a slate under the **canonical grouping**: every
/// `Evaluate` job of the portion — in slate order — forms exactly one `evaluate_batch`
/// submission, then each `Probe` runs singly, also in slate order.  The grouping is a
/// function of the backend's job set alone, not of how the slate happened to be
/// partitioned across workers, so a driver observes the identical call sequence at any
/// worker count (which is what keeps fault-injection points and results aligned
/// between serial and multi-worker runs).
fn execute_backend_wave(
    shared: &Shared,
    drivers: &mut [Option<Box<dyn Backend + Send>>],
    backend: usize,
    jobs: Vec<QueuedJob>,
    worker: usize,
) -> WaveReply {
    let mut reply = WaveReply {
        backend,
        retries: Vec::new(),
        quarantined: Vec::new(),
    };
    if jobs.is_empty() {
        return reply;
    }
    if shared.obs.enabled() {
        shared.obs.labeled().inc(&format!("worker{worker}_slates"));
    }
    if !ensure_healthy(shared, drivers, backend) {
        reply.quarantined = jobs;
        return reply;
    }
    let (evals, probes): (Vec<QueuedJob>, Vec<QueuedJob>) =
        jobs.into_iter().partition(|g| g.kind == JobKind::Evaluate);
    if !evals.is_empty() {
        let free_refs: Vec<Vec<&PauliOp>> = evals
            .iter()
            .map(|g| g.job.free_ops.iter().map(|op| op.as_ref()).collect())
            .collect();
        let requests: Vec<EvalRequest<'_>> = evals
            .iter()
            .zip(&free_refs)
            .map(|(g, free)| EvalRequest {
                circuit: &g.job.circuit,
                params: &g.job.params,
                initial: &g.job.initial,
                charged_op: &g.job.charged_op,
                free_ops: free,
                stream: Some(g.stream),
            })
            .collect();
        // The whole group hits the driver as one batch; stamp every member.
        for g in &evals {
            if let Some(span) = g.state.span() {
                span.set_worker(worker as u64);
                span.mark_exec();
            }
        }
        let driver = drivers[backend]
            .as_mut()
            .expect("backend owned by this worker");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            driver.evaluate_batch(&requests)
        }));
        shared.meta[backend].shots.store(
            drivers[backend]
                .as_ref()
                .expect("backend owned by this worker")
                .shots_used(),
            Ordering::SeqCst,
        );
        match outcome {
            Ok(results) => {
                for (g, result) in evals.iter().zip(results) {
                    g.state.complete(Ok(result));
                }
            }
            Err(payload) => handle_panic(shared, payload, backend, &evals, &mut reply.retries),
        }
    }
    for g in probes {
        // A panic in the evaluation batch (or an earlier probe) may have quarantined
        // the backend mid-wave; the rest of the portion must not touch the corrupted
        // driver.
        if !currently_healthy(shared, backend) {
            reply.quarantined.push(g);
            continue;
        }
        run_single(shared, drivers, backend, &g, &mut reply.retries, worker);
    }
    reply
}

/// Executes one slate across the driver pool in two waves.
///
/// **Wave 1** partitions the slate by backend and runs every backend's portion under
/// the canonical grouping — concurrently on the owning workers when the pool has
/// threads, inline in backend order otherwise — then barriers on all portions and
/// merges their outcomes in backend order.  **Wave 2** disposes of jobs whose backend
/// was quarantined (failover to a healthy standby or fail fast), sequentially on the
/// scheduler thread, so failover placement never depends on worker timing.
///
/// Because every job's stochastic draws are keyed by its own pinned stream and every
/// driver sees a partition-independent call sequence, results are bit-identical at any
/// worker count.  Returns the jobs that earned a retry (re-queued for a later slate).
fn run_slate(shared: &Shared, pool: &mut DriverPool, slate: Vec<QueuedJob>) -> Vec<QueuedJob> {
    let mut per_backend: Vec<Vec<QueuedJob>> = (0..shared.meta.len()).map(|_| Vec::new()).collect();
    for job in slate {
        per_backend[job.backend].push(job);
    }
    let mut retry_out = Vec::new();
    let mut quarantined: Vec<QueuedJob> = Vec::new();
    match pool {
        DriverPool::Inline(drivers) => {
            for (backend, jobs) in per_backend.into_iter().enumerate() {
                if jobs.is_empty() {
                    continue;
                }
                let reply = execute_backend_wave(shared, drivers, backend, jobs, 0);
                retry_out.extend(reply.retries);
                quarantined.extend(reply.quarantined);
            }
        }
        DriverPool::Threads { senders, .. } => {
            let workers = senders.len();
            let (tx, rx) = channel();
            let mut outstanding = 0usize;
            for (backend, jobs) in per_backend.into_iter().enumerate() {
                if jobs.is_empty() {
                    continue;
                }
                senders[backend % workers]
                    .send(WorkerMsg::Wave {
                        backend,
                        jobs,
                        reply: tx.clone(),
                    })
                    .expect("pool worker alive");
                outstanding += 1;
            }
            drop(tx);
            let mut replies: Vec<WaveReply> = Vec::with_capacity(outstanding);
            for _ in 0..outstanding {
                replies.push(rx.recv().expect("pool worker replies"));
            }
            // The barrier: every backend's wave has finished.  Merge in backend order
            // so the retry queue and wave-2 dispositions are schedule-independent.
            replies.sort_by_key(|r| r.backend);
            for reply in replies {
                retry_out.extend(reply.retries);
                quarantined.extend(reply.quarantined);
            }
        }
    }
    for job in quarantined {
        dispose_after_wave(shared, pool, job, &mut retry_out);
    }
    retry_out
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(t) = payload.downcast_ref::<TransientFault>() {
        t.0.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Drops every queued/retrying job whose deadline has passed, completing it with
/// [`ExecError::DeadlineExceeded`].  Runs before every slate *and* on every timed
/// wait wake-up, so deadlines fire even while the executor is paused or idle.
fn sweep_expired(shared: &Shared, q: &mut QueueState) {
    let now = Instant::now();
    let mut expired: Vec<QueuedJob> = Vec::new();
    for qi in 0..q.queues.len() {
        let mut i = 0;
        while i < q.queues[qi].len() {
            if q.queues[qi][i].job.deadline.is_some_and(|d| d <= now) {
                expired.push(q.queues[qi].remove(i).expect("index in range"));
                q.pending -= 1;
            } else {
                i += 1;
            }
        }
    }
    let mut i = 0;
    while i < q.retries.len() {
        if q.retries[i].job.deadline.is_some_and(|d| d <= now) {
            expired.push(q.retries.remove(i).expect("index in range"));
        } else {
            i += 1;
        }
    }
    if expired.is_empty() {
        return;
    }
    shared
        .obs
        .counters()
        .add(event::EXPIRED, expired.len() as u64);
    q.reclaim_retired();
    for job in expired {
        job.state.complete(Err(ExecError::DeadlineExceeded));
    }
    shared.space_cv.notify_all();
    if q.is_idle() {
        shared.idle_cv.notify_all();
    }
}

/// The scheduler loop: builds slates, assigns sequence numbers, serves controls, and
/// drives the pool.  With `workers = 1` it also executes everything itself (the pool
/// is inline); with more workers it dispatches waves and barriers on their replies.
fn worker_loop(shared: &Arc<Shared>, drivers: Vec<Box<dyn Backend + Send>>, workers: usize) {
    let mut pool = DriverPool::build(shared, drivers, workers);
    loop {
        let slate = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                while let Some(control) = q.controls.pop_front() {
                    match control {
                        Control::ResetShots { backend, ack } => {
                            pool.reset_shots(shared, backend, ack);
                        }
                    }
                }
                if q.shutdown {
                    // Fail whatever is still queued so no handle waits forever.
                    for queue in &mut q.queues {
                        while let Some(job) = queue.pop_front() {
                            job.state.complete(Err(ExecError::ShutDown));
                        }
                    }
                    while let Some(job) = q.retries.pop_front() {
                        job.state.complete(Err(ExecError::ShutDown));
                    }
                    q.pending = 0;
                    shared.idle_cv.notify_all();
                    shared.space_cv.notify_all();
                    return;
                }
                sweep_expired(shared, &mut q);
                if q.pause_depth == 0 && (q.pending > 0 || !q.retries.is_empty()) {
                    break;
                }
                // Bound the wait by the soonest queued deadline so expiry fires even
                // while paused or otherwise unrunnable.
                match q.earliest_deadline() {
                    Some(deadline) => {
                        let now = Instant::now();
                        if deadline <= now {
                            continue;
                        }
                        let (guard, _) = shared.work_cv.wait_timeout(q, deadline - now).unwrap();
                        q = guard;
                    }
                    None => q = shared.work_cv.wait(q).unwrap(),
                }
            }
            q.round += 1;
            let slate = build_slate(&mut q);
            // Draining emptied every queue, so retired client slots become reusable.
            q.reclaim_retired();
            q.in_flight = slate.len();
            // Sequence numbers record the scheduled order, assigned before execution so
            // even a panicking group leaves a complete replay record.  A retried job
            // keeps the number from its first scheduling: the retry re-executes the
            // same position in the replay, it does not occupy a new one.
            for job in &slate {
                if !job.state.has_sequence() {
                    job.state
                        .set_sequence(shared.next_seq.fetch_add(1, Ordering::SeqCst));
                }
                // Slate pickup closes the queue stage of the job's span.  A retried
                // job keeps its first pickup stamp, matching its sequence number.
                if let Some(span) = job.state.span() {
                    span.mark_scheduled(job.state.sequence_value().unwrap_or(0));
                }
            }
            drop(q);
            // The drained queues freed admission space.
            shared.space_cv.notify_all();
            slate
        };
        let retry_jobs = run_slate(shared, &mut pool, slate);
        shared
            .obs
            .counters()
            .add(event::RETRIES, retry_jobs.len() as u64);
        let mut q = shared.queue.lock().unwrap();
        q.retries.extend(retry_jobs);
        q.in_flight = 0;
        if q.is_idle() {
            shared.idle_cv.notify_all();
        }
    }
}
