//! The executor: backend registry, fair scheduler, and worker.

use crate::error::ExecError;
use crate::job::{EvalJob, JobHandle, JobKind, JobState, SubmitOptions};
use qop::PauliOp;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use vqa::{Backend, BackendCaps, EvalRequest, EvalResult};

/// Name under which [`Executor::single`] registers its only backend.
pub const DEFAULT_BACKEND: &str = "default";

/// Immutable per-backend registry metadata (the boxed driver itself lives on the worker
/// thread; this is the submission-side view).
struct BackendMeta {
    name: String,
    caps: BackendCaps,
    /// Mirror of the driver's shot ledger, refreshed by the worker after every executed
    /// group — consistent whenever the jobs a caller cares about have completed.
    shots: AtomicU64,
}

/// A job sitting in a client queue.
struct QueuedJob {
    uid: u64,
    priority: i32,
    kind: JobKind,
    backend: usize,
    job: EvalJob,
    state: Arc<JobState>,
}

enum Control {
    ResetShots {
        backend: usize,
        ack: Arc<(Mutex<bool>, Condvar)>,
    },
}

/// Lifecycle of a client's queue slot: slots are reused so a long-lived executor
/// serving many short-lived clients (every TreeVQA run registers a handful) does not
/// accumulate dead queues.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// At least one `ExecClient` clone holds the slot.
    Active,
    /// Every clone was dropped but queued jobs remain; freed once they drain.
    Retired,
    /// Reusable by the next [`Executor::client`] call.
    Free,
}

#[derive(Default)]
struct QueueState {
    /// One FIFO per client slot.
    queues: Vec<VecDeque<QueuedJob>>,
    /// Lifecycle of each slot, parallel to `queues`.
    slots: Vec<SlotState>,
    /// Indices of `Free` slots, reused before growing `queues`.
    free_slots: Vec<usize>,
    /// Round-robin cursor: the client index served next at equal priority.
    rr_next: usize,
    /// Jobs queued across all clients.
    pending: usize,
    /// Jobs picked into the current slate but not yet completed.
    in_flight: usize,
    /// Nesting depth of [`Executor::pause`]; scheduling runs only at 0.
    pause_depth: usize,
    shutdown: bool,
    controls: VecDeque<Control>,
}

impl QueueState {
    /// Moves drained retired slots to the free list (called after a slate empties the
    /// queues, and when a client drops with nothing queued).
    fn reclaim_retired(&mut self) {
        for id in 0..self.queues.len() {
            if self.slots[id] == SlotState::Retired && self.queues[id].is_empty() {
                self.slots[id] = SlotState::Free;
                self.free_slots.push(id);
            }
        }
    }
}

/// Owned by every clone of an [`ExecClient`]; the last drop retires the client's queue
/// slot so the executor can reuse it.
struct SlotGuard {
    shared: std::sync::Weak<Shared>,
    id: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            let mut q = shared.queue.lock().unwrap();
            q.slots[self.id] = SlotState::Retired;
            if q.queues[self.id].is_empty() {
                q.slots[self.id] = SlotState::Free;
                q.free_slots.push(self.id);
            }
        }
    }
}

/// State shared between the submission side and the worker thread.
pub(crate) struct Shared {
    queue: Mutex<QueueState>,
    /// Wakes the worker (new jobs, resume, shutdown, controls).
    work_cv: Condvar,
    /// Wakes `wait_idle` callers.
    idle_cv: Condvar,
    meta: Vec<BackendMeta>,
    /// Global execution sequence counter (assigned in scheduled order).
    next_seq: AtomicU64,
    next_uid: AtomicU64,
}

impl Shared {
    fn backend_index(&self, name: &str) -> Result<usize, ExecError> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| ExecError::UnknownBackend(name.to_string()))
    }

    /// Increments the pause depth (see [`Executor::pause`]).
    pub(crate) fn pause(&self) {
        self.queue.lock().unwrap().pause_depth += 1;
    }

    /// Decrements the pause depth, waking the worker at zero (see [`Executor::resume`]).
    pub(crate) fn resume(&self) {
        let mut q = self.queue.lock().unwrap();
        q.pause_depth = q.pause_depth.saturating_sub(1);
        let runnable = q.pause_depth == 0;
        drop(q);
        if runnable {
            self.work_cv.notify_all();
        }
    }

    /// Pauses scheduling for the lifetime of the returned guard (panic-safe: the
    /// matching resume happens in `Drop`, so an unwinding caller cannot leave a shared
    /// executor permanently paused).
    pub(crate) fn pause_guard(&self) -> PauseGuard<'_> {
        self.pause();
        PauseGuard { shared: self }
    }

    /// Cancels every job queued under one client slot.
    pub(crate) fn cancel_client_queue(&self, client: usize) {
        let mut q = self.queue.lock().unwrap();
        let jobs: Vec<QueuedJob> = q.queues[client].drain(..).collect();
        q.pending -= jobs.len();
        q.reclaim_retired();
        let idle = q.pending == 0 && q.in_flight == 0;
        drop(q);
        for job in jobs {
            job.state.complete(Err(ExecError::Cancelled));
        }
        if idle {
            self.idle_cv.notify_all();
        }
    }

    /// Removes a still-queued job and completes it as cancelled.  Returns whether the
    /// job was found in a queue.
    pub(crate) fn cancel_queued(&self, uid: u64) -> bool {
        let mut q = self.queue.lock().unwrap();
        for queue in &mut q.queues {
            if let Some(pos) = queue.iter().position(|j| j.uid == uid) {
                let job = queue.remove(pos).expect("position came from iter");
                q.pending -= 1;
                // Cancellation may have emptied a retired client's queue.
                q.reclaim_retired();
                let idle = q.pending == 0 && q.in_flight == 0;
                drop(q);
                job.state.complete(Err(ExecError::Cancelled));
                if idle {
                    self.idle_cv.notify_all();
                }
                return true;
            }
        }
        false
    }
}

/// An RAII pause of an executor's scheduling (see [`Executor::scoped_pause`]): the
/// matching resume runs in `Drop`, so the pause is released even if the scope unwinds.
pub struct PauseGuard<'a> {
    shared: &'a Shared,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.shared.resume();
    }
}

/// Builds an [`Executor`] over a registry of named backends.
#[derive(Default)]
pub struct ExecutorBuilder {
    backends: Vec<(String, Box<dyn Backend + Send>, BackendCaps)>,
    paused: bool,
}

impl ExecutorBuilder {
    /// Registers a backend under `name`, advertising the capabilities it reports via
    /// [`Backend::capabilities`].  The first registered backend is the default target
    /// for jobs that do not name one.
    pub fn register(self, name: impl Into<String>, backend: impl Backend + Send + 'static) -> Self {
        self.register_boxed(name, Box::new(backend))
    }

    /// Registers an already-boxed backend (see [`ExecutorBuilder::register`]).
    pub fn register_boxed(
        mut self,
        name: impl Into<String>,
        backend: Box<dyn Backend + Send>,
    ) -> Self {
        let caps = backend.capabilities();
        self.backends.push((name.into(), backend, caps));
        self
    }

    /// Starts the executor paused: submissions queue but nothing executes until
    /// [`Executor::resume`].  Useful for deterministic multi-client scheduling (all
    /// clients submit, then one resume releases the fair-ordered slate).
    pub fn paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Spawns the worker thread and returns the running executor.
    ///
    /// # Panics
    ///
    /// Panics if no backend was registered or two backends share a name (builder-time
    /// programming errors, not runtime job input).
    pub fn start(self) -> Executor {
        assert!(
            !self.backends.is_empty(),
            "an executor needs at least one registered backend"
        );
        let mut names: Vec<&str> = self.backends.iter().map(|(n, _, _)| n.as_str()).collect();
        names.sort_unstable();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "backend names must be unique"
        );
        let mut drivers = Vec::with_capacity(self.backends.len());
        let mut meta = Vec::with_capacity(self.backends.len());
        for (name, backend, caps) in self.backends {
            meta.push(BackendMeta {
                name,
                caps,
                shots: AtomicU64::new(backend.shots_used()),
            });
            drivers.push(backend);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pause_depth: usize::from(self.paused),
                ..QueueState::default()
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            meta,
            next_seq: AtomicU64::new(0),
            next_uid: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("qexec-worker".into())
            .spawn(move || worker_loop(&worker_shared, drivers))
            .expect("spawning the executor worker thread failed");
        Executor {
            shared,
            worker: Some(worker),
        }
    }
}

/// The execution service: owns a registry of named backends behind a worker thread,
/// accepts owned [`EvalJob`]s from any number of [`ExecClient`]s, and schedules them
/// with per-job priority and fair round-robin across clients.
///
/// See the crate docs for the serial-replay equivalence contract.
pub struct Executor {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Executor {
    /// Starts building an executor (multi-backend registry form).
    pub fn builder() -> ExecutorBuilder {
        ExecutorBuilder::default()
    }

    /// The one-backend convenience: registers `backend` as [`DEFAULT_BACKEND`] and
    /// starts the service.
    pub fn single(backend: impl Backend + Send + 'static) -> Executor {
        Self::builder().register(DEFAULT_BACKEND, backend).start()
    }

    /// [`Executor::single`] for an already-boxed backend.
    pub fn single_boxed(backend: Box<dyn Backend + Send>) -> Executor {
        Self::builder()
            .register_boxed(DEFAULT_BACKEND, backend)
            .start()
    }

    /// Registers a new client and returns its submission handle.  Each client gets its
    /// own FIFO; the scheduler serves clients round-robin at equal priority, so no
    /// client can starve another.  Slots of fully dropped clients are reused, so a
    /// long-lived executor can serve any number of short-lived clients without
    /// accumulating state.
    pub fn client(&self) -> ExecClient {
        let mut q = self.shared.queue.lock().unwrap();
        let id = match q.free_slots.pop() {
            Some(id) => {
                q.slots[id] = SlotState::Active;
                id
            }
            None => {
                q.queues.push(VecDeque::new());
                q.slots.push(SlotState::Active);
                q.queues.len() - 1
            }
        };
        drop(q);
        ExecClient {
            shared: Arc::clone(&self.shared),
            id,
            slot: Arc::new(SlotGuard {
                shared: Arc::downgrade(&self.shared),
                id,
            }),
        }
    }

    /// Number of client queue slots currently allocated (diagnostic: stays bounded by
    /// the peak number of *simultaneously live* clients, not by how many were ever
    /// created, because dropped clients' slots are reused once their jobs drain).
    pub fn client_slots(&self) -> usize {
        self.shared.queue.lock().unwrap().queues.len()
    }

    /// Names of the registered backends, in registration order (index 0 is the default).
    pub fn backend_names(&self) -> Vec<String> {
        self.shared.meta.iter().map(|m| m.name.clone()).collect()
    }

    /// The capabilities a registered backend advertises.
    pub fn capabilities(&self, backend: &str) -> Result<BackendCaps, ExecError> {
        let idx = self.shared.backend_index(backend)?;
        Ok(self.shared.meta[idx].caps)
    }

    /// The name of the first registered backend satisfying `require`, if any.
    pub fn find_backend(&self, require: &BackendCaps) -> Option<String> {
        self.shared
            .meta
            .iter()
            .find(|m| m.caps.satisfies(require))
            .map(|m| m.name.clone())
    }

    /// Total shots the named backend has charged, as of its most recently completed
    /// job.  Consistent whenever the jobs the caller cares about have completed (e.g.
    /// after waiting on their handles or [`Executor::wait_idle`]).
    pub fn shots_used(&self, backend: &str) -> Result<u64, ExecError> {
        let idx = self.shared.backend_index(backend)?;
        Ok(self.shared.meta[idx].shots.load(Ordering::SeqCst))
    }

    /// Resets the named backend's shot ledger.  Blocks until the worker has applied the
    /// reset; jobs already queued when this is called may execute before or after the
    /// reset, so callers reusing a backend across experiment arms should
    /// [`Executor::wait_idle`] first.
    pub fn reset_shots(&self, backend: &str) -> Result<(), ExecError> {
        let idx = self.shared.backend_index(backend)?;
        let ack = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.shutdown {
                return Err(ExecError::ShutDown);
            }
            q.controls.push_back(Control::ResetShots {
                backend: idx,
                ack: Arc::clone(&ack),
            });
        }
        self.shared.work_cv.notify_all();
        let (done, cv) = &*ack;
        let mut done = done.lock().unwrap();
        while !*done {
            done = cv.wait(done).unwrap();
        }
        Ok(())
    }

    /// Pauses scheduling: queued and newly submitted jobs accumulate but do not
    /// execute.  Jobs already picked into a slate finish.  Pausing lets a set of
    /// clients assemble one fair-ordered slate (the TreeVQA controller does this every
    /// round phase so all clusters' candidates land in a single batched submission).
    ///
    /// Pauses **nest**: each `pause` must be matched by one [`Executor::resume`], and
    /// scheduling restarts only when every pause has been resumed — so independent
    /// controllers sharing one executor cannot release each other's half-assembled
    /// slates.
    pub fn pause(&self) {
        self.shared.pause();
    }

    /// Undoes one [`Executor::pause`]; scheduling resumes when the pause depth reaches
    /// zero.  Unmatched resumes are ignored.
    pub fn resume(&self) {
        self.shared.resume();
    }

    /// [`Executor::pause`] as an RAII scope: the matching resume runs when the guard
    /// drops, including on unwind — prefer this over manual pause/resume pairs wherever
    /// a panic in between would otherwise leave a shared executor paused forever.
    pub fn scoped_pause(&self) -> PauseGuard<'_> {
        self.shared.pause_guard()
    }

    /// Blocks until no jobs are queued or executing.  On a paused executor this waits
    /// for [`Executor::resume`] (queued jobs cannot drain while paused).
    pub fn wait_idle(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while q.pending > 0 || q.in_flight > 0 {
            q = self.shared.idle_cv.wait(q).unwrap();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A client's submission handle.  Clones share the client's queue (and thus its
/// fair-scheduling slot); when the last clone drops, the slot is retired and reused by
/// a later [`Executor::client`] call once its queued jobs drain.
#[derive(Clone)]
pub struct ExecClient {
    shared: Arc<Shared>,
    id: usize,
    /// Retires the queue slot when the last clone drops (held only for its `Drop`).
    #[allow(dead_code)]
    slot: Arc<SlotGuard>,
}

impl ExecClient {
    /// Submits a job to the default backend at default priority.
    pub fn submit(&self, job: EvalJob) -> Result<JobHandle, ExecError> {
        self.submit_with(job, &SubmitOptions::default())
    }

    /// Submits a job with explicit backend selection, priority, and capability
    /// requirements.  Validation (shapes, backend, capabilities) happens here, before
    /// queueing — malformed input never reaches a driver.
    pub fn submit_with(&self, job: EvalJob, opts: &SubmitOptions) -> Result<JobHandle, ExecError> {
        self.enqueue(job, opts, JobKind::Evaluate)
    }

    /// Submits every job of an iterator (in order, to the default backend at default
    /// priority) and returns their handles.
    ///
    /// The jobs are enqueued **atomically with respect to scheduling**: the executor is
    /// paused while they are queued, so the worker cannot race ahead and split the
    /// group across several slates — a phase's jobs always coalesce into one batched
    /// driver submission (nesting makes this compose with an explicit
    /// [`Executor::pause`]).  On a rejected job, exactly the already-queued jobs of
    /// this call are cancelled before the error is returned, so a failed group
    /// submission never leaves orphaned work consuming the backend's RNG stream —
    /// jobs the client queued outside this call are untouched.
    pub fn submit_all(
        &self,
        jobs: impl IntoIterator<Item = EvalJob>,
    ) -> Result<Vec<JobHandle>, ExecError> {
        let _pause = self.shared.pause_guard();
        let mut handles = Vec::new();
        for job in jobs {
            match self.submit(job) {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // The pause guarantees none of this call's jobs started, so each
                    // cancel succeeds and only this group is withdrawn.
                    for handle in &handles {
                        handle.cancel();
                    }
                    return Err(e);
                }
            }
        }
        Ok(handles)
    }

    /// Cancels every job still queued under this client (jobs already executing are
    /// unaffected).  Their handles report [`ExecError::Cancelled`].
    pub fn cancel_queued(&self) {
        self.shared.cancel_client_queue(self.id);
    }

    /// Submits an uncharged probe: the job's charged observable is evaluated exactly on
    /// the prepared state via the driver's `probe` path (zero shots, free observables
    /// ignored).
    pub fn submit_probe(&self, job: EvalJob) -> Result<JobHandle, ExecError> {
        self.submit_probe_with(job, &SubmitOptions::default())
    }

    /// [`ExecClient::submit_probe`] with explicit options.
    pub fn submit_probe_with(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
    ) -> Result<JobHandle, ExecError> {
        self.enqueue(job, opts, JobKind::Probe)
    }

    fn enqueue(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
        kind: JobKind,
    ) -> Result<JobHandle, ExecError> {
        let backend = match &opts.backend {
            Some(name) => self.shared.backend_index(name)?,
            None => 0,
        };
        let meta = &self.shared.meta[backend];
        if let Some(missing) = meta.caps.first_missing(&opts.require) {
            return Err(ExecError::MissingCapability {
                backend: meta.name.clone(),
                missing,
            });
        }
        job.validate()?;
        let state = Arc::new(JobState::default());
        let uid = self.shared.next_uid.fetch_add(1, Ordering::Relaxed);
        let queued = QueuedJob {
            uid,
            priority: opts.priority,
            kind,
            backend,
            job,
            state: Arc::clone(&state),
        };
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.shutdown {
                return Err(ExecError::ShutDown);
            }
            q.queues[self.id].push_back(queued);
            q.pending += 1;
        }
        self.shared.work_cv.notify_one();
        Ok(JobHandle {
            state,
            shared: Arc::downgrade(&self.shared),
            uid,
        })
    }
}

/// Drains the whole queue into one slate in scheduled order: strictly by descending
/// priority; at equal priority, round-robin across clients starting at the cursor; FIFO
/// within a client (a higher-priority job may overtake its client's earlier
/// lower-priority jobs).
fn build_slate(q: &mut QueueState) -> Vec<QueuedJob> {
    let num_clients = q.queues.len();
    let mut slate = Vec::with_capacity(q.pending);
    while q.pending > 0 {
        // Highest remaining priority, computed once per level: nothing is enqueued
        // while the queue lock is held, so draining the whole level before recomputing
        // picks jobs in exactly the same order as a per-pick global rescan — without
        // the O(jobs) scan per pick.
        let level = q
            .queues
            .iter()
            .flat_map(|d| d.iter().map(|j| j.priority))
            .max()
            .expect("pending > 0 implies a queued job");
        loop {
            let mut served = None;
            for offset in 0..num_clients {
                let client = (q.rr_next + offset) % num_clients;
                if let Some(pos) = q.queues[client].iter().position(|j| j.priority == level) {
                    let job = q.queues[client]
                        .remove(pos)
                        .expect("position came from iter");
                    slate.push(job);
                    q.pending -= 1;
                    q.rr_next = (client + 1) % num_clients;
                    served = Some(client);
                    break;
                }
            }
            if served.is_none() {
                break;
            }
        }
    }
    slate
}

/// Executes one slate: consecutive same-backend evaluation jobs become one
/// `evaluate_batch` submission (probes run singly through `probe`), in slate order, so
/// the realized execution is exactly the serial replay of the scheduled order.
fn execute_slate(shared: &Shared, drivers: &mut [Box<dyn Backend + Send>], slate: &[QueuedJob]) {
    let mut start = 0;
    while start < slate.len() {
        let backend = slate[start].backend;
        let kind = slate[start].kind;
        let mut end = start + 1;
        while end < slate.len() && slate[end].backend == backend && slate[end].kind == kind {
            end += 1;
        }
        let group = &slate[start..end];
        match kind {
            JobKind::Evaluate => {
                let free_refs: Vec<Vec<&PauliOp>> = group
                    .iter()
                    .map(|g| g.job.free_ops.iter().map(|op| op.as_ref()).collect())
                    .collect();
                let requests: Vec<EvalRequest<'_>> = group
                    .iter()
                    .zip(&free_refs)
                    .map(|(g, free)| EvalRequest {
                        circuit: &g.job.circuit,
                        params: &g.job.params,
                        initial: &g.job.initial,
                        charged_op: &g.job.charged_op,
                        free_ops: free,
                    })
                    .collect();
                let driver = &mut drivers[backend];
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    driver.evaluate_batch(&requests)
                }));
                shared.meta[backend]
                    .shots
                    .store(drivers[backend].shots_used(), Ordering::SeqCst);
                match outcome {
                    Ok(results) => {
                        for (g, result) in group.iter().zip(results) {
                            g.state.complete(Ok(result));
                        }
                    }
                    Err(payload) => {
                        let msg = panic_message(payload);
                        for g in group {
                            g.state.complete(Err(ExecError::Execution(msg.clone())));
                        }
                    }
                }
            }
            JobKind::Probe => {
                for g in group {
                    let driver = &mut drivers[backend];
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        driver.probe(
                            &g.job.circuit,
                            &g.job.params,
                            &g.job.initial,
                            &g.job.charged_op,
                        )
                    }));
                    g.state.complete(match outcome {
                        Ok(charged) => Ok(EvalResult {
                            charged,
                            free: Vec::new(),
                            shots: 0,
                        }),
                        Err(payload) => Err(ExecError::Execution(panic_message(payload))),
                    });
                }
            }
        }
        start = end;
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

fn worker_loop(shared: &Arc<Shared>, mut drivers: Vec<Box<dyn Backend + Send>>) {
    loop {
        let slate = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                while let Some(control) = q.controls.pop_front() {
                    match control {
                        Control::ResetShots { backend, ack } => {
                            drivers[backend].reset_shots();
                            shared.meta[backend]
                                .shots
                                .store(drivers[backend].shots_used(), Ordering::SeqCst);
                            let (done, cv) = &*ack;
                            *done.lock().unwrap() = true;
                            cv.notify_all();
                        }
                    }
                }
                if q.shutdown {
                    // Fail whatever is still queued so no handle waits forever.
                    for queue in &mut q.queues {
                        while let Some(job) = queue.pop_front() {
                            job.state.complete(Err(ExecError::ShutDown));
                        }
                    }
                    q.pending = 0;
                    shared.idle_cv.notify_all();
                    return;
                }
                if q.pause_depth == 0 && q.pending > 0 {
                    break;
                }
                q = shared.work_cv.wait(q).unwrap();
            }
            let slate = build_slate(&mut q);
            // Draining emptied every queue, so retired client slots become reusable.
            q.reclaim_retired();
            q.in_flight = slate.len();
            // Sequence numbers record the scheduled order, assigned before execution so
            // even a panicking group leaves a complete replay record.
            for job in &slate {
                job.state
                    .set_sequence(shared.next_seq.fetch_add(1, Ordering::SeqCst));
            }
            slate
        };
        execute_slate(shared, &mut drivers, &slate);
        let mut q = shared.queue.lock().unwrap();
        q.in_flight = 0;
        if q.pending == 0 {
            shared.idle_cv.notify_all();
        }
    }
}
