//! Owned jobs and completion handles.

use crate::error::ExecError;
use crate::executor::Shared;
use qcircuit::Circuit;
use qop::PauliOp;
use qrng::StreamId;
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};
use vqa::{BackendCaps, EvalResult, InitialState};

/// Per-job scheduling priority: higher values execute first; equal priorities are served
/// fairly round-robin across clients.  The default is 0.
pub type Priority = i32;

/// Hard cap on the register size the execution service accepts.
///
/// A dense statevector is `2^n` amplitudes (two `f64` lanes each), so 32 qubits — 64
/// GiB of state — is already far past anything this service simulates; anything larger
/// is hostile or nonsensical input and is refused at validation with
/// [`ExecError::RegisterTooLarge`] before any allocation is attempted.
pub const MAX_JOB_QUBITS: usize = 32;

/// One owned evaluation of a parameterized ansatz against a charged observable (plus
/// free tracking observables).
///
/// Unlike the borrowed `vqa::EvalRequest<'a>` that the low-level [`vqa::Backend`] driver
/// interface consumes, an `EvalJob` owns (or `Arc`-shares) everything it references, so
/// it can be queued, reprioritized, and moved across threads.  The heavyweight pieces —
/// circuit and observables — are `Arc`s: submitting a thousand candidates of one ansatz
/// shares a single circuit allocation, which also lets the batch engine's uniform-circuit
/// detection short-circuit on pointer equality.
#[derive(Clone, Debug)]
pub struct EvalJob {
    /// The ansatz circuit.
    pub circuit: Arc<Circuit>,
    /// The bound parameter vector for this evaluation.
    pub params: Vec<f64>,
    /// The initial state the ansatz is applied to.
    pub initial: InitialState,
    /// The observable whose estimation is charged shots (for probe jobs: the probed
    /// observable, at zero shot cost).
    pub charged_op: Arc<PauliOp>,
    /// Observables evaluated exactly at zero shot cost on the same state.
    pub free_ops: Vec<Arc<PauliOp>>,
    /// Optional completion deadline.  A job whose deadline has passed before it is
    /// scheduled is dropped by the scheduler with [`ExecError::DeadlineExceeded`]
    /// instead of wasting backend time on work nobody is still waiting for.  Work that
    /// has already started executing is never aborted mid-flight, so a deadline bounds
    /// *queueing* latency, not execution time.
    pub deadline: Option<Instant>,
    /// Optional explicit `qrng` draw stream for the job's stochastic backend draws
    /// (convenience forwarding of [`SubmitOptions::rng_stream`]; the submit option
    /// wins when both are set).  `None` — the default — derives a stream from the
    /// job's submission id, which is already unique and reproducible.
    pub rng_stream: Option<StreamId>,
}

impl EvalJob {
    /// Creates a job with no free tracking observables.
    pub fn new(
        circuit: Arc<Circuit>,
        params: Vec<f64>,
        initial: InitialState,
        charged_op: Arc<PauliOp>,
    ) -> Self {
        EvalJob {
            circuit,
            params,
            initial,
            charged_op,
            free_ops: Vec::new(),
            deadline: None,
            rng_stream: None,
        }
    }

    /// Adds free tracking observables (builder style).
    pub fn with_free_ops(mut self, free_ops: Vec<Arc<PauliOp>>) -> Self {
        self.free_ops = free_ops;
        self
    }

    /// Sets an absolute completion deadline (builder style).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now (builder style).
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Pins the job's `qrng` draw stream (builder style; see
    /// [`SubmitOptions::rng_stream`], which takes precedence when both are set).
    pub fn with_rng_stream(mut self, stream: StreamId) -> Self {
        self.rng_stream = Some(stream);
        self
    }

    /// Validates the job's shapes, reporting the first problem as an [`ExecError`].
    ///
    /// This is the service boundary where malformed user input becomes a structured
    /// error instead of a panic deep inside a simulator kernel.  Since jobs can arrive
    /// over the network (`qnet`), the checks assume a hostile caller, not a
    /// well-behaved in-process one: registers above [`MAX_JOB_QUBITS`] are refused
    /// before any `2^n` allocation, NaN/infinite parameters before they poison a
    /// state, and zero-term observables before they bill vacuous work.
    pub fn validate(&self) -> Result<(), ExecError> {
        let n = self.circuit.num_qubits();
        if self.circuit.num_gates() == 0 {
            return Err(ExecError::EmptyCircuit);
        }
        if n > MAX_JOB_QUBITS {
            return Err(ExecError::RegisterTooLarge {
                num_qubits: n,
                max: MAX_JOB_QUBITS,
            });
        }
        let expected = self.circuit.num_parameters();
        if self.params.len() != expected {
            return Err(ExecError::ParameterCountMismatch {
                expected,
                got: self.params.len(),
            });
        }
        if let Some(index) = self.params.iter().position(|p| !p.is_finite()) {
            return Err(ExecError::NonFiniteParameter { index });
        }
        for op in std::iter::once(&self.charged_op).chain(self.free_ops.iter()) {
            if op.num_qubits() != n {
                return Err(ExecError::QubitCountMismatch {
                    circuit: n,
                    operator: op.num_qubits(),
                });
            }
            if op.num_terms() == 0 {
                return Err(ExecError::EmptyObservable);
            }
        }
        if let InitialState::Basis(b) = self.initial {
            if n < 64 && (b >> n) != 0 {
                return Err(ExecError::BasisStateOutOfRange {
                    basis: b,
                    num_qubits: n,
                });
            }
        }
        Ok(())
    }
}

/// How a job is executed against its backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// A charged evaluation through the backend's batched path.
    Evaluate,
    /// An uncharged probe (`Backend::probe`): exact expectation, zero shots, free
    /// observables ignored.
    Probe,
}

/// Options accepted by [`crate::ExecClient::submit_with`].
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// The target backend by registry name; `None` selects the executor's default
    /// (first-registered) backend.
    pub backend: Option<String>,
    /// Scheduling priority (higher first; default 0).
    pub priority: Priority,
    /// Capabilities the backend must advertise; submission fails with
    /// [`ExecError::MissingCapability`] if the selected backend lacks one.
    pub require: BackendCaps,
    /// How many times a failed execution may be retried (default 0).  Retries require
    /// the target backend to advertise [`vqa::BackendCaps::retry_safe`] — re-executing
    /// an idempotent job is observationally invisible to every other job, so retried
    /// runs stay bit-identical to a fault-free run under any schedule.  Submission
    /// fails with [`ExecError::MissingCapability`] (`"retry_safe"`) when retries are
    /// requested on a backend that cannot honor that contract.  The executor
    /// additionally clamps this to its configured retry limit.
    pub retries: u32,
    /// Whether the job may fail over to another registered backend that satisfies
    /// [`SubmitOptions::require`] when its target backend is quarantined after a driver
    /// panic (default `false`: quarantine fails the job fast with
    /// [`ExecError::BackendQuarantined`]).
    pub failover: bool,
    /// Explicit `qrng` draw stream for the job's stochastic backend draws.  `None` —
    /// the default — derives [`StreamId::for_job`] from the job's submission id, so
    /// every job gets a unique reproducible stream with no caller involvement.  Pin a
    /// stream to make a job's randomness independent of submission order (e.g. keyed
    /// by a stable task/candidate identity), or to replay one job's draws elsewhere.
    pub rng_stream: Option<StreamId>,
}

impl SubmitOptions {
    /// Default options (same as `SubmitOptions::default()`, fluent-builder entry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Targets the named backend (builder style).
    pub fn backend(mut self, name: impl Into<String>) -> Self {
        self.backend = Some(name.into());
        self
    }

    /// Sets the scheduling priority (builder style).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Requires backend capabilities (builder style).
    pub fn require(mut self, require: BackendCaps) -> Self {
        self.require = require;
        self
    }

    /// Sets the retry budget (builder style).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Opts into failover to a compatible standby backend (builder style).
    pub fn failover(mut self, failover: bool) -> Self {
        self.failover = failover;
        self
    }

    /// Pins the job's `qrng` draw stream (builder style).
    pub fn rng_stream(mut self, stream: StreamId) -> Self {
        self.rng_stream = Some(stream);
        self
    }
}

/// The terminal span [`qobs::Outcome`] a completion result maps to.  The mapping is
/// total: every way a job can resolve — including cancellation, shedding
/// ([`ExecError::Overloaded`] *after* admission), expiry, and shutdown — lands on
/// exactly one label, which is what lets the observability tests assert a correctly
/// labeled terminal event for 100% of submitted jobs.
fn outcome_of(result: &Result<EvalResult, ExecError>) -> qobs::Outcome {
    match result {
        Ok(_) => qobs::Outcome::Completed,
        Err(ExecError::Cancelled) => qobs::Outcome::Cancelled,
        Err(ExecError::DeadlineExceeded) => qobs::Outcome::Expired,
        Err(ExecError::Overloaded) => qobs::Outcome::Shed,
        Err(ExecError::ShutDown) => qobs::Outcome::ShutDown,
        Err(_) => qobs::Outcome::Failed,
    }
}

/// A one-shot completion callback (see [`JobHandle::on_complete`]).
type CompletionCallback = Box<dyn FnOnce(&Result<EvalResult, ExecError>) + Send>;

/// Completion state shared between a handle and the scheduler.
#[derive(Default)]
pub(crate) struct JobState {
    slot: Mutex<Option<Result<EvalResult, ExecError>>>,
    cv: Condvar,
    seq: OnceLock<u64>,
    /// Lifecycle span, attached at admission when the executor's registry records
    /// spans.  `complete` is the single funnel every completion path goes through
    /// (worker, cancel, shed, expire, shutdown), so closing the span here guarantees
    /// exactly one terminal event per admitted job.
    span: OnceLock<Arc<qobs::Span>>,
    /// The executor's observability registry, attached at admission when recording is
    /// on, so the completion funnel can label failed jobs by wire error code.
    obs: OnceLock<Arc<qobs::Registry>>,
    /// Callbacks to run on completion.  Guarded by the `slot` lock discipline: both
    /// registration and the completing drain hold `slot` while touching this, so a
    /// callback runs exactly once — either inline at registration (already complete)
    /// or from the completing thread.
    callbacks: Mutex<Vec<CompletionCallback>>,
}

impl std::fmt::Debug for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobState")
            .field("slot", &self.slot)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl JobState {
    pub(crate) fn complete(&self, result: Result<EvalResult, ExecError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_some() {
            drop(slot);
            self.cv.notify_all();
            return;
        }
        if let Some(span) = self.span.get() {
            span.finish(outcome_of(&result));
        }
        // Failed jobs additionally count under their stable wire code
        // (`err<code>_<name>`), so a Prometheus scrape and a `qnet` wire client agree
        // on what failed and how often.
        if let Err(e) = &result {
            if let Some(obs) = self.obs.get() {
                obs.labeled()
                    .inc(&format!("err{}_{}", e.code(), e.code_name()));
            }
        }
        *slot = Some(result);
        // Drain under the `slot` lock (the registration side holds it too), run after
        // releasing it so a callback can inspect the handle without self-deadlock.
        let callbacks: Vec<CompletionCallback> =
            std::mem::take(&mut *self.callbacks.lock().unwrap());
        let for_callbacks = (!callbacks.is_empty()).then(|| slot.as_ref().unwrap().clone());
        drop(slot);
        self.cv.notify_all();
        if let Some(result) = for_callbacks {
            for callback in callbacks {
                callback(&result);
            }
        }
    }

    pub(crate) fn attach_span(&self, span: Arc<qobs::Span>) {
        let _ = self.span.set(span);
    }

    pub(crate) fn attach_obs(&self, obs: Arc<qobs::Registry>) {
        let _ = self.obs.set(obs);
    }

    pub(crate) fn span(&self) -> Option<&Arc<qobs::Span>> {
        self.span.get()
    }

    pub(crate) fn set_sequence(&self, seq: u64) {
        let _ = self.seq.set(seq);
    }

    /// Whether a sequence number was already assigned (true for retried jobs, which
    /// keep the number from their first scheduling).
    pub(crate) fn has_sequence(&self) -> bool {
        self.seq.get().is_some()
    }

    /// The assigned sequence number, if any (the scheduler-side view of
    /// [`JobHandle::sequence`]).
    pub(crate) fn sequence_value(&self) -> Option<u64> {
        self.seq.get().copied()
    }
}

/// A handle to a submitted job: wait for completion, poll, cancel, and observe the
/// execution sequence number the fair scheduler assigned.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
    pub(crate) shared: Weak<Shared>,
    pub(crate) uid: u64,
    pub(crate) stream: StreamId,
}

impl JobHandle {
    /// Blocks until the job completes (or is cancelled / the executor shuts down) and
    /// returns its result.
    ///
    /// Waiting on a job queued behind a paused executor blocks until the executor is
    /// resumed.
    pub fn wait(&self) -> Result<EvalResult, ExecError> {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.cv.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }

    /// Blocks until the job completes or `timeout` elapses, returning `None` on
    /// timeout.  A timed-out wait does **not** cancel the job — it stays queued (pair
    /// with a job deadline to bound how long it can linger) and can be waited on again.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<EvalResult, ExecError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.state.cv.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
        Some(slot.as_ref().unwrap().clone())
    }

    /// The job's result if it has already completed (non-blocking).
    pub fn try_result(&self) -> Option<Result<EvalResult, ExecError>> {
        self.state.slot.lock().unwrap().clone()
    }

    /// Whether the job has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().unwrap().is_some()
    }

    /// Registers a callback to run exactly once when the job completes (with the same
    /// result [`JobHandle::wait`] returns).  If the job has already completed, the
    /// callback runs inline before this returns; otherwise it runs on the completing
    /// thread — scheduler or worker — so it must be short and must not block (push
    /// into a channel, bump a counter).  This is the push-notification primitive the
    /// network server uses to stream out-of-order completions without a thread or a
    /// poll per in-flight job.
    pub fn on_complete<F>(&self, callback: F)
    where
        F: FnOnce(&Result<EvalResult, ExecError>) + Send + 'static,
    {
        let slot = self.state.slot.lock().unwrap();
        if let Some(result) = slot.as_ref() {
            let result = result.clone();
            drop(slot);
            callback(&result);
        } else {
            // Registered under the `slot` lock: `complete` drains callbacks while
            // holding it, so this either lands before the drain (and runs there) or
            // observes the filled slot above.
            self.state
                .callbacks
                .lock()
                .unwrap()
                .push(Box::new(callback));
        }
    }

    /// Attempts to cancel the job.  Returns `true` if the job was still queued (it is
    /// removed, and [`JobHandle::wait`] reports [`ExecError::Cancelled`]); returns
    /// `false` if it already started executing or completed — started work is never
    /// aborted mid-flight, preserving the serial-replay contract for every job that
    /// does execute.
    pub fn cancel(&self) -> bool {
        let Some(shared) = self.shared.upgrade() else {
            return false;
        };
        shared.cancel_queued(self.uid)
    }

    /// The global execution sequence number the scheduler assigned to this job, or
    /// `None` if it has not been scheduled (yet, or ever — cancelled jobs have none).
    ///
    /// Sequence numbers record the scheduled order for auditing; since the
    /// counter-based `qrng` rework a job's result no longer depends on it — replaying
    /// the job alone, with its [`JobHandle::rng_stream`], reproduces its result
    /// bit-for-bit (see the crate docs).
    pub fn sequence(&self) -> Option<u64> {
        self.state.seq.get().copied()
    }

    /// The `qrng` draw stream the job's stochastic backend draws are keyed by —
    /// the pinned [`SubmitOptions::rng_stream`] / [`EvalJob::with_rng_stream`]
    /// stream, or the default stream derived from the job's submission id.
    /// Evaluating the job's request with this stream on an identically seeded
    /// backend reproduces its result bit-for-bit, with no replay of other jobs.
    pub fn rng_stream(&self) -> StreamId {
        self.stream
    }
}

/// Waits on a slice of handles in order and collects their results, failing fast on the
/// first error.
pub fn wait_all(handles: &[JobHandle]) -> Result<Vec<EvalResult>, ExecError> {
    handles.iter().map(JobHandle::wait).collect()
}
