//! Deterministic fault injection for exercising the supervision, retry, and shedding
//! paths.
//!
//! A [`FaultPlan`] is a pure function from `(seed, call index)` to an optional
//! [`FaultKind`]: the decision for call *n* is a counter-based SplitMix64 hash, never a
//! stateful RNG stream, so a failure scenario replays *exactly* — same seed, same
//! faults at the same driver calls — regardless of how many times it is run or what
//! ran before it.  [`FaultyBackend`] threads a plan through any [`vqa::Backend`],
//! ticking the counter once per driver entry point (`evaluate`, `evaluate_batch`,
//! `probe`) **before** delegating.
//!
//! Two failure severities map onto the service's supervision contract:
//!
//! - [`FaultKind::Panic`] unwinds with an ordinary string payload — the executor
//!   quarantines the backend and the canary/readmission lifecycle engages.
//! - [`FaultKind::Transient`] unwinds with a [`TransientFault`] payload — the executor
//!   fails (or retries) the affected jobs without quarantining, modelling a
//!   recoverable glitch rather than a corrupted driver.
//!
//! [`Backend::recover`] deliberately neither ticks the counter nor faults: the
//! supervisor must always be able to rebuild a driver, and recovery calls happening or
//! not happening must not shift which later calls fault.
//!
//! This module is test/bench support: it ships in the library (the soak CI job and the
//! overload bench drive it), but production registrations simply never wrap their
//! drivers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vqa::{Backend, BackendCaps, EvalRequest, EvalResult, InitialState};

/// What a scheduled fault does when its driver call arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a plain payload: the executor treats this as a corrupted driver and
    /// quarantines the backend.
    Panic,
    /// Unwind with a [`TransientFault`] payload: jobs fail (or retry) but the backend
    /// stays in service.
    Transient,
    /// Sleep this many milliseconds, then execute normally — exercises deadline and
    /// timeout paths without failing anything.
    Delay(u64),
}

/// The panic payload [`FaultyBackend`] unwinds with for [`FaultKind::Transient`]
/// faults.  The executor downcasts for this marker to distinguish a recoverable glitch
/// (no quarantine) from a corrupted driver (quarantine).
#[derive(Debug)]
pub struct TransientFault(pub String);

/// A seeded, replayable schedule of injected faults.
///
/// Rate-based faults are decided per call by hashing `(seed, call)`; scripted faults
/// ([`FaultPlan::with_fault_at`]) override the rates at their exact call index.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    transient_rate: f64,
    delay_rate: f64,
    delay_ms: u64,
    scripted: Vec<(u64, Option<FaultKind>)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (add rates or scripted faults with the
    /// builder methods).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            transient_rate: 0.0,
            delay_rate: 0.0,
            delay_ms: 1,
            scripted: Vec::new(),
        }
    }

    /// Sets the per-call probability of a hard [`FaultKind::Panic`].
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-call probability of a [`FaultKind::Transient`] fault.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-call probability (and duration) of a [`FaultKind::Delay`].
    pub fn with_delay_rate(mut self, rate: f64, delay_ms: u64) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay_ms = delay_ms;
        self
    }

    /// Scripts an exact fault at driver call `call` (0-based), overriding the rates at
    /// that index.  Pass `None` to force call `call` fault-free.
    pub fn with_fault_at(mut self, call: u64, kind: Option<FaultKind>) -> Self {
        self.scripted.push((call, kind));
        self
    }

    /// The fault (if any) injected at driver call `call` — a pure function of
    /// `(seed, call)` plus the scripted overrides.
    pub fn decide(&self, call: u64) -> Option<FaultKind> {
        if let Some(&(_, kind)) = self.scripted.iter().rev().find(|&&(c, _)| c == call) {
            return kind;
        }
        let u = unit_hash(self.seed, call);
        if u < self.panic_rate {
            Some(FaultKind::Panic)
        } else if u < self.panic_rate + self.transient_rate {
            Some(FaultKind::Transient)
        } else if u < self.panic_rate + self.transient_rate + self.delay_rate {
            Some(FaultKind::Delay(self.delay_ms))
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer over `(seed, counter)`, mapped to `[0, 1)`.
fn unit_hash(seed: u64, call: u64) -> f64 {
    let mut z = seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Counters a [`FaultyBackend`] updates as it injects — grab a handle via
/// [`FaultyBackend::stats`] **before** boxing the backend into an executor, and assert
/// on it afterwards.
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    calls: Arc<AtomicU64>,
    panics: Arc<AtomicU64>,
    transients: Arc<AtomicU64>,
    delays: Arc<AtomicU64>,
}

impl FaultStats {
    /// Driver entry points seen so far (each ticks the fault counter once).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Hard panics injected so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::SeqCst)
    }

    /// Transient faults injected so far.
    pub fn transients(&self) -> u64 {
        self.transients.load(Ordering::SeqCst)
    }

    /// Delays injected so far.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::SeqCst)
    }
}

/// A [`Backend`] wrapper that injects the faults its [`FaultPlan`] schedules.
///
/// Capabilities, naming, and the shot ledger delegate to the inner backend, so a
/// faulty registration is indistinguishable from a healthy one at submission time —
/// exactly the situation supervision has to handle.
#[derive(Debug)]
pub struct FaultyBackend<B: Backend> {
    inner: B,
    plan: FaultPlan,
    stats: FaultStats,
}

impl<B: Backend> FaultyBackend<B> {
    /// Wraps `inner`, injecting per `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            stats: FaultStats::default(),
        }
    }

    /// A live handle onto the injection counters (clone it out before boxing the
    /// backend into an executor).
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// Ticks the call counter and injects the scheduled fault, if any.  Runs *before*
    /// delegation, so a faulted call never half-executes on the inner driver.
    fn tick(&self) {
        let call = self.stats.calls.fetch_add(1, Ordering::SeqCst);
        match self.plan.decide(call) {
            Some(FaultKind::Panic) => {
                self.stats.panics.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault at driver call {call}");
            }
            Some(FaultKind::Transient) => {
                self.stats.transients.fetch_add(1, Ordering::SeqCst);
                std::panic::panic_any(TransientFault(format!(
                    "injected transient fault at driver call {call}"
                )));
            }
            Some(FaultKind::Delay(ms)) => {
                self.stats.delays.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            None => {}
        }
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn evaluate(
        &mut self,
        circuit: &qcircuit::Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &qop::PauliOp,
        free_ops: &[&qop::PauliOp],
    ) -> (f64, Vec<f64>) {
        self.tick();
        self.inner
            .evaluate(circuit, params, initial, charged_op, free_ops)
    }

    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        self.tick();
        self.inner.evaluate_batch(requests)
    }

    fn probe(
        &mut self,
        circuit: &qcircuit::Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &qop::PauliOp,
    ) -> f64 {
        self.tick();
        self.inner.probe(circuit, params, initial, op)
    }

    fn shots_used(&self) -> u64 {
        self.inner.shots_used()
    }

    fn reset_shots(&mut self) {
        self.inner.reset_shots();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.inner.shots_per_pauli()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> BackendCaps {
        self.inner.capabilities()
    }

    // No tick, no fault: recovery must always work, and whether it runs must not shift
    // which later calls fault.
    fn recover(&mut self) {
        self.inner.recover();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_a_pure_function_of_seed_and_call() {
        let plan = FaultPlan::new(42)
            .with_panic_rate(0.2)
            .with_transient_rate(0.2);
        let first: Vec<_> = (0..64).map(|c| plan.decide(c)).collect();
        let second: Vec<_> = (0..64).map(|c| plan.decide(c)).collect();
        assert_eq!(first, second);
        // A different seed gives a different schedule (overwhelmingly likely over 64
        // calls at 40% fault rate).
        let other = FaultPlan::new(43)
            .with_panic_rate(0.2)
            .with_transient_rate(0.2);
        assert_ne!(first, (0..64).map(|c| other.decide(c)).collect::<Vec<_>>());
    }

    #[test]
    fn scripted_faults_override_rates() {
        let plan = FaultPlan::new(7)
            .with_panic_rate(1.0)
            .with_fault_at(3, None)
            .with_fault_at(5, Some(FaultKind::Transient));
        assert_eq!(plan.decide(0), Some(FaultKind::Panic));
        assert_eq!(plan.decide(3), None);
        assert_eq!(plan.decide(5), Some(FaultKind::Transient));
    }

    #[test]
    fn rates_land_near_their_targets() {
        let plan = FaultPlan::new(1234).with_transient_rate(0.25);
        let hits = (0..4000)
            .filter(|&c| plan.decide(c) == Some(FaultKind::Transient))
            .count();
        assert!((800..1200).contains(&hits), "got {hits} of 4000");
    }
}
