//! Backend supervision: quarantine after a driver panic, canary readmission, and
//! failover selection.
//!
//! The worker thread owns the boxed drivers, so supervision is not a separate thread —
//! it is a health table consulted at dispatch time.  A hard driver panic quarantines
//! the backend; while quarantined, jobs targeting it fail fast with
//! [`crate::ExecError::BackendQuarantined`] or fail over to a capability-compatible
//! standby ([`crate::SubmitOptions::failover`]).  Before readmission the supervisor
//! calls [`vqa::Backend::recover`] (rebuilding the driver's scratch buffers and
//! compiled-circuit caches from scratch, since a panic may have left them
//! half-written) and probes the driver with a canary job; canary failures push the
//! next attempt out with exponential backoff measured in scheduler rounds, keeping the
//! whole lifecycle deterministic under the fault-injection harness.
//!
//! Every lifecycle transition is counted in the executor's observability registry
//! ([`crate::Executor::observability`]): `quarantines` when a panic trips supervision,
//! `canary_probes` per readmission attempt, `readmissions` on success, and `failovers`
//! per job substituted onto a standby — so a fault-injection soak can be audited from
//! the counter stream alone.

use qcircuit::{Circuit, Gate};
use qop::PauliOp;
use vqa::{Backend, BackendCaps, InitialState};

/// Internal health state of one registered backend (lives in the queue-lock-protected
/// scheduler state; the queue lock is the health lock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Health {
    /// Serving jobs normally.
    Healthy,
    /// A driver panic tripped supervision; jobs fail fast or fail over until a canary
    /// probe succeeds.
    Quarantined {
        /// Consecutive failures (the initial panic plus failed canaries) — drives the
        /// readmission backoff.
        failures: u32,
        /// First scheduler round at which the next canary may run.
        next_canary_round: u64,
    },
}

/// A backend's health as observed through [`crate::Executor::backend_health`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendHealth {
    /// The backend is serving jobs.
    Healthy,
    /// The backend is quarantined after a driver panic and awaiting canary readmission.
    Quarantined {
        /// Consecutive failures so far (the initial panic plus any failed canaries).
        failures: u32,
    },
}

impl From<Health> for BackendHealth {
    fn from(h: Health) -> Self {
        match h {
            Health::Healthy => BackendHealth::Healthy,
            Health::Quarantined { failures, .. } => BackendHealth::Quarantined { failures },
        }
    }
}

/// Scheduler rounds to wait before canary attempt `failures + 1`: exponential backoff
/// capped at 64 rounds.  Rounds, not wall time, so the lifecycle replays exactly under
/// the seeded fault harness.
pub(crate) fn backoff_rounds(failures: u32) -> u64 {
    1u64 << failures.min(6)
}

/// Probes a recovering driver with a minimal known-good job (H on one qubit, ⟨Z⟩ = 0):
/// rebuilds its caches via [`Backend::recover`], then checks the probe neither panics
/// nor returns a non-finite value.  The canary is uncharged and parameter-free, so a
/// readmitted stochastic backend's RNG stream is untouched.
pub(crate) fn canary(driver: &mut (dyn Backend + Send)) -> bool {
    driver.recover();
    let mut circuit = Circuit::new(1);
    circuit.push(Gate::H(0));
    let op = PauliOp::from_labels(1, &[("Z", 1.0)]);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        driver.probe(&circuit, &[], &InitialState::Basis(0), &op)
    }));
    matches!(outcome, Ok(v) if v.is_finite())
}

/// First healthy registration-order backend other than `exclude` that satisfies
/// `require` — the standby a [`crate::SubmitOptions::failover`] job executes on while
/// its target is quarantined.
pub(crate) fn select_failover(
    caps: &[BackendCaps],
    health: &[Health],
    exclude: usize,
    require: &BackendCaps,
) -> Option<usize> {
    (0..caps.len()).find(|&i| {
        i != exclude && health[i] == Health::Healthy && caps[i].first_missing(require).is_none()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqa::StatevectorBackend;

    #[test]
    fn canary_passes_on_a_healthy_backend() {
        let mut driver = StatevectorBackend::with_shots(0);
        assert!(canary(&mut driver));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff_rounds(0), 1);
        assert_eq!(backoff_rounds(1), 2);
        assert_eq!(backoff_rounds(3), 8);
        assert_eq!(backoff_rounds(6), 64);
        assert_eq!(backoff_rounds(40), 64);
    }

    #[test]
    fn failover_skips_the_excluded_and_quarantined() {
        let caps = [BackendCaps::default(), BackendCaps::default()];
        let health = [
            Health::Quarantined {
                failures: 1,
                next_canary_round: 5,
            },
            Health::Healthy,
        ];
        let require = BackendCaps::default();
        assert_eq!(select_failover(&caps, &health, 0, &require), Some(1));
        assert_eq!(select_failover(&caps, &health, 1, &require), None);
    }
}
