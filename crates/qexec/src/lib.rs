//! # qexec — the job-based execution service
//!
//! Every layer above the simulators used to thread a `&mut dyn Backend` by hand and call
//! `evaluate_batch` with borrowed request slices: fully synchronous, single-client, and
//! panicking on malformed input.  This crate redesigns that boundary into a service:
//!
//! * an [`Executor`] **owns** a registry of named backends (capability-negotiated via
//!   [`vqa::BackendCaps`]: batch, shots, noise, trajectories) behind a scheduler thread;
//! * any number of [`ExecClient`]s submit **owned** [`EvalJob`]s — `Arc`-shared circuit
//!   and observables, owned parameters — so work can be queued, prioritized, cancelled,
//!   and moved across threads;
//! * every submission returns a [`JobHandle`] with blocking/polling completion,
//!   cancellation, and the scheduler-assigned execution [`JobHandle::sequence`] number;
//! * malformed input (parameter-count or qubit-count mismatches, out-of-range basis
//!   states, empty circuits) is a structured [`ExecError`] at the submission boundary —
//!   and any residual driver panic surfaces as [`ExecError::Execution`] through the
//!   handle instead of crashing the service.
//!
//! The [`vqa::Backend`] trait survives beneath this API as the low-level driver
//! interface that execution substrates implement; only the executor calls it.
//!
//! # Scheduling
//!
//! Jobs are scheduled strictly by descending [`Priority`]; at equal priority, clients
//! are served **fair round-robin** (one job per client per turn, cursor advancing past
//! the served client), FIFO within a client.  The scheduler drains the queue into a
//! *slate*, partitions it by backend, and executes each backend's evaluation jobs as
//! one `evaluate_batch` submission (probes run singly after) — so concurrent clients'
//! work coalesces into the big batches the compiled scratch-pool engine is built for,
//! while no client can starve another.  [`ExecutorBuilder::workers`] (or the
//! `QEXEC_WORKERS` environment variable) spreads the backends across that many
//! execution worker threads, each owning a disjoint driver subset; the scheduler
//! dispatches every backend's portion of the slate to its owner and barriers on the
//! replies, so multi-backend slates execute concurrently without changing any result.
//! [`Executor::pause`] / [`Executor::resume`] let cooperating clients assemble one
//! fair-ordered slate deterministically (the TreeVQA controller does this every round
//! phase).
//!
//! # The robustness contract
//!
//! The service degrades structurally, never silently, under five cooperating
//! mechanisms:
//!
//! * **Deadlines** — [`EvalJob::with_deadline`] / [`EvalJob::with_timeout`] bound a
//!   job's *queueing* latency: the scheduler drops expired jobs before slate assembly
//!   (even while paused) with [`ExecError::DeadlineExceeded`], and
//!   [`JobHandle::wait_timeout`] bounds the client's wait.
//! * **Admission control** — [`ExecutorBuilder::queue_capacity`] /
//!   [`ExecutorBuilder::per_client_capacity`] (or the `QEXEC_QUEUE_CAP` environment
//!   variable) bound the queues; the [`AdmissionPolicy`] decides whether overflow
//!   rejects with [`ExecError::Overloaded`], blocks the submitter, or sheds the
//!   queued job that matters least.
//! * **Supervision** — a hard driver panic quarantines its backend; queued jobs
//!   targeting it fail fast with [`ExecError::BackendQuarantined`] or fail over to a
//!   capability-compatible standby ([`SubmitOptions::failover`]); the supervisor
//!   rebuilds the driver's caches ([`vqa::Backend::recover`]) and readmits it once a
//!   canary probe passes (see [`supervisor`]).
//! * **Retries** — [`SubmitOptions::retries`] re-queues failed executions of
//!   idempotent jobs (the backend must advertise [`vqa::BackendCaps::retry_safe`]),
//!   one slate after the failure; the retry executes with the job's own pinned draw
//!   stream, so a successful retry is bit-identical to a fault-free first attempt and
//!   never disturbs any other job's result.
//! * **Fault injection** — the [`fault`] module wraps any backend in a seeded,
//!   counter-deterministic [`fault::FaultyBackend`] so every path above is exercised
//!   reproducibly in CI.
//!
//! # Observability
//!
//! Every executor carries a [`qobs::Registry`] ([`Executor::observability`]).  Event
//! counters for each fault-path transition (reject / shed / expire / retry /
//! quarantine / canary / failover / readmission) are always live — they back the
//! lock-free [`Executor::stats`] snapshot.  When recording is enabled
//! ([`ExecutorBuilder::observability`], or the `QOBS` environment variable
//! process-wide), every admitted job additionally leaves exactly one lifecycle span —
//! submit → slate pickup → backend execution → terminal outcome, labeled with
//! client/backend/priority — feeding queue/exec/end-to-end latency histograms and a
//! bounded ring of finished spans.  Recording sits entirely off the driver path, so
//! traced and untraced runs produce bit-identical results (asserted by
//! `tests/tests/observability.rs`); disabled overhead is guarded by the perf gate.
//! Render snapshots through [`qobs::export`] as a summary table, JSON, or
//! Prometheus-style text — the `exec_trace` example bin shows all three.
//!
//! # The schedule-independence contract
//!
//! **Executor results are bit-identical under any schedule.**  Every job's stochastic
//! draws come from a counter-based [`qrng`] stream pinned at admission
//! ([`SubmitOptions::rng_stream`], [`EvalJob::with_rng_stream`], or the default stream
//! derived from the submission id, readable via [`JobHandle::rng_stream`]) — a pure
//! function of `(root seed, stream, draw index)`, independent of whatever executed
//! before.  Consequences, each asserted by `tests/tests/schedule_independence.rs` and
//! exercised at `QEXEC_WORKERS` ∈ {1, 2, 4} in CI:
//!
//! * **Worker counts don't matter** — the slate partitioning across execution workers
//!   (and their real-time interleaving) cannot change any result.
//! * **Submission interleaving doesn't matter** — a job pinned to a stream returns the
//!   same result no matter which other jobs surround it in the slate.
//! * **Retries and failovers don't matter** — re-executions reuse the pinned stream,
//!   so a recovered run is bit-identical to an undisturbed one.
//! * **Replay is a lookup, not a ritual** — re-evaluating any job with its handle's
//!   stream on an identically configured backend reproduces its result exactly;
//!   [`JobHandle::sequence`] still records the scheduled order for auditing, but
//!   nothing about the result depends on it.
//!
//! This strengthens the pre-PR-9 contract (bit-identical to the *serial replay of the
//! scheduled order*, which made results depend on global scheduling history) to
//! per-job determinism: concurrency never changes *what* is computed, only how it is
//! overlapped.
//!
//! ```
//! use qexec::{EvalJob, Executor};
//! use std::sync::Arc;
//! use vqa::{InitialState, StatevectorBackend};
//!
//! let executor = Executor::single(StatevectorBackend::with_shots(100));
//! let client = executor.client();
//!
//! let circuit = Arc::new(
//!     qcircuit::HardwareEfficientAnsatz::new(3, 1, qcircuit::Entanglement::Linear).build(),
//! );
//! let hamiltonian = Arc::new(qop::PauliOp::from_labels(3, &[("ZZI", -1.0), ("IXI", 0.3)]));
//! let params = vec![0.1; circuit.num_parameters()];
//!
//! let handle = client
//!     .submit(EvalJob::new(circuit, params, InitialState::Basis(0), hamiltonian))
//!     .expect("a well-formed job");
//! let result = handle.wait().expect("executed");
//! assert!(result.charged.is_finite());
//! assert_eq!(executor.shots_used("default").unwrap(), result.shots);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod executor;
pub mod fault;
mod job;
mod runner;
mod submit;
pub mod supervisor;

pub use error::{ExecError, CAPABILITY_NAMES};
pub use executor::{
    AdmissionPolicy, ExecClient, ExecStats, Executor, ExecutorBuilder, PauseGuard, DEFAULT_BACKEND,
    DEFAULT_RETRY_LIMIT, EVENT_NAMES,
};
pub use job::{wait_all, EvalJob, JobHandle, Priority, SubmitOptions, MAX_JOB_QUBITS};
pub use submit::{CompletionHandle, JobSubmitter};
// Re-exported so callers can name draw streams and seed policies without a direct
// dependency on the RNG crate.
pub use qrng;
pub use qrng::{SeedPolicy, StreamId};
pub use runner::{
    drive_optimizer_iteration, drive_optimizer_iteration_with, run_baseline, run_single_vqa,
};
pub use supervisor::BackendHealth;

// Re-exported so executor callers can name capabilities and run records without a direct
// `vqa` dependency.
pub use vqa::{BackendCaps, EvalResult};

// Re-exported so callers of [`Executor::observability`] can name snapshot/exporter
// types without a direct `qobs` dependency.
pub use qobs;

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
    use qop::PauliOp;
    use std::sync::Arc;
    use vqa::{Backend, InitialState, SampledBackend, StatevectorBackend, VqaRunConfig, VqaTask};

    fn demo_setup() -> (Arc<Circuit>, Vec<f64>, Arc<PauliOp>, Arc<PauliOp>) {
        let circuit = Arc::new(HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build());
        let params: Vec<f64> = (0..circuit.num_parameters())
            .map(|i| 0.1 * i as f64)
            .collect();
        let h1 = Arc::new(PauliOp::from_labels(3, &[("ZZI", -1.0), ("IXI", 0.3)]));
        let h2 = Arc::new(PauliOp::from_labels(3, &[("ZZI", -0.8), ("IIX", 0.2)]));
        (circuit, params, h1, h2)
    }

    #[test]
    fn submit_wait_matches_direct_backend_evaluation() {
        let (circuit, params, h1, h2) = demo_setup();
        let executor = Executor::single(StatevectorBackend::with_shots(1000));
        let client = executor.client();
        let handle = client
            .submit(
                EvalJob::new(
                    Arc::clone(&circuit),
                    params.clone(),
                    InitialState::Basis(0),
                    Arc::clone(&h1),
                )
                .with_free_ops(vec![Arc::clone(&h2)]),
            )
            .unwrap();
        let result = handle.wait().unwrap();

        let mut direct = StatevectorBackend::with_shots(1000);
        let (charged, free) = direct.evaluate(
            &circuit,
            &params,
            &InitialState::Basis(0),
            &h1,
            &[h2.as_ref()],
        );
        assert_eq!(result.charged.to_bits(), charged.to_bits());
        assert_eq!(result.free[0].to_bits(), free[0].to_bits());
        assert_eq!(result.shots, 1000 * h1.num_terms() as u64);
        assert_eq!(executor.shots_used(DEFAULT_BACKEND).unwrap(), result.shots);
        assert_eq!(handle.sequence(), Some(0));
    }

    #[test]
    fn validation_rejects_malformed_jobs_with_structured_errors() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::single(StatevectorBackend::new());
        let client = executor.client();

        let wrong_params = EvalJob::new(
            Arc::clone(&circuit),
            vec![0.0; 3],
            InitialState::Basis(0),
            Arc::clone(&h1),
        );
        assert_eq!(
            client.submit(wrong_params).unwrap_err(),
            ExecError::ParameterCountMismatch {
                expected: circuit.num_parameters(),
                got: 3
            }
        );

        let wrong_op = EvalJob::new(
            Arc::clone(&circuit),
            params.clone(),
            InitialState::Basis(0),
            Arc::new(PauliOp::from_labels(2, &[("ZZ", 1.0)])),
        );
        assert_eq!(
            client.submit(wrong_op).unwrap_err(),
            ExecError::QubitCountMismatch {
                circuit: 3,
                operator: 2
            }
        );

        let empty = EvalJob::new(
            Arc::new(Circuit::new(3)),
            vec![],
            InitialState::Basis(0),
            Arc::clone(&h1),
        );
        assert_eq!(client.submit(empty).unwrap_err(), ExecError::EmptyCircuit);

        let bad_basis = EvalJob::new(
            Arc::clone(&circuit),
            params.clone(),
            InitialState::Basis(8),
            Arc::clone(&h1),
        );
        assert_eq!(
            client.submit(bad_basis).unwrap_err(),
            ExecError::BasisStateOutOfRange {
                basis: 8,
                num_qubits: 3
            }
        );

        let unknown = client.submit_with(
            EvalJob::new(circuit, params, InitialState::Basis(0), h1),
            &SubmitOptions {
                backend: Some("nope".into()),
                ..SubmitOptions::default()
            },
        );
        assert_eq!(
            unknown.unwrap_err(),
            ExecError::UnknownBackend("nope".into())
        );
    }

    #[test]
    fn capability_negotiation_selects_and_rejects() {
        let executor = Executor::builder()
            .register("exact", StatevectorBackend::new())
            .register("sampled", SampledBackend::new(128, 7))
            .start();
        let shots_cap = BackendCaps {
            shots: true,
            ..BackendCaps::default()
        };
        assert_eq!(executor.find_backend(&shots_cap), Some("sampled".into()));
        assert!(executor.capabilities("exact").unwrap().batch);

        let (circuit, params, h1, _) = demo_setup();
        let client = executor.client();
        let err = client
            .submit_with(
                EvalJob::new(circuit, params, InitialState::Basis(0), h1),
                &SubmitOptions {
                    backend: Some("exact".into()),
                    require: shots_cap,
                    ..SubmitOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::MissingCapability {
                backend: "exact".into(),
                missing: "shots"
            }
        );
    }

    #[test]
    fn cancellation_only_succeeds_before_execution() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::builder()
            .register(DEFAULT_BACKEND, StatevectorBackend::new())
            .paused()
            .start();
        let client = executor.client();
        let job = EvalJob::new(circuit, params, InitialState::Basis(0), h1);
        let keep = client.submit(job.clone()).unwrap();
        let cancel = client.submit(job).unwrap();
        assert!(cancel.cancel(), "a queued job must be cancellable");
        assert_eq!(cancel.wait().unwrap_err(), ExecError::Cancelled);
        executor.resume();
        let result = keep.wait().unwrap();
        assert!(result.charged.is_finite());
        assert!(!keep.cancel(), "a completed job must not be cancellable");
        assert_eq!(keep.sequence(), Some(0), "cancelled jobs consume no slot");
        assert_eq!(cancel.sequence(), None);
    }

    #[test]
    fn priority_overrides_submission_order() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::builder()
            .register(DEFAULT_BACKEND, StatevectorBackend::new())
            .paused()
            .start();
        let client = executor.client();
        let job = EvalJob::new(circuit, params, InitialState::Basis(0), h1);
        let low = client.submit(job.clone()).unwrap();
        let high = client
            .submit_with(
                job,
                &SubmitOptions {
                    priority: 5,
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        executor.resume();
        let _ = (low.wait().unwrap(), high.wait().unwrap());
        assert_eq!(high.sequence(), Some(0));
        assert_eq!(low.sequence(), Some(1));
    }

    #[test]
    fn shutdown_fails_queued_jobs_instead_of_hanging() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::builder()
            .register(DEFAULT_BACKEND, StatevectorBackend::new())
            .paused()
            .start();
        let client = executor.client();
        let handle = client
            .submit(EvalJob::new(circuit, params, InitialState::Basis(0), h1))
            .unwrap();
        drop(executor);
        assert_eq!(handle.wait().unwrap_err(), ExecError::ShutDown);
    }

    #[test]
    fn reset_shots_clears_the_ledger_mirror() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::single(StatevectorBackend::with_shots(64));
        let client = executor.client();
        client
            .submit(EvalJob::new(circuit, params, InitialState::Basis(0), h1))
            .unwrap()
            .wait()
            .unwrap();
        assert!(executor.shots_used(DEFAULT_BACKEND).unwrap() > 0);
        executor.wait_idle();
        executor.reset_shots(DEFAULT_BACKEND).unwrap();
        assert_eq!(executor.shots_used(DEFAULT_BACKEND).unwrap(), 0);
    }

    #[test]
    fn runner_improves_energy_and_reports_shots() {
        let ham = qchem::transverse_field_ising(3, 1.0, 0.5);
        let task = VqaTask::with_computed_reference("TFIM h=0.5", 0.5, ham);
        let ansatz = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular).build();
        let executor = Executor::single(StatevectorBackend::with_shots(128));
        let client = executor.client();
        let zeros = vec![0.0; ansatz.num_parameters()];
        let config = VqaRunConfig {
            max_iterations: 150,
            optimizer: qopt::OptimizerSpec::Spsa(qopt::SpsaConfig {
                a: 0.25,
                ..Default::default()
            }),
            seed: 5,
            record_every: 1,
        };
        let result = run_single_vqa(
            &task,
            &ansatz,
            &InitialState::Basis(0),
            &zeros,
            &client,
            &config,
        )
        .unwrap();
        let initial_energy = result.history.first().unwrap().exact_energy;
        assert!(result.best_energy < initial_energy, "no improvement");
        assert!(result.shots_used > 0);
        assert_eq!(result.history.len(), 150);
        assert_eq!(
            executor.shots_used(DEFAULT_BACKEND).unwrap(),
            result.shots_used
        );
        let fid = task.fidelity(result.best_energy).unwrap();
        assert!(fid > 0.8, "fidelity {fid}");
    }

    #[test]
    fn record_every_thins_history() {
        let ham = qchem::transverse_field_ising(3, 1.0, 0.4);
        let task = VqaTask::with_computed_reference("TFIM h=0.4", 0.4, ham);
        let ansatz = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular).build();
        let executor = Executor::single(StatevectorBackend::with_shots(16));
        let client = executor.client();
        let zeros = vec![0.0; ansatz.num_parameters()];
        let config = VqaRunConfig {
            max_iterations: 50,
            optimizer: qopt::OptimizerSpec::Spsa(qopt::SpsaConfig {
                a: 0.25,
                ..Default::default()
            }),
            seed: 5,
            record_every: 10,
        };
        let result = run_single_vqa(
            &task,
            &ansatz,
            &InitialState::Basis(0),
            &zeros,
            &client,
            &config,
        )
        .unwrap();
        assert!(result.history.len() <= 7);
        assert!(result
            .history
            .windows(2)
            .all(|w| w[1].cumulative_shots >= w[0].cumulative_shots));
    }

    #[test]
    fn baseline_runs_every_task_and_sums_shots() {
        let tasks: Vec<VqaTask> = [0.4, 0.5]
            .iter()
            .map(|&h| {
                VqaTask::with_computed_reference(
                    format!("TFIM h={h}"),
                    h,
                    qchem::transverse_field_ising(3, 1.0, h),
                )
            })
            .collect();
        let ansatz = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular).build();
        let app = vqa::VqaApplication::new("tfim-demo", tasks, ansatz, InitialState::Basis(0));
        let zeros = vec![0.0; app.num_parameters()];
        let config = VqaRunConfig {
            max_iterations: 60,
            optimizer: qopt::OptimizerSpec::Spsa(qopt::SpsaConfig {
                a: 0.25,
                ..Default::default()
            }),
            seed: 5,
            record_every: 1,
        };
        let result = run_baseline(&app, &zeros, &config, &mut |i| {
            Box::new(StatevectorBackend::with_shots(64 + i as u64))
        })
        .unwrap();
        assert_eq!(result.per_task.len(), 2);
        let sum: u64 = result.per_task.iter().map(|r| r.shots_used).sum();
        assert_eq!(result.total_shots, sum);
        assert_eq!(result.best_energies().len(), 2);
        // Different tasks get decorrelated optimizer seeds (results differ).
        assert_ne!(
            result.per_task[0].final_params, result.per_task[1].final_params,
            "per-task runs should not be identical"
        );
    }

    #[test]
    fn nested_pauses_require_matching_resumes() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::single(StatevectorBackend::new());
        let client = executor.client();
        executor.pause();
        executor.pause();
        let handle = client
            .submit(EvalJob::new(circuit, params, InitialState::Basis(0), h1))
            .unwrap();
        executor.resume();
        // Still paused (depth 1): the job must not have run.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "one resume must not undo two pauses");
        executor.resume();
        assert!(handle.wait().unwrap().charged.is_finite());
    }

    #[test]
    fn client_slots_are_reclaimed_after_drop() {
        let (circuit, params, h1, _) = demo_setup();
        let executor = Executor::single(StatevectorBackend::new());
        for _ in 0..100 {
            let client = executor.client();
            client
                .submit(EvalJob::new(
                    Arc::clone(&circuit),
                    params.clone(),
                    InitialState::Basis(0),
                    Arc::clone(&h1),
                ))
                .unwrap()
                .wait()
                .unwrap();
        }
        // All 100 short-lived clients reused a handful of slots instead of growing the
        // executor's state per client ever created.
        executor.wait_idle();
        assert!(
            executor.client_slots() <= 4,
            "slots must be reused, got {}",
            executor.client_slots()
        );
        let probe = executor.client();
        let handle = probe
            .submit(EvalJob::new(circuit, params, InitialState::Basis(0), h1))
            .unwrap();
        assert!(handle.wait().unwrap().charged.is_finite());
    }

    #[test]
    fn runner_rejects_mismatched_initial_parameters() {
        let ham = qchem::transverse_field_ising(3, 1.0, 0.5);
        let task = VqaTask::new("t", 0.5, ham);
        let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let executor = Executor::single(StatevectorBackend::new());
        let client = executor.client();
        let err = run_single_vqa(
            &task,
            &ansatz,
            &InitialState::Basis(0),
            &[0.0; 3],
            &client,
            &VqaRunConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::ParameterCountMismatch { .. }));
    }
}
