//! Single-task VQA execution and the conventional (baseline) multi-task runner, driven
//! through an executor client.
//!
//! These are the paper's baseline drivers, reworked from threading a `&mut dyn Backend`
//! by hand onto the job API: every optimizer phase's candidates ([`qopt::Optimizer`]'s
//! propose/observe protocol) are submitted as owned jobs to an [`ExecClient`] and the
//! values observed from their handles, so the same loop transparently shares an executor
//! with other clients.  Every candidate job draws from its own stream pinned at
//! submission (see the crate-level schedule-independence contract), so a run is a pure
//! function of the configuration and root seed — reproducible bit-for-bit across fresh
//! executors, any worker count, and any co-tenant clients sharing the service.

use crate::error::ExecError;
use crate::executor::Executor;
use crate::job::{EvalJob, SubmitOptions};
use crate::submit::{CompletionHandle, JobSubmitter};
use qcircuit::Circuit;
use qop::PauliOp;
use std::sync::Arc;
use vqa::{
    Backend, BaselineRunResult, InitialState, IterationRecord, VqaApplication, VqaRunConfig,
    VqaRunResult, VqaTask,
};

/// Runs conventional VQA on a single task through an executor client.
///
/// `initial_params` seeds the ansatz parameters (e.g. zeros for Hartree–Fock, a CAFQA
/// point, or parameters inherited from a parent TreeVQA cluster).  Shots are accounted
/// from the per-job results, so several runners can share one executor without
/// conflating their budgets.
pub fn run_single_vqa<S: JobSubmitter>(
    task: &VqaTask,
    ansatz: &Circuit,
    initial: &InitialState,
    initial_params: &[f64],
    client: &S,
    config: &VqaRunConfig,
) -> Result<VqaRunResult, ExecError> {
    if initial_params.len() != ansatz.num_parameters() {
        return Err(ExecError::ParameterCountMismatch {
            expected: ansatz.num_parameters(),
            got: initial_params.len(),
        });
    }
    // One shared allocation for every job of the run (and pointer-equal circuits let the
    // batch engine's uniform-circuit check short-circuit).
    let ansatz = Arc::new(ansatz.clone());
    let hamiltonian = Arc::new(task.hamiltonian.clone());
    let mut optimizer = config.optimizer.build(config.seed);
    let mut params = initial_params.to_vec();
    let mut cumulative_shots = 0u64;
    let mut history = Vec::new();
    let mut best_energy = f64::INFINITY;
    let record_every = config.record_every.max(1);

    let probe = |client: &S, params: &[f64]| -> Result<f64, ExecError> {
        let job = EvalJob::new(
            Arc::clone(&ansatz),
            params.to_vec(),
            *initial,
            Arc::clone(&hamiltonian),
        );
        Ok(client
            .submit_probe_job(job, &SubmitOptions::default())?
            .wait()?
            .charged)
    };

    for iteration in 0..config.max_iterations {
        // Drive the optimizer's propose/observe phases, submitting each phase's
        // candidates (SPSA's ± pair, a simplex build, …) as one run of jobs; the
        // executor batches consecutive same-backend jobs, so the dense drivers prepare
        // the phase's states concurrently exactly as the historical batched runner did.
        let (stats, shots) = drive_optimizer_iteration(
            client,
            optimizer.as_mut(),
            &mut params,
            &ansatz,
            initial,
            &hamiltonian,
            &[],
        )?;
        cumulative_shots += shots;

        if iteration % record_every == 0 || iteration + 1 == config.max_iterations {
            let exact_energy = probe(client, &params)?;
            best_energy = best_energy.min(exact_energy);
            history.push(IterationRecord {
                iteration,
                cumulative_shots,
                loss: stats.loss,
                exact_energy,
                best_energy,
            });
        }
    }

    let final_energy = probe(client, &params)?;
    best_energy = best_energy.min(final_energy);
    Ok(VqaRunResult {
        task_label: task.label.clone(),
        final_params: params,
        final_energy,
        best_energy,
        shots_used: cumulative_shots,
        history,
    })
}

/// Runs the conventional baseline: every task is optimized independently with an equal
/// iteration (and therefore shot) allocation.
///
/// `make_backend` is called once per task so that shot usage can be attributed per task;
/// each task's backend is wrapped in its own single-backend [`Executor`] (typically it
/// returns a freshly seeded backend of the same kind).  Those internal executors build
/// with default observability settings, so setting `QOBS=1` process-wide traces the
/// baseline's jobs too — each task's spans just live in its own short-lived registry.
pub fn run_baseline(
    application: &VqaApplication,
    initial_params: &[f64],
    config: &VqaRunConfig,
    make_backend: &mut dyn FnMut(usize) -> Box<dyn Backend + Send>,
) -> Result<BaselineRunResult, ExecError> {
    let mut per_task = Vec::with_capacity(application.tasks.len());
    let mut total_shots = 0u64;
    for (index, task) in application.tasks.iter().enumerate() {
        let executor = Executor::single_boxed(make_backend(index));
        let client = executor.client();
        let mut task_config = config.clone();
        // Decorrelate optimizer randomness across tasks while staying deterministic.
        task_config.seed = config.seed.wrapping_add(index as u64).wrapping_mul(0x9E37);
        let result = run_single_vqa(
            task,
            &application.ansatz,
            &application.initial_state,
            initial_params,
            &client,
            &task_config,
        )?;
        total_shots += result.shots_used;
        per_task.push(result);
    }
    Ok(BaselineRunResult {
        per_task,
        total_shots,
    })
}

/// Drives one optimizer iteration against an executor client: proposes candidate
/// batches, submits them as jobs for `charged_op` (with optional free tracking
/// observables shared by every candidate), and observes the values, looping phases until
/// the iteration completes.
///
/// This is the propose/observe ↔ job-submission bridge shared by [`run_single_vqa`] and
/// ad-hoc optimization loops; the TreeVQA controller uses the same protocol but spreads
/// its clusters' phases across clients to interleave them fairly.
pub fn drive_optimizer_iteration<S: JobSubmitter>(
    client: &S,
    optimizer: &mut dyn qopt::Optimizer,
    params: &mut Vec<f64>,
    ansatz: &Arc<Circuit>,
    initial: &InitialState,
    charged_op: &Arc<PauliOp>,
    free_ops: &[Arc<PauliOp>],
) -> Result<(qopt::IterationStats, u64), ExecError> {
    drive_optimizer_iteration_with(
        client, optimizer, params, ansatz, initial, charged_op, free_ops, None,
    )
}

/// [`drive_optimizer_iteration`] with a per-phase timeout: every job of a phase
/// carries a deadline `phase_timeout` from its submission, so a phase queued behind a
/// congested (or stalled) executor fails with [`ExecError::DeadlineExceeded`] instead
/// of wedging the optimization loop.  `None` submits without deadlines.
#[allow(clippy::too_many_arguments)]
pub fn drive_optimizer_iteration_with<S: JobSubmitter>(
    client: &S,
    optimizer: &mut dyn qopt::Optimizer,
    params: &mut Vec<f64>,
    ansatz: &Arc<Circuit>,
    initial: &InitialState,
    charged_op: &Arc<PauliOp>,
    free_ops: &[Arc<PauliOp>],
    phase_timeout: Option<std::time::Duration>,
) -> Result<(qopt::IterationStats, u64), ExecError> {
    let mut shots = 0u64;
    loop {
        let candidates = optimizer.propose(params);
        let deadline = phase_timeout.map(|t| std::time::Instant::now() + t);
        let jobs: Vec<EvalJob> = candidates
            .iter()
            .map(|candidate| {
                let mut job = EvalJob::new(
                    Arc::clone(ansatz),
                    candidate.clone(),
                    *initial,
                    Arc::clone(charged_op),
                )
                .with_free_ops(free_ops.to_vec());
                if let Some(d) = deadline {
                    job = job.with_deadline(d);
                }
                job
            })
            .collect();
        let handles = client.submit_job_group(jobs)?;
        let mut values = Vec::with_capacity(handles.len());
        for handle in &handles {
            let result = handle.wait()?;
            shots += result.shots;
            values.push(result.charged);
        }
        if let Some(stats) = optimizer.observe(params, &values) {
            return Ok((stats, shots));
        }
    }
}
