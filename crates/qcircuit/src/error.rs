//! Structured errors for user-supplied circuit shapes.
//!
//! Construction-time shape problems (a gate touching a qubit outside the register, two
//! circuits of different register sizes being combined, a zero-qubit ansatz request) are
//! *user input* errors, not internal invariant violations, so the fallible constructor
//! variants ([`crate::Circuit::try_push`], [`crate::Circuit::try_extend`],
//! [`crate::HardwareEfficientAnsatz::try_new`]) report them as [`CircuitError`] values
//! instead of panicking.  The panicking variants survive as thin wrappers for internal
//! callers whose shapes are correct by construction; the execution-service boundary
//! (`qexec`) converts these errors into its own structured job errors.

use std::fmt;

/// A user-supplied circuit shape does not fit together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references a qubit at or beyond the register size.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's register size.
        num_qubits: usize,
    },
    /// Two circuits with different register sizes were combined.
    RegisterMismatch {
        /// Register size of the receiving circuit.
        expected: usize,
        /// Register size of the circuit being appended.
        got: usize,
    },
    /// A builder was asked for a zero-qubit register.
    EmptyRegister,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "gate touches qubit {qubit} but the circuit has {num_qubits} qubits"
            ),
            CircuitError::RegisterMismatch { expected, got } => write!(
                f,
                "register size mismatch: cannot combine a {expected}-qubit circuit with a \
                 {got}-qubit circuit"
            ),
            CircuitError::EmptyRegister => write!(f, "a circuit needs at least one qubit"),
        }
    }
}

impl std::error::Error for CircuitError {}
