//! # qcircuit — parameterized-circuit IR and ansatz builders
//!
//! This crate provides the circuit representation consumed by the simulators in `qsim`
//! and the ansatz families used throughout the paper's evaluation:
//!
//! * [`HardwareEfficientAnsatz`] — EfficientSU2-style rotation + circular-CX layers
//!   (the default VQE ansatz; 2 layers noiseless, 5 layers in the noisy study).
//! * [`UccsdAnsatz`] — Trotterized UCCSD for the H₂ benchmark.
//! * [`QaoaAnsatz`] — standard QAOA and multi-angle QAOA (ma-QAOA) for MaxCut.
//!
//! Circuits are plain data ([`Circuit`] holds a gate list); parameter values are bound at
//! execution time, so one circuit object can be evaluated at many parameter vectors
//! without rebuilding.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ansatz;
mod circuit;
mod error;
mod gate;
mod qaoa;
mod uccsd;

pub use ansatz::{Entanglement, HardwareEfficientAnsatz};
pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::{Angle, Gate};
pub use qaoa::{NonDiagonalCostError, QaoaAnsatz, QaoaStyle};
pub use uccsd::UccsdAnsatz;
