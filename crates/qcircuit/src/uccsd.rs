//! UCCSD-style ansatz (unitary coupled cluster with singles and doubles).
//!
//! The paper uses a UCCSD ansatz only for the small H₂ benchmark ("H₂ □ UCCSD").  This
//! module implements the standard first-order Trotterized UCCSD circuit under the
//! Jordan–Wigner mapping: every single excitation contributes two Pauli rotations sharing
//! one parameter, every double excitation contributes eight.  The decomposition follows
//! Romero et al. (2018); a global sign convention difference only re-labels the optimizer
//! parameter sign and does not change the variational family.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate};
use qop::{Pauli, PauliString};
use serde::{Deserialize, Serialize};

/// UCCSD ansatz specification for `num_spin_orbitals` qubits (Jordan–Wigner: one qubit per
/// spin orbital) and `num_electrons` electrons occupying the lowest orbitals in the
/// Hartree–Fock reference.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UccsdAnsatz {
    num_spin_orbitals: usize,
    num_electrons: usize,
}

impl UccsdAnsatz {
    /// Creates a UCCSD specification.
    ///
    /// # Panics
    ///
    /// Panics if `num_electrons >= num_spin_orbitals` or either is zero.
    pub fn new(num_spin_orbitals: usize, num_electrons: usize) -> Self {
        assert!(num_spin_orbitals > 0 && num_electrons > 0);
        assert!(
            num_electrons < num_spin_orbitals,
            "need at least one virtual orbital"
        );
        UccsdAnsatz {
            num_spin_orbitals,
            num_electrons,
        }
    }

    /// The occupied spin-orbital indices of the Hartree–Fock reference (`0..num_electrons`).
    pub fn occupied(&self) -> Vec<usize> {
        (0..self.num_electrons).collect()
    }

    /// The virtual spin-orbital indices (`num_electrons..num_spin_orbitals`).
    pub fn virtuals(&self) -> Vec<usize> {
        (self.num_electrons..self.num_spin_orbitals).collect()
    }

    /// All single excitations `(i → a)` with `i` occupied and `a` virtual.
    pub fn single_excitations(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for &i in &self.occupied() {
            for &a in &self.virtuals() {
                v.push((i, a));
            }
        }
        v
    }

    /// All double excitations `(i, j → a, b)` with `i < j` occupied and `a < b` virtual.
    pub fn double_excitations(&self) -> Vec<(usize, usize, usize, usize)> {
        let occ = self.occupied();
        let vir = self.virtuals();
        let mut v = Vec::new();
        for (pi, &i) in occ.iter().enumerate() {
            for &j in &occ[pi + 1..] {
                for (pa, &a) in vir.iter().enumerate() {
                    for &b in &vir[pa + 1..] {
                        v.push((i, j, a, b));
                    }
                }
            }
        }
        v
    }

    /// Number of optimizer parameters (one per excitation).
    pub fn num_parameters(&self) -> usize {
        self.single_excitations().len() + self.double_excitations().len()
    }

    /// The Hartree–Fock reference bitstring (`1` on occupied orbitals) as a basis index.
    pub fn hartree_fock_state(&self) -> u64 {
        (0..self.num_electrons).fold(0u64, |acc, q| acc | (1u64 << q))
    }

    /// Builds the Trotterized UCCSD circuit, including the X gates that prepare the
    /// Hartree–Fock reference from `|0…0⟩`.
    pub fn build(&self) -> Circuit {
        let n = self.num_spin_orbitals;
        let mut circuit = Circuit::new(n);
        // Hartree–Fock preparation.
        for q in 0..self.num_electrons {
            circuit.push(Gate::X(q));
        }

        let mut param = 0usize;
        // Single excitations: exp(θ (a†_a a_i − h.c.)) = exp(-i θ/2 (X_i Z… Y_a − Y_i Z… X_a)).
        for (i, a) in self.single_excitations() {
            let s1 = jw_string(n, &[(i, Pauli::X), (a, Pauli::Y)], i, a);
            let s2 = jw_string(n, &[(i, Pauli::Y), (a, Pauli::X)], i, a);
            circuit.push(Gate::PauliRotation(
                s1,
                Angle::Param {
                    index: param,
                    multiplier: 1.0,
                },
            ));
            circuit.push(Gate::PauliRotation(
                s2,
                Angle::Param {
                    index: param,
                    multiplier: -1.0,
                },
            ));
            param += 1;
        }

        // Double excitations: eight Pauli rotations with coefficients ±1/4 sharing one θ.
        for (i, j, a, b) in self.double_excitations() {
            let plus: [[Pauli; 4]; 4] = [
                [Pauli::X, Pauli::X, Pauli::Y, Pauli::X],
                [Pauli::Y, Pauli::X, Pauli::Y, Pauli::Y],
                [Pauli::X, Pauli::Y, Pauli::Y, Pauli::Y],
                [Pauli::X, Pauli::X, Pauli::X, Pauli::Y],
            ];
            let minus: [[Pauli; 4]; 4] = [
                [Pauli::Y, Pauli::X, Pauli::X, Pauli::X],
                [Pauli::X, Pauli::Y, Pauli::X, Pauli::X],
                [Pauli::Y, Pauli::Y, Pauli::Y, Pauli::X],
                [Pauli::Y, Pauli::Y, Pauli::X, Pauli::Y],
            ];
            for paulis in plus {
                let s = jw_double_string(n, i, j, a, b, paulis);
                circuit.push(Gate::PauliRotation(
                    s,
                    Angle::Param {
                        index: param,
                        multiplier: 0.25,
                    },
                ));
            }
            for paulis in minus {
                let s = jw_double_string(n, i, j, a, b, paulis);
                circuit.push(Gate::PauliRotation(
                    s,
                    Angle::Param {
                        index: param,
                        multiplier: -0.25,
                    },
                ));
            }
            param += 1;
        }
        circuit
    }

    /// All-zeros initial parameters (the circuit then prepares exactly the Hartree–Fock
    /// state).
    pub fn zero_parameters(&self) -> Vec<f64> {
        vec![0.0; self.num_parameters()]
    }
}

/// Builds a Pauli string with the given endpoint Paulis and a Jordan–Wigner Z chain on all
/// qubits strictly between `lo` and `hi`.
fn jw_string(n: usize, endpoints: &[(usize, Pauli)], lo: usize, hi: usize) -> PauliString {
    let mut s = PauliString::identity(n);
    for q in (lo + 1)..hi {
        s.set_pauli(q, Pauli::Z);
    }
    for &(q, p) in endpoints {
        s.set_pauli(q, p);
    }
    s
}

/// Builds the Jordan–Wigner string for a double excitation `(i, j → a, b)`: the four
/// listed Paulis on `i, j, a, b` plus Z chains on `(i, j)` and `(a, b)` gaps.
fn jw_double_string(
    n: usize,
    i: usize,
    j: usize,
    a: usize,
    b: usize,
    paulis: [Pauli; 4],
) -> PauliString {
    let mut s = PauliString::identity(n);
    for q in (i + 1)..j {
        s.set_pauli(q, Pauli::Z);
    }
    for q in (a + 1)..b {
        s.set_pauli(q, Pauli::Z);
    }
    s.set_pauli(i, paulis[0]);
    s.set_pauli(j, paulis[1]);
    s.set_pauli(a, paulis[2]);
    s.set_pauli(b, paulis[3]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_sized_ansatz_has_three_excitations() {
        // 4 spin orbitals, 2 electrons: 2·2/... singles = 2 occ × 2 vir = 4, doubles = 1.
        let a = UccsdAnsatz::new(4, 2);
        assert_eq!(a.single_excitations().len(), 4);
        assert_eq!(a.double_excitations(), vec![(0, 1, 2, 3)]);
        assert_eq!(a.num_parameters(), 5);
        assert_eq!(a.hartree_fock_state(), 0b0011);
    }

    #[test]
    fn built_circuit_parameter_count_matches() {
        let a = UccsdAnsatz::new(6, 2);
        let c = a.build();
        assert_eq!(c.num_parameters(), a.num_parameters());
        // Hartree–Fock prep: one X per electron.
        let x_count = c.gates().iter().filter(|g| matches!(g, Gate::X(_))).count();
        assert_eq!(x_count, 2);
    }

    #[test]
    fn every_rotation_string_has_odd_y_count() {
        // Odd Y parity makes each string imaginary under JW, i.e. the exponent is
        // anti-Hermitian and the rotation is a valid real-parameter unitary.
        let a = UccsdAnsatz::new(4, 2);
        for g in a.build().gates() {
            if let Gate::PauliRotation(s, _) = g {
                let y_count = s
                    .iter_non_identity()
                    .filter(|(_, p)| *p == Pauli::Y)
                    .count();
                assert_eq!(y_count % 2, 1, "string {s} has even Y count");
            }
        }
    }

    #[test]
    fn jw_chain_covers_gap() {
        let s = jw_string(6, &[(1, Pauli::X), (4, Pauli::Y)], 1, 4);
        assert_eq!(s.label(), "IXZZYI");
    }

    #[test]
    #[should_panic]
    fn no_virtual_orbitals_panics() {
        let _ = UccsdAnsatz::new(2, 2);
    }
}
