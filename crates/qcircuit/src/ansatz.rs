//! Hardware-Efficient Ansatz (HEA), the default ansatz for every VQE experiment in the
//! paper ("EfficientSU2 with two layers of circular entanglement", five layers in the
//! noisy study).

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::{Angle, Gate};
use serde::{Deserialize, Serialize};

/// Entanglement pattern for the hardware-efficient ansatz.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Entanglement {
    /// CX between neighbouring qubits `(0,1), (1,2), …, (n-2,n-1)`.
    Linear,
    /// Linear plus the wrap-around `(n-1, 0)` — the paper's configuration.
    Circular,
    /// CX between every pair of qubits (expensive; small systems only).
    Full,
}

/// The hardware-efficient ansatz: alternating rotation layers (RY then RZ on every qubit)
/// and CX entanglement layers, finishing with a final rotation layer.
///
/// With `reps` repetitions the circuit has `(reps + 1) · 2 · n` parameters, matching
/// Qiskit's `EfficientSU2` parameter count.
///
/// # Examples
///
/// ```
/// use qcircuit::{Entanglement, HardwareEfficientAnsatz};
///
/// let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular);
/// let circuit = ansatz.build();
/// assert_eq!(circuit.num_parameters(), (2 + 1) * 2 * 4);
/// assert_eq!(ansatz.num_parameters(), circuit.num_parameters());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HardwareEfficientAnsatz {
    num_qubits: usize,
    reps: usize,
    entanglement: Entanglement,
}

impl HardwareEfficientAnsatz {
    /// Creates a HEA specification, validating the register size.
    pub fn try_new(
        num_qubits: usize,
        reps: usize,
        entanglement: Entanglement,
    ) -> Result<Self, CircuitError> {
        if num_qubits == 0 {
            return Err(CircuitError::EmptyRegister);
        }
        Ok(HardwareEfficientAnsatz {
            num_qubits,
            reps,
            entanglement,
        })
    }

    /// Creates a HEA specification.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`; use [`HardwareEfficientAnsatz::try_new`] to handle
    /// that as a [`CircuitError`] instead.
    pub fn new(num_qubits: usize, reps: usize, entanglement: Entanglement) -> Self {
        match Self::try_new(num_qubits, reps, entanglement) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of repetitions (entanglement layers).
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// The number of optimizer parameters the built circuit will expose.
    pub fn num_parameters(&self) -> usize {
        (self.reps + 1) * 2 * self.num_qubits
    }

    /// Builds the parameterized circuit.
    pub fn build(&self) -> Circuit {
        let n = self.num_qubits;
        let mut circuit = Circuit::new(n);
        let mut param = 0usize;

        let rotation_layer = |circuit: &mut Circuit, param: &mut usize| {
            for q in 0..n {
                circuit.push(Gate::Ry(q, Angle::param(*param)));
                *param += 1;
            }
            for q in 0..n {
                circuit.push(Gate::Rz(q, Angle::param(*param)));
                *param += 1;
            }
        };

        rotation_layer(&mut circuit, &mut param);
        for _ in 0..self.reps {
            self.entanglement_layer(&mut circuit);
            rotation_layer(&mut circuit, &mut param);
        }
        circuit
    }

    fn entanglement_layer(&self, circuit: &mut Circuit) {
        let n = self.num_qubits;
        if n < 2 {
            return;
        }
        match self.entanglement {
            Entanglement::Linear => {
                for q in 0..n - 1 {
                    circuit.push(Gate::Cx(q, q + 1));
                }
            }
            Entanglement::Circular => {
                for q in 0..n - 1 {
                    circuit.push(Gate::Cx(q, q + 1));
                }
                if n > 2 {
                    circuit.push(Gate::Cx(n - 1, 0));
                }
            }
            Entanglement::Full => {
                for a in 0..n {
                    for b in a + 1..n {
                        circuit.push(Gate::Cx(a, b));
                    }
                }
            }
        }
    }

    /// A reasonable all-zeros initial parameter vector (the HEA then prepares whatever
    /// reference state the circuit is applied to, e.g. Hartree–Fock).
    pub fn zero_parameters(&self) -> Vec<f64> {
        vec![0.0; self.num_parameters()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_efficient_su2() {
        for (n, reps) in [(2, 1), (4, 2), (6, 3), (8, 5)] {
            let a = HardwareEfficientAnsatz::new(n, reps, Entanglement::Circular);
            assert_eq!(a.num_parameters(), (reps + 1) * 2 * n);
            assert_eq!(a.build().num_parameters(), a.num_parameters());
        }
    }

    #[test]
    fn circular_entanglement_counts() {
        let a = HardwareEfficientAnsatz::new(5, 2, Entanglement::Circular);
        let c = a.build();
        // 2 entanglement layers of 5 CX each (4 linear + 1 wrap).
        assert_eq!(c.num_entangling_gates(), 10);
    }

    #[test]
    fn linear_and_full_entanglement_counts() {
        let lin = HardwareEfficientAnsatz::new(4, 1, Entanglement::Linear).build();
        assert_eq!(lin.num_entangling_gates(), 3);
        let full = HardwareEfficientAnsatz::new(4, 1, Entanglement::Full).build();
        assert_eq!(full.num_entangling_gates(), 6);
    }

    #[test]
    fn two_qubit_circular_has_single_cx_per_layer() {
        // Wrap-around would duplicate the only pair on 2 qubits; we omit it.
        let a = HardwareEfficientAnsatz::new(2, 3, Entanglement::Circular);
        assert_eq!(a.build().num_entangling_gates(), 3);
    }

    #[test]
    fn zero_parameters_have_correct_length() {
        let a = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular);
        assert_eq!(a.zero_parameters().len(), a.num_parameters());
    }

    #[test]
    fn deeper_ansatz_is_deeper_circuit() {
        let shallow = HardwareEfficientAnsatz::new(4, 1, Entanglement::Circular).build();
        let deep = HardwareEfficientAnsatz::new(4, 5, Entanglement::Circular).build();
        assert!(deep.depth() > shallow.depth());
    }
}
