//! QAOA and multi-angle QAOA (ma-QAOA) ansatz builders.
//!
//! The cost Hamiltonian must be diagonal in the computational basis (Z/I Pauli factors
//! only), which is the case for every QUBO/MaxCut Hamiltonian.  Standard QAOA uses `2p`
//! parameters (`γ_ℓ, β_ℓ` per layer); ma-QAOA — the variant the paper adopts for finer
//! split control (Section 6) — assigns an individual angle to every cost term and every
//! mixer qubit, i.e. `(m + n)·p` parameters.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate};
use qop::{Pauli, PauliOp};
use serde::{Deserialize, Serialize};

/// Which parameterization the QAOA circuit uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QaoaStyle {
    /// Standard QAOA: one `γ` and one `β` per layer (`2p` parameters).
    Standard,
    /// Multi-angle QAOA: one angle per cost term and per mixer qubit per layer
    /// (`(m + n)·p` parameters).
    MultiAngle,
}

/// QAOA ansatz specification built from a diagonal cost Hamiltonian.
///
/// # Examples
///
/// ```
/// use qcircuit::{QaoaAnsatz, QaoaStyle};
/// use qop::PauliOp;
///
/// let cost = PauliOp::from_labels(3, &[("ZZI", 0.5), ("IZZ", 0.5), ("ZIZ", 0.5)]);
/// let qaoa = QaoaAnsatz::new(&cost, 2, QaoaStyle::Standard).unwrap();
/// assert_eq!(qaoa.num_parameters(), 4);
/// let ma = QaoaAnsatz::new(&cost, 2, QaoaStyle::MultiAngle).unwrap();
/// assert_eq!(ma.num_parameters(), (3 + 3) * 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QaoaAnsatz {
    cost: PauliOp,
    layers: usize,
    style: QaoaStyle,
    /// Indices (into `cost.terms()`) of the non-identity cost terms used in phasing layers.
    phasing_terms: Vec<usize>,
}

/// Error returned when a cost Hamiltonian is not diagonal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonDiagonalCostError {
    /// Label of the offending term.
    pub term: String,
}

impl std::fmt::Display for NonDiagonalCostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cost Hamiltonian term {} contains X or Y factors; QAOA requires a diagonal cost operator",
            self.term
        )
    }
}

impl std::error::Error for NonDiagonalCostError {}

impl QaoaAnsatz {
    /// Creates a QAOA ansatz for `layers` repetitions of (phasing, mixing).
    ///
    /// # Errors
    ///
    /// Returns [`NonDiagonalCostError`] if any cost term contains X or Y factors.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(
        cost: &PauliOp,
        layers: usize,
        style: QaoaStyle,
    ) -> Result<Self, NonDiagonalCostError> {
        assert!(layers > 0, "QAOA needs at least one layer");
        let mut phasing_terms = Vec::new();
        for (idx, term) in cost.terms().iter().enumerate() {
            let diagonal = (0..term.string.num_qubits())
                .all(|q| matches!(term.string.pauli_at(q), Pauli::I | Pauli::Z));
            if !diagonal {
                return Err(NonDiagonalCostError {
                    term: term.string.label(),
                });
            }
            if !term.string.is_identity() {
                phasing_terms.push(idx);
            }
        }
        Ok(QaoaAnsatz {
            cost: cost.clone(),
            layers,
            style,
            phasing_terms,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.cost.num_qubits()
    }

    /// Number of QAOA layers `p`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The parameterization style.
    pub fn style(&self) -> QaoaStyle {
        self.style
    }

    /// Number of non-identity cost terms (the `m` in `(m + n)·p`).
    pub fn num_cost_terms(&self) -> usize {
        self.phasing_terms.len()
    }

    /// Number of optimizer parameters.
    pub fn num_parameters(&self) -> usize {
        match self.style {
            QaoaStyle::Standard => 2 * self.layers,
            QaoaStyle::MultiAngle => (self.num_cost_terms() + self.num_qubits()) * self.layers,
        }
    }

    /// Builds the circuit, including the initial `H^{⊗n}` layer that prepares `|+…+⟩`.
    pub fn build(&self) -> Circuit {
        let n = self.num_qubits();
        let m = self.num_cost_terms();
        let mut circuit = Circuit::new(n);
        for q in 0..n {
            circuit.push(Gate::H(q));
        }
        for layer in 0..self.layers {
            // Phasing layer: exp(-i γ c_k Z…Z) per term == PauliRotation with angle 2 γ c_k.
            for (k, &term_idx) in self.phasing_terms.iter().enumerate() {
                let term = &self.cost.terms()[term_idx];
                let angle = match self.style {
                    QaoaStyle::Standard => Angle::Param {
                        index: 2 * layer,
                        multiplier: 2.0 * term.coefficient,
                    },
                    QaoaStyle::MultiAngle => Angle::Param {
                        index: layer * (m + n) + k,
                        multiplier: 2.0 * term.coefficient,
                    },
                };
                circuit.push(Gate::PauliRotation(term.string, angle));
            }
            // Mixing layer: exp(-i β X_q) == RX(2β).
            for q in 0..n {
                let angle = match self.style {
                    QaoaStyle::Standard => Angle::Param {
                        index: 2 * layer + 1,
                        multiplier: 2.0,
                    },
                    QaoaStyle::MultiAngle => Angle::Param {
                        index: layer * (m + n) + m + q,
                        multiplier: 2.0,
                    },
                };
                circuit.push(Gate::Rx(q, angle));
            }
        }
        circuit
    }

    /// The conventional linear-ramp initial parameters (γ ramps up, β ramps down), a
    /// standard warm start that works reasonably across MaxCut instances.
    pub fn ramp_parameters(&self) -> Vec<f64> {
        let p = self.layers;
        match self.style {
            QaoaStyle::Standard => {
                let mut v = Vec::with_capacity(2 * p);
                for l in 0..p {
                    let frac = (l as f64 + 0.5) / p as f64;
                    v.push(0.4 * frac); // gamma
                    v.push(0.4 * (1.0 - frac)); // beta
                }
                v
            }
            QaoaStyle::MultiAngle => {
                let m = self.num_cost_terms();
                let n = self.num_qubits();
                let mut v = Vec::with_capacity((m + n) * p);
                for l in 0..p {
                    let frac = (l as f64 + 0.5) / p as f64;
                    v.extend(std::iter::repeat(0.4 * frac).take(m));
                    v.extend(std::iter::repeat(0.4 * (1.0 - frac)).take(n));
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_cost() -> PauliOp {
        PauliOp::from_labels(
            3,
            &[("ZZI", 0.5), ("IZZ", 0.5), ("ZIZ", 0.5), ("III", -1.5)],
        )
    }

    #[test]
    fn standard_parameter_count() {
        let q = QaoaAnsatz::new(&triangle_cost(), 3, QaoaStyle::Standard).unwrap();
        assert_eq!(q.num_parameters(), 6);
        assert_eq!(q.build().num_parameters(), 6);
    }

    #[test]
    fn multi_angle_parameter_count_is_m_plus_n_times_p() {
        let q = QaoaAnsatz::new(&triangle_cost(), 2, QaoaStyle::MultiAngle).unwrap();
        assert_eq!(q.num_cost_terms(), 3);
        assert_eq!(q.num_parameters(), (3 + 3) * 2);
        assert_eq!(q.build().num_parameters(), (3 + 3) * 2);
    }

    #[test]
    fn identity_terms_are_skipped_in_phasing() {
        let q = QaoaAnsatz::new(&triangle_cost(), 1, QaoaStyle::Standard).unwrap();
        let c = q.build();
        let rotations = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::PauliRotation(..)))
            .count();
        assert_eq!(rotations, 3);
    }

    #[test]
    fn non_diagonal_cost_is_rejected() {
        let bad = PauliOp::from_labels(2, &[("XZ", 1.0)]);
        assert!(QaoaAnsatz::new(&bad, 1, QaoaStyle::Standard).is_err());
    }

    #[test]
    fn ramp_parameters_have_correct_length() {
        let std = QaoaAnsatz::new(&triangle_cost(), 4, QaoaStyle::Standard).unwrap();
        assert_eq!(std.ramp_parameters().len(), std.num_parameters());
        let ma = QaoaAnsatz::new(&triangle_cost(), 4, QaoaStyle::MultiAngle).unwrap();
        assert_eq!(ma.ramp_parameters().len(), ma.num_parameters());
    }

    #[test]
    fn initial_layer_is_hadamards() {
        let q = QaoaAnsatz::new(&triangle_cost(), 1, QaoaStyle::Standard).unwrap();
        let c = q.build();
        for (i, g) in c.gates().iter().take(3).enumerate() {
            assert_eq!(*g, Gate::H(i));
        }
    }
}
