//! Parameterized-circuit container.

use crate::error::CircuitError;
use crate::gate::{Angle, Gate};
use serde::{Deserialize, Serialize};

/// A parameterized quantum circuit: an ordered list of gates on a fixed-size register.
///
/// The circuit does not own parameter *values*; it only records which gates reference
/// which parameter indices.  Values are bound at execution time by the simulator.
///
/// # Examples
///
/// ```
/// use qcircuit::{Angle, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// c.push(Gate::Rz(1, Angle::param(0)));
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.num_parameters(), 1);
/// assert_eq!(c.num_entangling_gates(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The ordered gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Appends a gate, validating that it fits the register.
    ///
    /// This is the fallible form for user-supplied gates; builders whose indices are
    /// correct by construction use [`Circuit::push`].
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        for q in gate.qubits() {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register; use
    /// [`Circuit::try_push`] to handle that as a [`CircuitError`] instead.
    pub fn push(&mut self, gate: Gate) {
        if let Err(e) = self.try_push(gate) {
            panic!("{e}");
        }
    }

    /// Appends every gate of another circuit, validating the register sizes match.
    pub fn try_extend(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if self.num_qubits != other.num_qubits {
            return Err(CircuitError::RegisterMismatch {
                expected: self.num_qubits,
                got: other.num_qubits,
            });
        }
        self.gates.extend_from_slice(&other.gates);
        Ok(())
    }

    /// Appends every gate of another circuit (must have the same register size).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ; use [`Circuit::try_extend`] to handle that
    /// as a [`CircuitError`] instead.
    pub fn extend(&mut self, other: &Circuit) {
        if let Err(e) = self.try_extend(other) {
            panic!("{e}");
        }
    }

    /// The number of distinct optimizer parameters referenced by the circuit
    /// (`1 + max index`, or 0 if no gate is parameterized).
    pub fn num_parameters(&self) -> usize {
        self.gates
            .iter()
            .filter_map(|g| g.angle().and_then(Angle::param_index))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// The number of entangling (two-or-more-qubit) gates.
    pub fn num_entangling_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_entangling()).count()
    }

    /// The number of parameterized gates (several gates may share one parameter).
    pub fn num_parameterized_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_parameterized()).count()
    }

    /// The circuit implementing the inverse unitary: every gate inverted, in reverse
    /// order.  Parameter references are preserved (multipliers negate), so the inverse of
    /// a parameterized ansatz is itself a parameterized circuit over the same slots.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// A simple circuit-depth estimate: the length of the longest chain of gates that
    /// share qubits (greedy per-qubit layering, the usual ASAP depth).
    pub fn depth(&self) -> usize {
        let mut qubit_depth = vec![0usize; self.num_qubits];
        let mut max_depth = 0;
        for g in &self.gates {
            let qubits = g.qubits();
            if qubits.is_empty() {
                continue;
            }
            let layer = qubits.iter().map(|&q| qubit_depth[q]).max().unwrap() + 1;
            for &q in &qubits {
                qubit_depth[q] = layer;
            }
            max_depth = max_depth.max(layer);
        }
        max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qop::PauliString;

    #[test]
    fn parameter_counting_uses_max_index() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, Angle::param(4)));
        c.push(Gate::Ry(1, Angle::param(2)));
        assert_eq!(c.num_parameters(), 5);
        assert_eq!(c.num_parameterized_gates(), 2);
    }

    #[test]
    fn empty_circuit_has_zero_parameters_and_depth() {
        let c = Circuit::new(4);
        assert_eq!(c.num_parameters(), 0);
        assert_eq!(c.depth(), 0);
        assert_eq!(c.num_gates(), 0);
    }

    #[test]
    fn depth_accounts_for_qubit_sharing() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)); // layer 1
        c.push(Gate::H(1)); // layer 1
        c.push(Gate::Cx(0, 1)); // layer 2
        c.push(Gate::H(0)); // layer 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push(Gate::H(0));
        let mut b = Circuit::new(2);
        b.push(Gate::Cx(0, 1));
        a.extend(&b);
        assert_eq!(a.num_gates(), 2);
        assert_eq!(a.num_entangling_gates(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_register_gate_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(2));
    }

    #[test]
    fn inverse_reverses_and_inverts_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::S(1));
        c.push(Gate::Rx(0, Angle::param(0)));
        let inv = c.inverse();
        assert_eq!(inv.num_gates(), 3);
        assert_eq!(inv.gates()[0], Gate::Rx(0, Angle::param(0).negated()));
        assert_eq!(inv.gates()[1], Gate::Sdg(1));
        assert_eq!(inv.gates()[2], Gate::H(0));
        // The inverse references the same parameter slots.
        assert_eq!(inv.num_parameters(), c.num_parameters());
    }

    #[test]
    fn pauli_rotation_counts_as_entangling_when_weight_two() {
        let mut c = Circuit::new(3);
        let zz = PauliString::from_label("ZZI").unwrap();
        c.push(Gate::PauliRotation(zz, Angle::param(0)));
        assert_eq!(c.num_entangling_gates(), 1);
        assert_eq!(c.num_parameters(), 1);
    }
}
