//! Gate set for the parameterized-circuit IR.
//!
//! The gate set is intentionally small: Clifford basics plus parameterized single-qubit
//! rotations and a generic multi-qubit Pauli rotation `exp(-i θ/2 · P)`.  The Pauli
//! rotation covers everything the paper's ansätze need — QAOA cost layers, ma-QAOA
//! per-term angles, and UCCSD-style excitation rotations — with a single code path in the
//! statevector and Pauli-propagation simulators.

use qop::PauliString;
use serde::{Deserialize, Serialize};

/// How a rotation gate obtains its angle.
///
/// Angles are either fixed at circuit-construction time or bound to an optimizer
/// parameter `θ[index]`, optionally scaled by a multiplier (QAOA cost layers use the term
/// coefficient as the multiplier).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Angle {
    /// A constant angle in radians.
    Fixed(f64),
    /// `multiplier * θ[index]` where `θ` is the parameter vector bound at execution time.
    Param {
        /// Index into the parameter vector.
        index: usize,
        /// Scale factor applied to the bound parameter.
        multiplier: f64,
    },
}

impl Angle {
    /// A parameter reference with unit multiplier.
    pub fn param(index: usize) -> Self {
        Angle::Param {
            index,
            multiplier: 1.0,
        }
    }

    /// Resolves the angle against a bound parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if a parameter index is out of range.
    #[inline]
    pub fn resolve(&self, params: &[f64]) -> f64 {
        match *self {
            Angle::Fixed(v) => v,
            Angle::Param { index, multiplier } => {
                assert!(
                    index < params.len(),
                    "parameter index {index} out of range (circuit expects more parameters than supplied: {} given)",
                    params.len()
                );
                multiplier * params[index]
            }
        }
    }

    /// Returns the parameter index if this is a bound angle.
    pub fn param_index(&self) -> Option<usize> {
        match *self {
            Angle::Fixed(_) => None,
            Angle::Param { index, .. } => Some(index),
        }
    }

    /// The angle resolving to the negation of this one under every parameter vector
    /// (fixed angles negate their value; bound angles negate their multiplier).
    pub fn negated(&self) -> Angle {
        match *self {
            Angle::Fixed(v) => Angle::Fixed(-v),
            Angle::Param { index, multiplier } => Angle::Param {
                index,
                multiplier: -multiplier,
            },
        }
    }
}

/// A quantum gate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard on one qubit.
    H(usize),
    /// Pauli-X on one qubit.
    X(usize),
    /// Pauli-Y on one qubit.
    Y(usize),
    /// Pauli-Z on one qubit.
    Z(usize),
    /// Phase gate S on one qubit.
    S(usize),
    /// Inverse phase gate S† on one qubit.
    Sdg(usize),
    /// Controlled-X with `(control, target)`.
    Cx(usize, usize),
    /// Controlled-Z with `(control, target)` (symmetric).
    Cz(usize, usize),
    /// Rotation about X: `exp(-i θ/2 X)`.
    Rx(usize, Angle),
    /// Rotation about Y: `exp(-i θ/2 Y)`.
    Ry(usize, Angle),
    /// Rotation about Z: `exp(-i θ/2 Z)`.
    Rz(usize, Angle),
    /// Generic Pauli rotation `exp(-i θ/2 P)` for an arbitrary Pauli string `P`.
    PauliRotation(PauliString, Angle),
}

impl Gate {
    /// The qubits this gate touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::H(q) | Gate::X(q) | Gate::Y(q) | Gate::Z(q) | Gate::S(q) | Gate::Sdg(q) => {
                vec![*q]
            }
            Gate::Rx(q, _) | Gate::Ry(q, _) | Gate::Rz(q, _) => vec![*q],
            Gate::Cx(c, t) | Gate::Cz(c, t) => vec![*c, *t],
            Gate::PauliRotation(p, _) => p.iter_non_identity().map(|(q, _)| q).collect(),
        }
    }

    /// Returns the angle specification for parameterized gates.
    pub fn angle(&self) -> Option<&Angle> {
        match self {
            Gate::Rx(_, a) | Gate::Ry(_, a) | Gate::Rz(_, a) | Gate::PauliRotation(_, a) => Some(a),
            _ => None,
        }
    }

    /// Returns `true` if the gate acts on two or more qubits.
    pub fn is_entangling(&self) -> bool {
        match self {
            Gate::Cx(..) | Gate::Cz(..) => true,
            Gate::PauliRotation(p, _) => p.weight() >= 2,
            _ => false,
        }
    }

    /// Returns `true` if the gate's angle is bound to an optimizer parameter.
    pub fn is_parameterized(&self) -> bool {
        matches!(self.angle(), Some(Angle::Param { .. }))
    }

    /// The gate implementing this gate's inverse unitary (under every parameter binding).
    ///
    /// Every gate in the set has an in-set inverse: the Clifford basics are self-inverse
    /// or swap with their dagger, and rotations negate their angle.  This is what makes
    /// zero-noise-extrapolation gate folding (`g ↦ g·g†·g`) expressible as a plain
    /// circuit transformation.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::H(_) | Gate::X(_) | Gate::Y(_) | Gate::Z(_) | Gate::Cx(..) | Gate::Cz(..) => {
                self.clone()
            }
            Gate::S(q) => Gate::Sdg(*q),
            Gate::Sdg(q) => Gate::S(*q),
            Gate::Rx(q, a) => Gate::Rx(*q, a.negated()),
            Gate::Ry(q, a) => Gate::Ry(*q, a.negated()),
            Gate::Rz(q, a) => Gate::Rz(*q, a.negated()),
            Gate::PauliRotation(p, a) => Gate::PauliRotation(*p, a.negated()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_resolution() {
        let params = [0.3, -1.2];
        assert_eq!(Angle::Fixed(0.5).resolve(&params), 0.5);
        assert_eq!(Angle::param(1).resolve(&params), -1.2);
        let scaled = Angle::Param {
            index: 0,
            multiplier: 2.0,
        };
        assert!((scaled.resolve(&params) - 0.6).abs() < 1e-15);
        assert_eq!(scaled.param_index(), Some(0));
        assert_eq!(Angle::Fixed(1.0).param_index(), None);
    }

    #[test]
    #[should_panic]
    fn out_of_range_parameter_panics() {
        Angle::param(3).resolve(&[0.1]);
    }

    #[test]
    fn gate_qubits_and_classification() {
        assert_eq!(Gate::H(2).qubits(), vec![2]);
        assert_eq!(Gate::Cx(0, 3).qubits(), vec![0, 3]);
        assert!(Gate::Cx(0, 1).is_entangling());
        assert!(!Gate::Rx(0, Angle::Fixed(0.1)).is_entangling());
        assert!(Gate::Ry(0, Angle::param(0)).is_parameterized());
        assert!(!Gate::Ry(0, Angle::Fixed(0.2)).is_parameterized());

        let zz = PauliString::from_label("ZZ").unwrap();
        let g = Gate::PauliRotation(zz, Angle::param(0));
        assert_eq!(g.qubits(), vec![0, 1]);
        assert!(g.is_entangling());
    }
}
