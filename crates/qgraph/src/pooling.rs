//! Graph pooling (coarsening) in the spirit of Red-QAOA.
//!
//! Red-QAOA (Wang et al., ASPLOS 2024) accelerates QAOA parameter search by optimizing on
//! a pooled (reduced) graph and transferring the parameters to the full graph.  The paper
//! uses it only as a classical initializer that supplies one shared starting point for all
//! isomorphic IEEE-14 instances (Section 8.8).  This module provides the pooling primitive
//! (greedy heavy-edge matching) used by the initializer in the `vqa` crate.

use crate::graph::WeightedGraph;
use serde::{Deserialize, Serialize};

/// Result of one pooling (coarsening) pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PooledGraph {
    /// The coarsened graph.
    pub graph: WeightedGraph,
    /// For each original vertex, the index of the super-vertex it was merged into.
    pub assignment: Vec<usize>,
}

/// Coarsens a graph by greedy heavy-edge matching: repeatedly merge the heaviest edge whose
/// endpoints are both unmatched, until no such edge remains.  Edge weights between
/// super-vertices are summed.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn pool_graph(graph: &WeightedGraph) -> PooledGraph {
    let n = graph.num_nodes();
    assert!(n > 0, "cannot pool an empty graph");

    let mut edges: Vec<(usize, usize, f64)> = graph.edges().to_vec();
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    let mut matched = vec![false; n];
    let mut partner: Vec<Option<usize>> = vec![None; n];
    for &(u, v, _) in &edges {
        if !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
            partner[u] = Some(v);
            partner[v] = Some(u);
        }
    }

    // Assign super-vertex ids.
    let mut assignment = vec![usize::MAX; n];
    let mut next_id = 0usize;
    for v in 0..n {
        if assignment[v] != usize::MAX {
            continue;
        }
        assignment[v] = next_id;
        if let Some(p) = partner[v] {
            assignment[p] = next_id;
        }
        next_id += 1;
    }

    // Accumulate super-edge weights.
    let mut weight_map: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for &(u, v, w) in graph.edges() {
        let (a, b) = (assignment[u], assignment[v]);
        if a == b {
            continue; // internal edge of a super-vertex
        }
        let key = if a < b { (a, b) } else { (b, a) };
        *weight_map.entry(key).or_insert(0.0) += w;
    }
    let mut pooled = WeightedGraph::new(next_id);
    for ((a, b), w) in weight_map {
        pooled.add_edge(a, b, w);
    }
    PooledGraph {
        graph: pooled,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_halves_a_perfect_matching_graph() {
        // Two disjoint heavy edges: pooling should merge each pair.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 5.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(1, 2, 0.1);
        let pooled = pool_graph(&g);
        assert_eq!(pooled.graph.num_nodes(), 2);
        assert_eq!(pooled.assignment[0], pooled.assignment[1]);
        assert_eq!(pooled.assignment[2], pooled.assignment[3]);
        assert_ne!(pooled.assignment[0], pooled.assignment[2]);
        // The only surviving edge is the light connector.
        assert_eq!(pooled.graph.num_edges(), 1);
        assert!((pooled.graph.edges()[0].2 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pooling_preserves_total_weight_minus_internal_edges() {
        let g = super::super::ieee14::ieee14_base_graph();
        let pooled = pool_graph(&g);
        assert!(pooled.graph.num_nodes() < g.num_nodes());
        assert!(pooled.graph.num_nodes() >= g.num_nodes() / 2);
        assert!(pooled.graph.total_weight() <= g.total_weight() + 1e-12);
        // Every original vertex is assigned to a valid super-vertex.
        assert!(pooled
            .assignment
            .iter()
            .all(|&a| a < pooled.graph.num_nodes()));
    }

    #[test]
    fn isolated_vertices_survive_as_their_own_super_vertex() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let pooled = pool_graph(&g);
        assert_eq!(pooled.graph.num_nodes(), 2);
        assert_eq!(pooled.assignment[2], 1);
    }

    #[test]
    fn parallel_super_edges_are_merged() {
        // A square where pooling merges (0,1) and (2,3): the two cross edges become one
        // super-edge with summed weight.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(2, 3, 9.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 3, 2.0);
        let pooled = pool_graph(&g);
        assert_eq!(pooled.graph.num_nodes(), 2);
        assert_eq!(pooled.graph.num_edges(), 1);
        assert!((pooled.graph.edges()[0].2 - 3.0).abs() < 1e-12);
    }
}
