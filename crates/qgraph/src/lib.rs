//! # qgraph — combinatorial-optimization workload generators
//!
//! Provides the QAOA-side workloads of the paper's evaluation:
//!
//! * [`WeightedGraph`] with exact (brute-force) MaxCut for reference solutions.
//! * [`maxcut_cost_hamiltonian`] — the minimization-form MaxCut cost operator.
//! * [`Ieee14Family`] / [`ieee14_base_graph`] — the IEEE 14-bus test system and its
//!   load-scaled instance families (Figure 12's workload).
//! * [`pool_graph`] — Red-QAOA-style graph coarsening used by the classical initializer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod graph;
mod ieee14;
mod maxcut;
mod pooling;

pub use graph::{edge_weight_variance, WeightedGraph};
pub use ieee14::{ieee14_base_graph, Ieee14Family, IEEE14_BRANCHES};
pub use maxcut::{approximation_ratio, cut_value_of_basis_state, maxcut_cost_hamiltonian};
pub use pooling::{pool_graph, PooledGraph};
