//! The IEEE 14-bus test system as a weighted MaxCut workload family.
//!
//! The paper models the IEEE 14-bus power grid as a 14-node weighted graph (buses =
//! vertices, transmission lines/transformers = edges) and generates a family of 10
//! isomorphic MaxCut instances per load-scale range by varying the edge weights
//! (Section 7.1 "QAOA Benchmark" and Section 8.8).  This module ships the standard 20-edge
//! topology with branch reactances from the canonical test case, derives capacity-like
//! base weights (`1/x` normalized), and generates load-scaled weight families whose
//! edge-weight variance shrinks as the load range narrows — the x-axis of Figure 12.

use crate::graph::{edge_weight_variance, WeightedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Branch list of the IEEE 14-bus test case: `(from_bus, to_bus, reactance_x_pu)` with
/// 1-based bus numbering as in the original data.
pub const IEEE14_BRANCHES: [(usize, usize, f64); 20] = [
    (1, 2, 0.05917),
    (1, 5, 0.22304),
    (2, 3, 0.19797),
    (2, 4, 0.17632),
    (2, 5, 0.17388),
    (3, 4, 0.17103),
    (4, 5, 0.04211),
    (4, 7, 0.20912),
    (4, 9, 0.55618),
    (5, 6, 0.25202),
    (6, 11, 0.19890),
    (6, 12, 0.25581),
    (6, 13, 0.13027),
    (7, 8, 0.17615),
    (7, 9, 0.11001),
    (9, 10, 0.08450),
    (9, 14, 0.27038),
    (10, 11, 0.19207),
    (12, 13, 0.19988),
    (13, 14, 0.34802),
];

/// Builds the base IEEE 14-bus graph with capacity-like weights `w = (1/x)` normalized so
/// that the largest weight is 1.
pub fn ieee14_base_graph() -> WeightedGraph {
    let mut graph = WeightedGraph::new(14);
    let max_capacity = IEEE14_BRANCHES
        .iter()
        .map(|&(_, _, x)| 1.0 / x)
        .fold(f64::MIN, f64::max);
    for &(from, to, x) in &IEEE14_BRANCHES {
        graph.add_edge(from - 1, to - 1, (1.0 / x) / max_capacity);
    }
    graph
}

/// A family of load-scaled IEEE 14-bus MaxCut instances.
///
/// Each of the `num_graphs` instances corresponds to one equally spaced load scale in
/// `[load_min, load_max]`; each edge responds to the load scale with its own sensitivity,
/// so different instances are genuinely different MaxCut problems (not scalar multiples of
/// one another), while narrower load ranges yield more similar instances.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ieee14Family {
    /// Lower end of the load-scale range.
    pub load_min: f64,
    /// Upper end of the load-scale range.
    pub load_max: f64,
    /// Number of instances (the paper uses 10).
    pub num_graphs: usize,
    /// Seed for the per-edge load sensitivities.
    pub seed: u64,
}

impl Ieee14Family {
    /// Creates a family over `[load_min, load_max]` with the paper's default of 10 graphs.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `num_graphs == 0`.
    pub fn new(load_min: f64, load_max: f64, num_graphs: usize) -> Self {
        assert!(load_min < load_max, "load range must be non-empty");
        assert!(num_graphs > 0);
        Ieee14Family {
            load_min,
            load_max,
            num_graphs,
            seed: 0x1EEE14,
        }
    }

    /// The three load-scale ranges evaluated in the paper's Figure 12.
    pub fn paper_ranges() -> Vec<(String, Ieee14Family)> {
        vec![
            ("0.5:1.5".to_string(), Ieee14Family::new(0.5, 1.5, 10)),
            ("0.8:1.2".to_string(), Ieee14Family::new(0.8, 1.2, 10)),
            ("0.9:1.1".to_string(), Ieee14Family::new(0.9, 1.1, 10)),
        ]
    }

    /// The equally spaced load scales of this family.
    pub fn load_scales(&self) -> Vec<f64> {
        if self.num_graphs == 1 {
            return vec![0.5 * (self.load_min + self.load_max)];
        }
        (0..self.num_graphs)
            .map(|i| {
                self.load_min
                    + (self.load_max - self.load_min) * i as f64 / (self.num_graphs - 1) as f64
            })
            .collect()
    }

    /// Per-edge load sensitivities in `[0.3, 1.0]` (deterministic for the family seed).
    fn sensitivities(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..IEEE14_BRANCHES.len())
            .map(|_| 0.3 + 0.7 * rng.random::<f64>())
            .collect()
    }

    /// Generates the family's graphs, one per load scale.
    pub fn graphs(&self) -> Vec<WeightedGraph> {
        let base = ieee14_base_graph();
        let sens = self.sensitivities();
        self.load_scales()
            .into_iter()
            .map(|scale| base.map_weights(|edge, w| w * (1.0 + (scale - 1.0) * sens[edge])))
            .collect()
    }

    /// The edge-weight variance of the generated family (the purple bars of Figure 12).
    pub fn edge_weight_variance(&self) -> f64 {
        edge_weight_variance(&self.graphs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_graph_matches_ieee14_topology() {
        let g = ieee14_base_graph();
        assert_eq!(g.num_nodes(), 14);
        assert_eq!(g.num_edges(), 20);
        // Weights are normalized into (0, 1].
        assert!(g
            .edges()
            .iter()
            .all(|&(_, _, w)| w > 0.0 && w <= 1.0 + 1e-12));
        let max_w = g
            .edges()
            .iter()
            .map(|&(_, _, w)| w)
            .fold(f64::MIN, f64::max);
        assert!((max_w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn families_share_topology_and_differ_in_weights() {
        let family = Ieee14Family::new(0.5, 1.5, 10);
        let graphs = family.graphs();
        assert_eq!(graphs.len(), 10);
        for g in &graphs {
            assert_eq!(g.num_edges(), 20);
            assert_eq!(g.num_nodes(), 14);
        }
        assert_ne!(graphs[0], graphs[9]);
    }

    #[test]
    fn narrower_load_ranges_have_lower_variance() {
        let (_, wide) = &Ieee14Family::paper_ranges()[0];
        let (_, mid) = &Ieee14Family::paper_ranges()[1];
        let (_, narrow) = &Ieee14Family::paper_ranges()[2];
        let v_wide = wide.edge_weight_variance();
        let v_mid = mid.edge_weight_variance();
        let v_narrow = narrow.edge_weight_variance();
        assert!(
            v_wide > v_mid && v_mid > v_narrow,
            "{v_wide} > {v_mid} > {v_narrow}"
        );
        assert!(v_narrow > 0.0);
    }

    #[test]
    fn load_scales_are_evenly_spaced() {
        let family = Ieee14Family::new(0.8, 1.2, 5);
        let scales = family.load_scales();
        assert_eq!(scales.len(), 5);
        assert!((scales[0] - 0.8).abs() < 1e-12);
        assert!((scales[4] - 1.2).abs() < 1e-12);
        assert!((scales[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn graphs_are_deterministic() {
        let a = Ieee14Family::new(0.9, 1.1, 10).graphs();
        let b = Ieee14Family::new(0.9, 1.1, 10).graphs();
        assert_eq!(a, b);
    }

    #[test]
    fn instances_are_not_scalar_multiples() {
        // The ratio of corresponding edge weights must differ across edges, otherwise the
        // family would be trivial for TreeVQA.
        let graphs = Ieee14Family::new(0.5, 1.5, 10).graphs();
        let first = graphs.first().unwrap();
        let last = graphs.last().unwrap();
        let ratios: Vec<f64> = first
            .edges()
            .iter()
            .zip(last.edges())
            .map(|(a, b)| b.2 / a.2)
            .collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.05,
            "edge responses to load should differ: {min}..{max}"
        );
    }
}
