//! MaxCut ↔ Ising/QUBO cost Hamiltonians.
//!
//! The paper's QAOA benchmark (Sections 7.1 and 8.8) solves MaxCut on IEEE-14-derived
//! graphs.  The textbook cost operator is `C = Σ_{(i,j)∈E} w_ij/2 (I − Z_i Z_j)`, whose
//! **maximum** eigenvalue corresponds to the maximum cut.  Because every VQA component in
//! this workspace minimizes, [`maxcut_cost_hamiltonian`] returns `−C`, so that the ground
//! state of the returned operator encodes the maximum cut and the ground-state energy is
//! `−(max cut value)`.

use crate::graph::WeightedGraph;
use qop::{Pauli, PauliOp, PauliString};

/// Builds the minimization-form MaxCut cost Hamiltonian `−C` for a weighted graph.
///
/// Ground-state energy = −(maximum cut value); the ground state is a computational basis
/// state encoding the optimal bipartition.
///
/// # Examples
///
/// ```
/// use qgraph::{maxcut_cost_hamiltonian, WeightedGraph};
/// use qop::{ground_energy, LanczosOptions};
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// g.add_edge(0, 2, 1.0);
/// let h = maxcut_cost_hamiltonian(&g);
/// let e0 = ground_energy(&h, &LanczosOptions::default());
/// assert!((e0 + 2.0).abs() < 1e-8); // max cut of a unit triangle is 2
/// ```
pub fn maxcut_cost_hamiltonian(graph: &WeightedGraph) -> PauliOp {
    let n = graph.num_nodes();
    let mut op = PauliOp::zero(n);
    for &(u, v, w) in graph.edges() {
        // −C term: −w/2 · I + w/2 · Z_u Z_v
        op.add_term(PauliString::identity(n), -0.5 * w);
        op.add_term(
            PauliString::from_sparse(n, &[(u, Pauli::Z), (v, Pauli::Z)]),
            0.5 * w,
        );
    }
    op.simplify(0.0);
    op
}

/// The cut value encoded by a computational basis state under the minimization convention:
/// `cut(b) = −⟨b|(−C)|b⟩`.
pub fn cut_value_of_basis_state(graph: &WeightedGraph, basis: u64) -> f64 {
    graph.cut_value(basis)
}

/// The MaxCut approximation ratio of an energy obtained from the minimization-form
/// Hamiltonian: `ratio = (−energy) / max_cut`.
///
/// # Panics
///
/// Panics if `max_cut` is not positive.
pub fn approximation_ratio(energy: f64, max_cut: f64) -> f64 {
    assert!(max_cut > 0.0, "max cut must be positive");
    (-energy) / max_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use qop::{ground_state, LanczosOptions, Statevector};

    #[test]
    fn triangle_hamiltonian_structure() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        let h = maxcut_cost_hamiltonian(&g);
        // 3 ZZ terms + 1 merged identity term.
        assert_eq!(h.num_terms(), 4);
        assert!((h.identity_coefficient() + 1.5).abs() < 1e-12);
    }

    #[test]
    fn basis_state_energies_match_cut_values() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 3.0);
        let h = maxcut_cost_hamiltonian(&g);
        for basis in 0..16u64 {
            let psi = Statevector::basis_state(4, basis);
            let energy = h.expectation(&psi);
            assert!(
                (energy + g.cut_value(basis)).abs() < 1e-10,
                "basis {basis}: energy {energy} vs cut {}",
                g.cut_value(basis)
            );
        }
    }

    #[test]
    fn ground_state_is_the_max_cut() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 1.5);
        g.add_edge(1, 2, 0.5);
        g.add_edge(2, 3, 2.5);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 0, 2.0);
        g.add_edge(1, 3, 0.7);
        let (max_cut, _) = g.max_cut_brute_force();
        let h = maxcut_cost_hamiltonian(&g);
        let gs = ground_state(&h, &LanczosOptions::default());
        assert!((gs.energy + max_cut).abs() < 1e-7);
        assert!((approximation_ratio(gs.energy, max_cut) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn approximation_ratio_is_fractional_for_suboptimal_energy() {
        let ratio = approximation_ratio(-1.5, 2.0);
        assert!((ratio - 0.75).abs() < 1e-12);
    }
}
