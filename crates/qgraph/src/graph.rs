//! Weighted undirected graphs and exact MaxCut utilities.

use serde::{Deserialize, Serialize};

/// An undirected weighted graph stored as an edge list.
///
/// # Examples
///
/// ```
/// use qgraph::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// assert_eq!(g.num_edges(), 2);
/// assert!((g.total_weight() - 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedGraph {
    num_nodes: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl WeightedGraph {
    /// Creates an empty graph on `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        WeightedGraph {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list as `(u, v, weight)` triples with `u < v`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `u == v`, or if the edge already
    /// exists.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "vertex out of range"
        );
        assert_ne!(u, v, "self-loops are not allowed");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        assert!(
            !self.edges.iter().any(|&(x, y, _)| x == a && y == b),
            "edge ({a}, {b}) already present"
        );
        self.edges.push((a, b, weight));
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Returns a copy with every edge weight multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> WeightedGraph {
        WeightedGraph {
            num_nodes: self.num_nodes,
            edges: self
                .edges
                .iter()
                .map(|&(u, v, w)| (u, v, w * factor))
                .collect(),
        }
    }

    /// Returns a copy with per-edge weights transformed by `f(edge_index, weight)`.
    pub fn map_weights(&self, mut f: impl FnMut(usize, f64) -> f64) -> WeightedGraph {
        WeightedGraph {
            num_nodes: self.num_nodes,
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, &(u, v, w))| (u, v, f(i, w)))
                .collect(),
        }
    }

    /// The cut value of the vertex bipartition encoded by `assignment` (bit `q` of the
    /// integer gives the side of vertex `q`).
    pub fn cut_value(&self, assignment: u64) -> f64 {
        self.edges
            .iter()
            .map(|&(u, v, w)| {
                let su = (assignment >> u) & 1;
                let sv = (assignment >> v) & 1;
                if su != sv {
                    w
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Exhaustively computes the maximum cut.  Returns `(best_cut_value, assignment)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 vertices (2^24 assignments is the practical
    /// limit for a test-time brute force).
    pub fn max_cut_brute_force(&self) -> (f64, u64) {
        assert!(
            self.num_nodes <= 24,
            "brute-force MaxCut is limited to 24 vertices"
        );
        let mut best = (f64::NEG_INFINITY, 0u64);
        // Fixing vertex 0's side halves the search space (cuts are symmetric).
        for assignment in 0..(1u64 << self.num_nodes.saturating_sub(1)) {
            let value = self.cut_value(assignment);
            if value > best.0 {
                best = (value, assignment);
            }
        }
        best
    }

    /// Mean edge weight (0.0 for an edgeless graph).
    pub fn mean_weight(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.total_weight() / self.edges.len() as f64
        }
    }
}

/// The average squared deviation of each graph's edge weights from the edge-wise mean
/// graph — the "edge weight variance" metric plotted in the paper's Figure 12.
///
/// All graphs must share the same topology (same node count, same edge order).
///
/// # Panics
///
/// Panics if `graphs` is empty or the topologies differ.
pub fn edge_weight_variance(graphs: &[WeightedGraph]) -> f64 {
    assert!(!graphs.is_empty(), "need at least one graph");
    let num_edges = graphs[0].num_edges();
    for g in graphs {
        assert_eq!(g.num_edges(), num_edges, "graphs must share topology");
        assert_eq!(
            g.num_nodes(),
            graphs[0].num_nodes(),
            "graphs must share topology"
        );
        for (e, e0) in g.edges().iter().zip(graphs[0].edges()) {
            assert_eq!((e.0, e.1), (e0.0, e0.1), "graphs must share edge order");
        }
    }
    let mut mean = vec![0.0f64; num_edges];
    for g in graphs {
        for (m, &(_, _, w)) in mean.iter_mut().zip(g.edges()) {
            *m += w;
        }
    }
    for m in mean.iter_mut() {
        *m /= graphs.len() as f64;
    }
    let mut var = 0.0;
    for g in graphs {
        for (m, &(_, _, w)) in mean.iter().zip(g.edges()) {
            var += (w - m) * (w - m);
        }
    }
    var / (graphs.len() * num_edges) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        g
    }

    #[test]
    fn cut_values_of_triangle() {
        let g = triangle();
        // Putting one vertex alone cuts two edges.
        assert_eq!(g.cut_value(0b001), 2.0);
        assert_eq!(g.cut_value(0b010), 2.0);
        // All on one side cuts nothing.
        assert_eq!(g.cut_value(0b000), 0.0);
        let (best, _) = g.max_cut_brute_force();
        assert_eq!(best, 2.0);
    }

    #[test]
    fn weighted_max_cut_prefers_heavy_edges() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 10.0);
        g.add_edge(3, 0, 1.0);
        let (best, assignment) = g.max_cut_brute_force();
        assert_eq!(best, 22.0);
        assert_eq!(g.cut_value(assignment), 22.0);
    }

    #[test]
    fn scaled_and_map_weights() {
        let g = triangle().scaled(2.0);
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
        let g2 = g.map_weights(|i, w| if i == 0 { 0.0 } else { w });
        assert!((g2.total_weight() - 4.0).abs() < 1e-12);
        assert!((g2.mean_weight() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_identical_graphs_is_zero() {
        let graphs = vec![triangle(); 5];
        assert!(edge_weight_variance(&graphs) < 1e-15);
    }

    #[test]
    fn variance_grows_with_spread() {
        let narrow: Vec<WeightedGraph> = [0.9, 1.0, 1.1]
            .iter()
            .map(|&s| triangle().scaled(s))
            .collect();
        let wide: Vec<WeightedGraph> = [0.5, 1.0, 1.5]
            .iter()
            .map(|&s| triangle().scaled(s))
            .collect();
        assert!(edge_weight_variance(&wide) > edge_weight_variance(&narrow));
    }

    #[test]
    #[should_panic]
    fn duplicate_edge_panics() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.0);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(1, 1, 1.0);
    }
}
