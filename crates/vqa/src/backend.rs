//! Execution backends: how `⟨ψ(θ)|H|ψ(θ)⟩` is produced and how shots are charged.
//!
//! The paper evaluates TreeVQA as a plug-and-play wrapper over several execution
//! substrates (noiseless statevector, shot-sampled, noisy device models, Pauli
//! propagation).  The [`Backend`] trait captures the one operation every substrate must
//! provide — evaluate one *charged* observable (costing shots) and any number of *free*
//! observables (classical recombination / tracking, which the paper notes costs no quantum
//! shots) on the same prepared state.

use crate::task::InitialState;
use qcircuit::Circuit;
use qop::{PauliOp, Statevector};
use qsim::{
    analytic_sampled_expectation, attenuation_factor, run_circuit_in_place, CircuitNoiseProfile,
    NoiseModel, PauliPropagator, PauliPropagatorConfig, ShotLedger,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A quantum-execution substrate.
pub trait Backend {
    /// Prepares `|ψ(θ)⟩ = U(θ)|init⟩` once, charges shots for estimating `charged_op`, and
    /// additionally returns exact "tracking" expectations for each operator in `free_ops`
    /// at zero shot cost.
    ///
    /// Returns `(charged_value, free_values)`.
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>);

    /// Evaluates `op` on the prepared state **without charging any shots**.
    ///
    /// Used for metric probes (fidelity-vs-shots histories) and for TreeVQA's
    /// post-processing step, both of which the paper treats as classical recombination of
    /// already-logged data rather than additional quantum execution.
    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64;

    /// Total shots charged so far.
    fn shots_used(&self) -> u64;

    /// Resets the shot counter (used when reusing a backend across experiment arms).
    fn reset_shots(&mut self);

    /// Shots charged per Pauli term per evaluation (the paper's 4096 constant by default).
    fn shots_per_pauli(&self) -> u64;

    /// Human-readable backend name.
    fn name(&self) -> &'static str;
}

/// Exact statevector backend: no sampling noise, but shots are still charged according to
/// the paper's cost model.  This is the configuration behind all noiseless results.
#[derive(Debug)]
pub struct StatevectorBackend {
    shots_per_pauli: u64,
    ledger: ShotLedger,
    scratch: Option<Statevector>,
}

impl StatevectorBackend {
    /// Creates a backend with the paper's default of 4096 shots per Pauli term.
    pub fn new() -> Self {
        Self::with_shots(qsim::DEFAULT_SHOTS_PER_PAULI)
    }

    /// Creates a backend with an explicit shots-per-Pauli constant.
    pub fn with_shots(shots_per_pauli: u64) -> Self {
        StatevectorBackend {
            shots_per_pauli,
            ledger: ShotLedger::new(),
            scratch: None,
        }
    }
}

impl Default for StatevectorBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot state preparation (kept for tests and ad-hoc callers; the backends use
/// [`prepare_state_reusing`] to avoid per-evaluation allocations).
#[cfg(test)]
fn prepare_state(circuit: &Circuit, params: &[f64], initial: &InitialState) -> Statevector {
    let init = initial.prepare(circuit.num_qubits());
    qsim::run_circuit(circuit, params, &init)
}

/// Prepares `U(θ)|init⟩` into a backend-owned scratch statevector, so the optimizer's
/// inner loop performs zero statevector allocations after the first evaluation (the
/// scratch is allocated once and refilled in place on every subsequent call with the same
/// register size).
fn prepare_state_reusing<'a>(
    circuit: &Circuit,
    params: &[f64],
    initial: &InitialState,
    scratch: &'a mut Option<Statevector>,
) -> &'a Statevector {
    let n = circuit.num_qubits();
    match scratch {
        Some(state) if state.num_qubits() == n => initial.prepare_into(state),
        _ => *scratch = Some(initial.prepare(n)),
    }
    let state = scratch.as_mut().expect("scratch just prepared");
    run_circuit_in_place(circuit, params, state);
    state
}

impl Backend for StatevectorBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let state = prepare_state_reusing(circuit, params, initial, &mut self.scratch);
        self.ledger
            .charge_evaluation(self.shots_per_pauli, charged_op.num_terms());
        let charged = charged_op.expectation(state);
        let free = free_ops.iter().map(|op| op.expectation(state)).collect();
        (charged, free)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        op.expectation(prepare_state_reusing(
            circuit,
            params,
            initial,
            &mut self.scratch,
        ))
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "statevector"
    }
}

/// Shot-sampled statevector backend: the charged observable receives per-term binomial
/// sampling noise matching the allotted shots; tracking observables remain exact.
#[derive(Debug)]
pub struct SampledBackend {
    shots_per_pauli: u64,
    ledger: ShotLedger,
    rng: StdRng,
    scratch: Option<Statevector>,
}

impl SampledBackend {
    /// Creates a sampled backend with an RNG seed (deterministic experiments).
    pub fn new(shots_per_pauli: u64, seed: u64) -> Self {
        SampledBackend {
            shots_per_pauli,
            ledger: ShotLedger::new(),
            rng: StdRng::seed_from_u64(seed),
            scratch: None,
        }
    }
}

impl Backend for SampledBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let state = prepare_state_reusing(circuit, params, initial, &mut self.scratch);
        self.ledger
            .charge_evaluation(self.shots_per_pauli, charged_op.num_terms());
        let charged =
            analytic_sampled_expectation(charged_op, state, self.shots_per_pauli, &mut self.rng);
        let free = free_ops.iter().map(|op| op.expectation(state)).collect();
        (charged, free)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        op.expectation(prepare_state_reusing(
            circuit,
            params,
            initial,
            &mut self.scratch,
        ))
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "sampled"
    }
}

/// Noisy backend: the analytic device-noise attenuation of `qsim::noise` is applied to the
/// charged observable on top of shot sampling; tracking observables are attenuated but not
/// sampled.
#[derive(Debug)]
pub struct NoisyBackend {
    shots_per_pauli: u64,
    ledger: ShotLedger,
    rng: StdRng,
    model: NoiseModel,
    /// Ansatz repetitions used for the per-layer depolarizing channel.
    layers: usize,
    scratch: Option<Statevector>,
}

impl NoisyBackend {
    /// Creates a noisy backend from a noise model and the ansatz repetition count.
    pub fn new(model: NoiseModel, layers: usize, shots_per_pauli: u64, seed: u64) -> Self {
        NoisyBackend {
            shots_per_pauli,
            ledger: ShotLedger::new(),
            rng: StdRng::seed_from_u64(seed),
            model,
            layers,
            scratch: None,
        }
    }

    /// The backend's noise model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    fn noisy_exact(&self, op: &PauliOp, state: &Statevector, profile: &CircuitNoiseProfile) -> f64 {
        qsim::noisy_expectation(op, state, &self.model, profile)
    }
}

impl Backend for NoisyBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        // Split borrows: the scratch state must not alias the rng/model fields.
        let mut scratch = self.scratch.take();
        let state = prepare_state_reusing(circuit, params, initial, &mut scratch);
        let profile = CircuitNoiseProfile::from_circuit(circuit, self.layers);
        self.ledger
            .charge_evaluation(self.shots_per_pauli, charged_op.num_terms());
        // Attenuate each term, then add shot noise on top of the attenuated value.
        let attenuated = self.noisy_exact(charged_op, state, &profile);
        let shot_noise = {
            // Sample the *difference* between a sampled and an exact estimate of the
            // attenuated observable; reusing the analytic sampler on the ideal state and
            // rescaling keeps the variance model simple and unbiased.
            let sampled = analytic_sampled_expectation(
                charged_op,
                state,
                self.shots_per_pauli,
                &mut self.rng,
            );
            sampled - charged_op.expectation(state)
        };
        let charged = attenuated + shot_noise;
        let free = free_ops
            .iter()
            .map(|op| self.noisy_exact(op, state, &profile))
            .collect();
        self.scratch = scratch;
        (charged, free)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        // Probes report the *ideal* energy of the prepared state: fidelity metrics measure
        // how good the optimized state is, independent of readout-time attenuation.
        op.expectation(prepare_state_reusing(
            circuit,
            params,
            initial,
            &mut self.scratch,
        ))
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "noisy"
    }
}

/// Pauli-propagation backend for large registers (no dense state is ever formed).
///
/// Only basis-state initial states are supported; optionally applies the per-layer
/// depolarizing attenuation of the large-scale noisy study.
#[derive(Debug)]
pub struct PauliPropagationBackend {
    propagator: PauliPropagator,
    shots_per_pauli: u64,
    ledger: ShotLedger,
    noise: Option<(NoiseModel, usize)>,
}

impl PauliPropagationBackend {
    /// Creates a noiseless Pauli-propagation backend.
    pub fn new(config: PauliPropagatorConfig, shots_per_pauli: u64) -> Self {
        PauliPropagationBackend {
            propagator: PauliPropagator::new(config),
            shots_per_pauli,
            ledger: ShotLedger::new(),
            noise: None,
        }
    }

    /// Adds a per-layer depolarizing noise model (Section 8.4's noisy configuration).
    pub fn with_noise(mut self, model: NoiseModel, layers: usize) -> Self {
        self.noise = Some((model, layers));
        self
    }

    fn expectation(&self, circuit: &Circuit, params: &[f64], op: &PauliOp, basis: u64) -> f64 {
        match &self.noise {
            None => self.propagator.expectation(circuit, params, op, basis),
            Some((model, layers)) => {
                // Attenuate each term according to its weight before propagation; the
                // depolarizing layer commutes with the (unitary) propagation for this
                // analytic model.
                let profile = CircuitNoiseProfile::from_circuit(circuit, *layers);
                let mut damped = PauliOp::zero(op.num_qubits());
                for t in op.terms() {
                    damped.add_term(
                        t.string,
                        t.coefficient * attenuation_factor(model, &profile, t.string.weight()),
                    );
                }
                self.propagator.expectation(circuit, params, &damped, basis)
            }
        }
    }
}

impl Backend for PauliPropagationBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let basis = initial
            .basis_index()
            .expect("the Pauli-propagation backend requires a basis-state initial state");
        self.ledger
            .charge_evaluation(self.shots_per_pauli, charged_op.num_terms());
        let charged = self.expectation(circuit, params, charged_op, basis);
        let free = free_ops
            .iter()
            .map(|op| self.expectation(circuit, params, op, basis))
            .collect();
        (charged, free)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        let basis = initial
            .basis_index()
            .expect("the Pauli-propagation backend requires a basis-state initial state");
        self.expectation(circuit, params, op, basis)
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "pauli-propagation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};

    fn demo_setup() -> (Circuit, Vec<f64>, PauliOp, PauliOp) {
        let circuit = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let params: Vec<f64> = (0..circuit.num_parameters())
            .map(|i| 0.1 * i as f64)
            .collect();
        let h1 = PauliOp::from_labels(3, &[("ZZI", -1.0), ("IXI", 0.3)]);
        let h2 = PauliOp::from_labels(3, &[("ZZI", -0.8), ("IIX", 0.2)]);
        (circuit, params, h1, h2)
    }

    #[test]
    fn statevector_backend_charges_shots_and_matches_exact() {
        let (circuit, params, h1, h2) = demo_setup();
        let mut backend = StatevectorBackend::with_shots(1000);
        let (charged, free) =
            backend.evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[&h2]);
        assert_eq!(backend.shots_used(), 1000 * h1.num_terms() as u64);
        let state = prepare_state(&circuit, &params, &InitialState::Basis(0));
        assert!((charged - h1.expectation(&state)).abs() < 1e-12);
        assert!((free[0] - h2.expectation(&state)).abs() < 1e-12);
        backend.reset_shots();
        assert_eq!(backend.shots_used(), 0);
        assert_eq!(backend.name(), "statevector");
    }

    #[test]
    fn sampled_backend_is_noisy_but_unbiased() {
        let (circuit, params, h1, _) = demo_setup();
        let mut backend = SampledBackend::new(256, 7);
        let exact = {
            let state = prepare_state(&circuit, &params, &InitialState::Basis(0));
            h1.expectation(&state)
        };
        let n = 64;
        let mean: f64 = (0..n)
            .map(|_| {
                backend
                    .evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[])
                    .0
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - exact).abs() < 0.05,
            "sampled mean {mean} vs exact {exact}"
        );
        assert_eq!(backend.shots_used(), 256 * h1.num_terms() as u64 * n);
    }

    #[test]
    fn noisy_backend_attenuates_relative_to_ideal() {
        let (circuit, params, h1, _) = demo_setup();
        let ideal = {
            let state = prepare_state(&circuit, &params, &InitialState::Basis(0));
            h1.expectation(&state)
        };
        let model = NoiseModel::by_name("mumbai").unwrap();
        let mut backend = NoisyBackend::new(model, 5, 0, 3);
        // shots_per_pauli = 0 disables sampling noise in the analytic sampler, isolating
        // the attenuation effect.
        let (noisy, _) = backend.evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[]);
        assert!(noisy.abs() <= ideal.abs() + 1e-9);
        assert_eq!(backend.name(), "noisy");
    }

    #[test]
    fn pauli_propagation_backend_matches_statevector_for_small_systems() {
        let (circuit, params, h1, h2) = demo_setup();
        let mut dense = StatevectorBackend::with_shots(10);
        let mut prop = PauliPropagationBackend::new(
            PauliPropagatorConfig {
                max_weight: 3,
                coefficient_threshold: 1e-14,
                max_terms: 1_000_000,
            },
            10,
        );
        let (a, fa) = dense.evaluate(&circuit, &params, &InitialState::Basis(0b101), &h1, &[&h2]);
        let (b, fb) = prop.evaluate(&circuit, &params, &InitialState::Basis(0b101), &h1, &[&h2]);
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        assert!((fa[0] - fb[0]).abs() < 1e-7);
        assert_eq!(dense.shots_used(), prop.shots_used());
    }

    #[test]
    #[should_panic]
    fn pauli_propagation_rejects_superposition_initial_state() {
        let (circuit, params, h1, _) = demo_setup();
        let mut prop = PauliPropagationBackend::new(PauliPropagatorConfig::default(), 10);
        let _ = prop.evaluate(
            &circuit,
            &params,
            &InitialState::UniformSuperposition,
            &h1,
            &[],
        );
    }
}
