//! Execution backends: how `⟨ψ(θ)|H|ψ(θ)⟩` is produced and how shots are charged.
//!
//! The paper evaluates TreeVQA as a plug-and-play wrapper over several execution
//! substrates (noiseless statevector, shot-sampled, noisy device models, Pauli
//! propagation).  The [`Backend`] trait captures the one operation every substrate must
//! provide — evaluate one *charged* observable (costing shots) and any number of *free*
//! observables (classical recombination / tracking, which the paper notes costs no quantum
//! shots) on the same prepared state — plus a **batch** form, [`Backend::evaluate_batch`],
//! that takes a whole slice of [`EvalRequest`]s at once.
//!
//! # Batched execution
//!
//! Derivative-free optimizers emit *batches* of parameter vectors (SPSA's ± pair, a
//! simplex build, every active TreeVQA cluster's candidates in one controller round), and
//! all of those bind different `θ` to the **same** ansatz.  The dense backends exploit
//! that shape:
//!
//! * the circuit is lowered once through a cached [`qsim::CompiledCircuit`] and re-bound
//!   per request — never re-walked;
//! * a pool of scratch statevectors (grown on demand, reused across calls) holds one
//!   state per in-flight request;
//! * for registers **below** the [`qsim::parallel_threshold`] amplitude count, the batch
//!   is data-parallelized *across* the pool states (one thread per state, with every
//!   kernel inside a worker pinned serial via `qop::par::serial_scope`); at or above the
//!   threshold each state is executed serially in the batch while the gate kernels
//!   parallelize *within* the state.  One knob (`QSIM_PAR_THRESHOLD`) picks the regime
//!   and the scope pin guarantees the two levels of parallelism never nest.
//!
//! Batched evaluation is **bit-identical** to the serial loop: requests are charged and
//! (for the sampled backend) noise-sampled in request order, so optimizer trajectories do
//! not depend on whether the caller batches.  Memory is bounded by chunking: at most
//! [`batch_chunk`] scratch states are live at once (`VQA_BATCH_CHUNK`, default 16).

use crate::task::InitialState;
use qcircuit::Circuit;
use qop::par::SendPtr;
use qop::{PauliOp, Statevector};
use qrng::{CounterRng, SeedPolicy, StreamId};
use qsim::{
    analytic_sampled_expectation, attenuation_factor, CircuitNoiseProfile, CompiledCircuit,
    NoiseModel, PauliPropagator, PauliPropagatorConfig, ShotLedger,
};
use rayon::prelude::*;

/// One evaluation of a parameterized ansatz against a charged observable (plus free
/// tracking observables), submitted to [`Backend::evaluate_batch`].
#[derive(Clone, Copy, Debug)]
pub struct EvalRequest<'a> {
    /// The ansatz circuit (typically shared by every request of a batch).
    pub circuit: &'a Circuit,
    /// The bound parameter vector for this request.
    pub params: &'a [f64],
    /// The initial state the ansatz is applied to.
    pub initial: &'a InitialState,
    /// The observable whose estimation is charged shots.
    pub charged_op: &'a PauliOp,
    /// Observables evaluated exactly at zero shot cost on the same state.
    pub free_ops: &'a [&'a PauliOp],
    /// The `qrng` stream this request's stochastic draws are keyed by, when the
    /// caller pinned one (the execution service derives one per job, making every
    /// draw a pure function of the job rather than of execution order).  `None`
    /// falls back to the backend's instance-local evaluation-order stream, which
    /// preserves the historical batched-equals-serial request-order semantics for
    /// direct trait callers.
    pub stream: Option<StreamId>,
}

/// The outcome of one [`EvalRequest`].
#[derive(Clone, Debug, PartialEq)]
pub struct EvalResult {
    /// The (possibly noise-affected) charged-observable estimate.
    pub charged: f64,
    /// Exact tracking values, one per `free_ops` entry.
    pub free: Vec<f64>,
    /// Shots charged for this request (lets callers attribute cost per request).
    pub shots: u64,
}

/// What an execution substrate can do, advertised to the `qexec` execution service for
/// capability negotiation: a client can require a backend that natively batches, models
/// shot sampling, models device noise, or simulates stochastic trajectories, and the
/// executor matches (or rejects) the requirement at submission time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendCaps {
    /// Has a native batched fast path (compiled-circuit cache + scratch-state pool), so
    /// multi-request submissions amortize compilation and parallelize across states.
    pub batch: bool,
    /// Models finite-shot sampling noise on the charged observable.
    pub shots: bool,
    /// Models device noise (analytic attenuation or simulated error channels).
    pub noise: bool,
    /// Simulates noise by stochastic Pauli-trajectory rollouts (keyed per evaluation
    /// by the counter-based `qrng` streams, so trajectory schedules are independent of
    /// execution order).
    pub trajectories: bool,
    /// Evaluations are **idempotent**: re-executing a stream-carrying request consumes
    /// no cross-request mutable state, so the execution service may retry a failed job
    /// — or execute a half-failed batch twice — without changing any *other* job's
    /// result.  True for the exact backends, and since the counter-based `qrng`
    /// rework also for the stochastic ones: their draws are pure functions of
    /// `(seed policy, request stream, counter)`, never of what executed before.
    pub retry_safe: bool,
}

impl BackendCaps {
    /// Whether this capability set satisfies every capability required by `req`.
    pub fn satisfies(&self, req: &BackendCaps) -> bool {
        self.first_missing(req).is_none()
    }

    /// The first required capability missing from `self`, if any (for error reporting).
    pub fn first_missing(&self, req: &BackendCaps) -> Option<&'static str> {
        if req.batch && !self.batch {
            Some("batch")
        } else if req.shots && !self.shots {
            Some("shots")
        } else if req.noise && !self.noise {
            Some("noise")
        } else if req.trajectories && !self.trajectories {
            Some("trajectories")
        } else if req.retry_safe && !self.retry_safe {
            Some("retry_safe")
        } else {
            None
        }
    }
}

/// A quantum-execution substrate.
pub trait Backend {
    /// Prepares `|ψ(θ)⟩ = U(θ)|init⟩` once, charges shots for estimating `charged_op`, and
    /// additionally returns exact "tracking" expectations for each operator in `free_ops`
    /// at zero shot cost.
    ///
    /// Returns `(charged_value, free_values)`.
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>);

    /// Evaluates a whole batch of requests, in request order.
    ///
    /// The default implementation is a serial loop over [`Backend::evaluate`], so every
    /// backend supports batching; the dense statevector backends override it with a
    /// compiled-circuit + scratch-pool implementation that prepares the batch's states
    /// concurrently (see the module docs).  Implementations must preserve request-order
    /// semantics (shot charging, RNG consumption) so batched and serial execution yield
    /// identical results.
    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        default_serial_batch(self, requests)
    }

    /// Evaluates `op` on the prepared state **without charging any shots**.
    ///
    /// Used for metric probes (fidelity-vs-shots histories) and for TreeVQA's
    /// post-processing step, both of which the paper treats as classical recombination of
    /// already-logged data rather than additional quantum execution.
    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64;

    /// Total shots charged so far.
    fn shots_used(&self) -> u64;

    /// Resets the shot counter (used when reusing a backend across experiment arms).
    fn reset_shots(&mut self);

    /// Shots charged per Pauli term per evaluation (the paper's 4096 constant by default).
    fn shots_per_pauli(&self) -> u64;

    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// The capabilities this backend advertises to the execution service (default: none
    /// beyond plain evaluation — conservative for third-party implementations).
    fn capabilities(&self) -> BackendCaps {
        BackendCaps::default()
    }

    /// Discards every rebuildable internal structure (compiled-circuit caches, scratch
    /// statevector pools) so the next evaluation rebuilds them from scratch.
    ///
    /// The execution service calls this on a backend it has **quarantined** after a
    /// driver panic, before probing it with a canary job: a panic may have unwound
    /// mid-kernel and left scratch state partially written, so recovery must not trust
    /// anything derived.  Results are unaffected — caches and pools only amortize work.
    /// The default is a no-op for backends that hold no rebuildable state.
    fn recover(&mut self) {}
}

/// Maximum number of scratch statevectors live at once in a batched evaluation; larger
/// batches are processed in chunks of this size (request order is preserved).  Tune with
/// the `VQA_BATCH_CHUNK` environment variable (read once per process, minimum 1).
pub fn batch_chunk() -> usize {
    use std::sync::OnceLock;
    static CHUNK: OnceLock<usize> = OnceLock::new();
    *CHUNK.get_or_init(|| {
        std::env::var("VQA_BATCH_CHUNK")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(16)
    })
}

/// A tiny most-recently-used cache of per-circuit derived data, keyed by circuit
/// equality.
///
/// Optimizer loops evaluate one ansatz at thousands of parameter vectors, so the common
/// case is a permanent hit on the front entry (one O(gates) equality check per call).
/// The capacity is a handful rather than one because mitigation wrappers rotate between
/// a few fixed circuits per logical evaluation (ZNE's 1×/3×/5× gate foldings); an LRU of
/// that depth keeps each folding's compilation (and trajectory-sampler construction)
/// amortized instead of thrashing.
#[derive(Debug)]
pub(crate) struct CircuitCache<V> {
    /// Most-recently-used first.
    entries: Vec<(Circuit, V)>,
    capacity: usize,
}

/// Default cache depth of the dense backends: enough for every folding of a ZNE ladder
/// up to seven scales plus the unfolded probe circuit.  A mitigation wrapper rotating
/// through more circuits per logical evaluation than the capacity minus one would turn
/// every access into a miss (recompiling per scale), so `ZneBackend::with_scales`
/// documents this coupling; longer ladders still compute correctly, just without the
/// amortization.
pub(crate) const DEFAULT_CIRCUIT_CACHE_CAPACITY: usize = 8;

/// Capacity of the dense backends' compiled-circuit (and noise-plan) LRU caches.
///
/// Tune with the `VQA_COMPILED_CACHE` environment variable (read once per process,
/// minimum 1, default [`struct@std::sync::OnceLock`]-cached 8): raise it when a workload
/// rotates through many distinct circuits per logical evaluation (long ZNE folding
/// ladders, mixed-ansatz job streams through one executor backend), lower it to bound
/// memory when circuits are huge.  Capacity only affects amortization, never results.
pub fn circuit_cache_capacity() -> usize {
    use std::sync::OnceLock;
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("VQA_COMPILED_CACHE")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CIRCUIT_CACHE_CAPACITY)
    })
}

/// Process-wide circuit-cache hit/miss tallies, recorded only when observability is on
/// ([`qobs::enabled`]) so the disabled path stays branch-plus-nothing.
static CACHE_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static CACHE_MISSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// `(hits, misses)` across every backend's circuit-derived-data cache (compiled
/// circuits, trajectory plans) since process start.
///
/// Only populated when process-wide observability is on (`QOBS=1` or
/// [`qobs::set_enabled`]); always `(0, 0)` otherwise.  A low hit rate under a mixed
/// job stream is the signal to raise `VQA_COMPILED_CACHE`
/// ([`circuit_cache_capacity`]).
pub fn circuit_cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(std::sync::atomic::Ordering::Relaxed),
        CACHE_MISSES.load(std::sync::atomic::Ordering::Relaxed),
    )
}

impl<V> CircuitCache<V> {
    pub(crate) fn new(capacity: usize) -> Self {
        CircuitCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached value for `circuit`, building it with `make` on a miss (and
    /// evicting the least-recently-used entry past capacity).
    pub(crate) fn get_or_insert_with(
        &mut self,
        circuit: &Circuit,
        make: impl FnOnce(&Circuit) -> V,
    ) -> &V {
        if let Some(pos) = self.entries.iter().position(|(c, _)| c == circuit) {
            if qobs::enabled() {
                CACHE_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            let entry = self.entries.remove(pos);
            self.entries.insert(0, entry);
        } else {
            if qobs::enabled() {
                CACHE_MISSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            let value = make(circuit);
            self.entries.insert(0, (circuit.clone(), value));
            self.entries.truncate(self.capacity);
        }
        &self.entries[0].1
    }

    /// Drops every entry (quarantine recovery rebuilds derived data from scratch).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The dense backends' compiled-circuit cache.
#[derive(Debug)]
struct CompiledCache {
    inner: CircuitCache<CompiledCircuit>,
}

impl Default for CompiledCache {
    fn default() -> Self {
        CompiledCache {
            inner: CircuitCache::new(circuit_cache_capacity()),
        }
    }
}

impl CompiledCache {
    fn get(&mut self, circuit: &Circuit) -> &CompiledCircuit {
        self.inner
            .get_or_insert_with(circuit, CompiledCircuit::compile)
    }

    /// Drops every cached compilation (quarantine recovery; see [`Backend::recover`]).
    fn clear(&mut self) {
        self.inner.clear();
    }
}

/// A pool of reusable scratch statevectors, one per in-flight batch request.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    states: Vec<Statevector>,
}

impl ScratchPool {
    /// Makes at least `count` scratch states of the right register size available.
    fn ensure(&mut self, count: usize, num_qubits: usize) {
        self.states.retain(|s| s.num_qubits() == num_qubits);
        while self.states.len() < count {
            self.states.push(Statevector::zero_state(num_qubits));
        }
    }

    /// Direct access for single-state callers (grown on demand).
    pub(crate) fn state(&mut self, num_qubits: usize) -> &mut Statevector {
        self.ensure(1, num_qubits);
        &mut self.states[0]
    }

    /// Frees every pooled state (quarantine recovery: a mid-kernel unwind may have left
    /// a scratch state partially written; the pool regrows on demand).
    pub(crate) fn clear(&mut self) {
        self.states.clear();
    }
}

/// Runs `work(i, state_i)` for `i in 0..count` over the scratch pool, choosing between
/// across-state parallelism (small registers, large batches: one worker per scratch
/// state, kernels pinned serial via `qop::par::serial_scope`) and the serial loop whose
/// kernels parallelize within each state — the same `QSIM_PAR_THRESHOLD`-driven policy
/// described in the module docs.  Results come back in index order.
///
/// This is the shared engine under every dense batched backend: the exact/sampled
/// backends map indices to batch requests, the trajectory-noise backend maps them to
/// (request, trajectory) pairs.
pub(crate) fn run_indexed_chunk<T, F>(
    count: usize,
    num_qubits: usize,
    pool: &mut ScratchPool,
    work: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Statevector) -> T + Sync,
{
    pool.ensure(count, num_qubits);
    let dim = 1usize << num_qubits;
    let threshold = qsim::parallel_threshold();
    let across_states = count >= 2
        && threshold != 0
        && dim < threshold
        && count * dim >= threshold
        && rayon::current_num_threads() > 1;
    if across_states {
        let slots = SendPtr(pool.states.as_mut_ptr());
        (0..count)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                // Workers own their threads: every kernel `work` reaches (including
                // multi-term expectations, which would otherwise gate on
                // `num_terms × dim` and could cross the threshold) is pinned serial so
                // the two parallelism levels cannot nest.
                qop::par::serial_scope(|| {
                    // SAFETY: each index i is visited by exactly one worker and maps to
                    // the distinct pool entry i, which outlives the parallel region.
                    let state = unsafe { &mut *slots.add(i) };
                    work(i, state)
                })
            })
            .collect()
    } else {
        pool.states
            .iter_mut()
            .take(count)
            .enumerate()
            .map(|(i, state)| work(i, state))
            .collect()
    }
}

/// Prepares `|ψ(θ)⟩` for `req` into `state` and returns the exact charged and free
/// expectations.
fn evaluate_exact(
    compiled: &CompiledCircuit,
    req: &EvalRequest<'_>,
    state: &mut Statevector,
) -> (f64, Vec<f64>) {
    req.initial.prepare_into(state);
    compiled.execute_in_place(req.params, state);
    let charged = req.charged_op.expectation(state);
    let free = req
        .free_ops
        .iter()
        .map(|op| op.expectation(state))
        .collect();
    (charged, free)
}

/// Runs one chunk of same-circuit requests, preparing request `i`'s final state into
/// `pool.states[i]` and reducing it with `finish` (which computes whatever per-request
/// readout the backend needs — expectations are state-sized work, so they belong inside
/// this, potentially parallel, region).  Results are returned in request order.
///
/// Chooses between across-state parallelism (small registers: one thread per scratch
/// state) and within-state parallelism (large registers: the gate kernels split each
/// state across threads) based on the shared `QSIM_PAR_THRESHOLD` knob, so the two
/// regimes never nest.
fn run_chunk_with<T, F>(
    compiled: &CompiledCircuit,
    chunk: &[EvalRequest<'_>],
    pool: &mut ScratchPool,
    finish: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&EvalRequest<'_>, &Statevector) -> T + Sync,
{
    // Bind the diagonal passes once for the whole chunk when the chunk's bindings
    // resolve them identically (always for fixed-angle layers; for QAOA batches,
    // whenever only non-diagonal parameters vary between candidates).  Arithmetic-
    // identical to per-request binding, so batched-equals-serial is unaffected.
    let params_list: Vec<&[f64]> = chunk.iter().map(|r| r.params).collect();
    let tables = compiled.prepare_batch_tables(&params_list);
    run_indexed_chunk(chunk.len(), compiled.num_qubits(), pool, |i, state| {
        let req = &chunk[i];
        req.initial.prepare_into(state);
        compiled.execute_in_place_cached(req.params, state, &tables);
        finish(req, state)
    })
}

/// The shared circuit of a batch, if all requests reference the same one (pointer
/// equality short-circuits the structural comparison).
pub(crate) fn uniform_circuit<'a>(requests: &[EvalRequest<'a>]) -> Option<&'a Circuit> {
    let first = requests.first()?.circuit;
    requests
        .iter()
        .all(|r| std::ptr::eq(r.circuit, first) || r.circuit == first)
        .then_some(first)
}

/// Exact statevector backend: no sampling noise, but shots are still charged according to
/// the paper's cost model.  This is the configuration behind all noiseless results.
#[derive(Debug)]
pub struct StatevectorBackend {
    shots_per_pauli: u64,
    ledger: ShotLedger,
    cache: CompiledCache,
    pool: ScratchPool,
}

impl StatevectorBackend {
    /// Creates a backend with the paper's default of 4096 shots per Pauli term.
    pub fn new() -> Self {
        Self::with_shots(qsim::DEFAULT_SHOTS_PER_PAULI)
    }

    /// Creates a backend with an explicit shots-per-Pauli constant.
    pub fn with_shots(shots_per_pauli: u64) -> Self {
        StatevectorBackend {
            shots_per_pauli,
            ledger: ShotLedger::new(),
            cache: CompiledCache::default(),
            pool: ScratchPool::default(),
        }
    }
}

impl Default for StatevectorBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot state preparation (kept for tests and ad-hoc callers; the backends use their
/// compiled-circuit cache and scratch pool to avoid per-evaluation work).
#[cfg(test)]
fn prepare_state(circuit: &Circuit, params: &[f64], initial: &InitialState) -> Statevector {
    let init = initial.prepare(circuit.num_qubits());
    qsim::run_circuit(circuit, params, &init)
}

impl Backend for StatevectorBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let compiled = self.cache.get(circuit);
        self.pool.ensure(1, circuit.num_qubits());
        let req = EvalRequest {
            circuit,
            params,
            initial,
            charged_op,
            free_ops,
            stream: None,
        };
        let (charged, free) = evaluate_exact(compiled, &req, &mut self.pool.states[0]);
        self.ledger
            .charge_evaluation(self.shots_per_pauli, charged_op.num_terms());
        (charged, free)
    }

    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        let Some(circuit) = uniform_circuit(requests) else {
            // Mixed-circuit batches take the serial path (each request still runs
            // through the compiled cache via `evaluate`).
            return default_serial_batch(self, requests);
        };
        let compiled = self.cache.get(circuit);
        let mut results = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(batch_chunk()) {
            let exact = run_chunk_with(compiled, chunk, &mut self.pool, |req, state| {
                let charged = req.charged_op.expectation(state);
                let free: Vec<f64> = req
                    .free_ops
                    .iter()
                    .map(|op| op.expectation(state))
                    .collect();
                (charged, free)
            });
            for (req, (charged, free)) in chunk.iter().zip(exact) {
                self.ledger
                    .charge_evaluation(self.shots_per_pauli, req.charged_op.num_terms());
                results.push(EvalResult {
                    charged,
                    free,
                    shots: self.shots_per_pauli * req.charged_op.num_terms() as u64,
                });
            }
        }
        results
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        let compiled = self.cache.get(circuit);
        self.pool.ensure(1, circuit.num_qubits());
        let state = &mut self.pool.states[0];
        initial.prepare_into(state);
        compiled.execute_in_place(params, state);
        op.expectation(state)
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "statevector"
    }

    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            batch: true,
            // Exact evaluation holds no cross-request state: retries are bit-identical.
            retry_safe: true,
            ..BackendCaps::default()
        }
    }

    fn recover(&mut self) {
        self.cache.clear();
        self.pool.clear();
    }
}

/// The one serial batch loop: the [`Backend::evaluate_batch`] trait default delegates
/// here, and overriding implementations reuse it for their fallback paths (mixed-circuit
/// batches), so the request-order semantics live in exactly one place.
pub(crate) fn default_serial_batch<B: Backend + ?Sized>(
    backend: &mut B,
    requests: &[EvalRequest<'_>],
) -> Vec<EvalResult> {
    requests
        .iter()
        .map(|r| {
            let before = backend.shots_used();
            let (charged, free) =
                backend.evaluate(r.circuit, r.params, r.initial, r.charged_op, r.free_ops);
            EvalResult {
                charged,
                free,
                shots: backend.shots_used() - before,
            }
        })
        .collect()
}

/// Shot-sampled statevector backend: the charged observable receives per-term binomial
/// sampling noise matching the allotted shots; tracking observables remain exact.
///
/// Sampling noise is drawn from counter-based `qrng` streams: each request's draws are
/// keyed by `(seed policy, request stream)`, where the stream is the request's
/// [`EvalRequest::stream`] if pinned (the execution service pins one per job) or the
/// instance's next evaluation-order stream otherwise.  A request's noise therefore
/// never depends on what executed before it — the property behind the executor's
/// schedule-independent determinism and this backend's `retry_safe` capability.
#[derive(Debug)]
pub struct SampledBackend {
    shots_per_pauli: u64,
    ledger: ShotLedger,
    policy: SeedPolicy,
    /// Evaluation-order fallback counter, advanced only by stream-less requests.
    evals_issued: u64,
    cache: CompiledCache,
    pool: ScratchPool,
}

impl SampledBackend {
    /// Creates a sampled backend from a raw RNG seed.
    ///
    /// Thin wrapper over [`SampledBackend::with_policy`] with
    /// [`SeedPolicy::legacy`]; prefer the typed form in new code.
    pub fn new(shots_per_pauli: u64, seed: u64) -> Self {
        Self::with_policy(shots_per_pauli, SeedPolicy::legacy(seed))
    }

    /// Creates a sampled backend with a typed seeding policy.
    pub fn with_policy(shots_per_pauli: u64, policy: SeedPolicy) -> Self {
        SampledBackend {
            shots_per_pauli,
            ledger: ShotLedger::new(),
            policy,
            evals_issued: 0,
            cache: CompiledCache::default(),
            pool: ScratchPool::default(),
        }
    }

    /// The backend's seeding policy.
    pub fn seed_policy(&self) -> SeedPolicy {
        self.policy
    }

    /// The draw stream of `request`: its pinned stream, or the next
    /// evaluation-order fallback stream (advancing the instance counter).
    fn resolve_stream(&mut self, stream: Option<StreamId>) -> StreamId {
        stream.unwrap_or_else(|| {
            let s = StreamId::for_eval(self.evals_issued);
            self.evals_issued += 1;
            s
        })
    }

    /// Evaluates one request end to end (used by both the serial and the
    /// mixed-circuit fallback paths, so streams are honored everywhere).
    fn eval_one(&mut self, req: &EvalRequest<'_>) -> EvalResult {
        let mut rng = self.policy.rng(self.resolve_stream(req.stream));
        let compiled = self.cache.get(req.circuit);
        self.pool.ensure(1, req.circuit.num_qubits());
        let state = &mut self.pool.states[0];
        req.initial.prepare_into(state);
        compiled.execute_in_place(req.params, state);
        self.ledger
            .charge_evaluation(self.shots_per_pauli, req.charged_op.num_terms());
        let state = &self.pool.states[0];
        let charged =
            analytic_sampled_expectation(req.charged_op, state, self.shots_per_pauli, &mut rng);
        let free = req
            .free_ops
            .iter()
            .map(|op| op.expectation(state))
            .collect();
        EvalResult {
            charged,
            free,
            shots: self.shots_per_pauli * req.charged_op.num_terms() as u64,
        }
    }
}

impl Backend for SampledBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let result = self.eval_one(&EvalRequest {
            circuit,
            params,
            initial,
            charged_op,
            free_ops,
            stream: None,
        });
        (result.charged, result.free)
    }

    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        let Some(circuit) = uniform_circuit(requests) else {
            // Mixed-circuit fallback: the per-request path honors pinned streams too.
            return requests.iter().map(|r| self.eval_one(r)).collect();
        };
        // Resolve every request's draw stream up front, in request order, so
        // stream-less requests consume fallback streams exactly as the serial loop
        // would — while stream-carrying requests stay order-independent.
        let keys: Vec<u64> = requests
            .iter()
            .map(|r| {
                let stream = self.resolve_stream(r.stream);
                self.policy.key(stream)
            })
            .collect();
        let compiled = self.cache.get(circuit);
        let mut results = Vec::with_capacity(requests.len());
        for (chunk, chunk_keys) in requests
            .chunks(batch_chunk())
            .zip(keys.chunks(batch_chunk()))
        {
            // The exact per-term expectations (the state-sized work) are computed inside
            // the potentially parallel chunk region; the Gaussian noise draws afterwards
            // are keyed per request, so they are identical whether the batch is chunked,
            // parallel, reordered, or replayed serially.
            let exact = run_chunk_with(compiled, chunk, &mut self.pool, |req, state| {
                let terms = qsim::exact_term_expectations(req.charged_op, state);
                let free: Vec<f64> = req
                    .free_ops
                    .iter()
                    .map(|op| op.expectation(state))
                    .collect();
                (terms, free)
            });
            for ((req, (terms, free)), &key) in chunk.iter().zip(exact).zip(chunk_keys) {
                self.ledger
                    .charge_evaluation(self.shots_per_pauli, req.charged_op.num_terms());
                let mut rng = CounterRng::new(key);
                let charged = qsim::analytic_sampled_from_expectations(
                    req.charged_op,
                    &terms,
                    self.shots_per_pauli,
                    &mut rng,
                );
                results.push(EvalResult {
                    charged,
                    free,
                    shots: self.shots_per_pauli * req.charged_op.num_terms() as u64,
                });
            }
        }
        results
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        let compiled = self.cache.get(circuit);
        self.pool.ensure(1, circuit.num_qubits());
        let state = &mut self.pool.states[0];
        initial.prepare_into(state);
        compiled.execute_in_place(params, state);
        op.expectation(state)
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "sampled"
    }

    fn capabilities(&self) -> BackendCaps {
        // Retry-safe since the counter-based rework: a request's draws are keyed by
        // its stream, so re-executing it cannot shift any other request's draws.
        BackendCaps {
            batch: true,
            shots: true,
            retry_safe: true,
            ..BackendCaps::default()
        }
    }

    fn recover(&mut self) {
        self.cache.clear();
        self.pool.clear();
    }
}

/// Noisy backend: the analytic device-noise attenuation of `qsim::noise` is applied to the
/// charged observable on top of shot sampling; tracking observables are attenuated but not
/// sampled.
#[derive(Debug)]
pub struct NoisyBackend {
    shots_per_pauli: u64,
    ledger: ShotLedger,
    policy: SeedPolicy,
    /// Evaluation-order fallback counter, advanced only by stream-less requests.
    evals_issued: u64,
    model: NoiseModel,
    /// Ansatz repetitions used for the per-layer depolarizing channel.
    layers: usize,
    cache: CompiledCache,
    pool: ScratchPool,
}

impl NoisyBackend {
    /// Creates a noisy backend from a raw RNG seed.
    ///
    /// Thin wrapper over [`NoisyBackend::with_policy`] with
    /// [`SeedPolicy::legacy`]; prefer the typed form in new code.
    pub fn new(model: NoiseModel, layers: usize, shots_per_pauli: u64, seed: u64) -> Self {
        Self::with_policy(model, layers, shots_per_pauli, SeedPolicy::legacy(seed))
    }

    /// Creates a noisy backend with a typed seeding policy.
    pub fn with_policy(
        model: NoiseModel,
        layers: usize,
        shots_per_pauli: u64,
        policy: SeedPolicy,
    ) -> Self {
        NoisyBackend {
            shots_per_pauli,
            ledger: ShotLedger::new(),
            policy,
            evals_issued: 0,
            model,
            layers,
            cache: CompiledCache::default(),
            pool: ScratchPool::default(),
        }
    }

    /// The backend's noise model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    fn noisy_exact(&self, op: &PauliOp, state: &Statevector, profile: &CircuitNoiseProfile) -> f64 {
        qsim::noisy_expectation(op, state, &self.model, profile)
    }

    /// The draw stream of `request`: its pinned stream, or the next
    /// evaluation-order fallback stream (advancing the instance counter).
    fn resolve_stream(&mut self, stream: Option<StreamId>) -> StreamId {
        stream.unwrap_or_else(|| {
            let s = StreamId::for_eval(self.evals_issued);
            self.evals_issued += 1;
            s
        })
    }

    fn eval_one(&mut self, req: &EvalRequest<'_>) -> EvalResult {
        let mut rng = self.policy.rng(self.resolve_stream(req.stream));
        let compiled = self.cache.get(req.circuit);
        self.pool.ensure(1, req.circuit.num_qubits());
        let state = &mut self.pool.states[0];
        req.initial.prepare_into(state);
        compiled.execute_in_place(req.params, state);
        let profile = CircuitNoiseProfile::from_circuit(req.circuit, self.layers);
        self.ledger
            .charge_evaluation(self.shots_per_pauli, req.charged_op.num_terms());
        // Attenuate each term, then add shot noise on top of the attenuated value.
        let state = &self.pool.states[0];
        let attenuated = self.noisy_exact(req.charged_op, state, &profile);
        let shot_noise = {
            // Sample the *difference* between a sampled and an exact estimate of the
            // attenuated observable; reusing the analytic sampler on the ideal state and
            // rescaling keeps the variance model simple and unbiased.
            let sampled =
                analytic_sampled_expectation(req.charged_op, state, self.shots_per_pauli, &mut rng);
            sampled - req.charged_op.expectation(state)
        };
        let charged = attenuated + shot_noise;
        let free = req
            .free_ops
            .iter()
            .map(|op| self.noisy_exact(op, state, &profile))
            .collect();
        EvalResult {
            charged,
            free,
            shots: self.shots_per_pauli * req.charged_op.num_terms() as u64,
        }
    }
}

impl Backend for NoisyBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let result = self.eval_one(&EvalRequest {
            circuit,
            params,
            initial,
            charged_op,
            free_ops,
            stream: None,
        });
        (result.charged, result.free)
    }

    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        // No parallel fast path, but route through `eval_one` (rather than the trait's
        // stream-blind serial default) so pinned draw streams are honored.
        requests.iter().map(|r| self.eval_one(r)).collect()
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        // Probes report the *ideal* energy of the prepared state: fidelity metrics measure
        // how good the optimized state is, independent of readout-time attenuation.
        let compiled = self.cache.get(circuit);
        self.pool.ensure(1, circuit.num_qubits());
        let state = &mut self.pool.states[0];
        initial.prepare_into(state);
        compiled.execute_in_place(params, state);
        op.expectation(state)
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "noisy"
    }

    fn capabilities(&self) -> BackendCaps {
        // No batched fast path (`evaluate_batch` is a serial stream-aware loop, so
        // `batch` stays unset).  Retry-safe since the counter-based rework: shot noise
        // is keyed per request stream, never by what executed before.
        BackendCaps {
            shots: true,
            noise: true,
            retry_safe: true,
            ..BackendCaps::default()
        }
    }

    fn recover(&mut self) {
        self.cache.clear();
        self.pool.clear();
    }
}

/// Pauli-propagation backend for large registers (no dense state is ever formed).
///
/// Only basis-state initial states are supported; optionally applies the per-layer
/// depolarizing attenuation of the large-scale noisy study.  Uses the trait's default
/// (serial) batch implementation: the propagator is Heisenberg-picture, so there is no
/// shared prepared state to amortize.
#[derive(Debug)]
pub struct PauliPropagationBackend {
    propagator: PauliPropagator,
    shots_per_pauli: u64,
    ledger: ShotLedger,
    noise: Option<(NoiseModel, usize)>,
}

impl PauliPropagationBackend {
    /// Creates a noiseless Pauli-propagation backend.
    pub fn new(config: PauliPropagatorConfig, shots_per_pauli: u64) -> Self {
        PauliPropagationBackend {
            propagator: PauliPropagator::new(config),
            shots_per_pauli,
            ledger: ShotLedger::new(),
            noise: None,
        }
    }

    /// Adds a per-layer depolarizing noise model (Section 8.4's noisy configuration).
    pub fn with_noise(mut self, model: NoiseModel, layers: usize) -> Self {
        self.noise = Some((model, layers));
        self
    }

    fn expectation(&self, circuit: &Circuit, params: &[f64], op: &PauliOp, basis: u64) -> f64 {
        match &self.noise {
            None => self.propagator.expectation(circuit, params, op, basis),
            Some((model, layers)) => {
                // Attenuate each term according to its weight before propagation; the
                // depolarizing layer commutes with the (unitary) propagation for this
                // analytic model.
                let profile = CircuitNoiseProfile::from_circuit(circuit, *layers);
                let mut damped = PauliOp::zero(op.num_qubits());
                for t in op.terms() {
                    damped.add_term(
                        t.string,
                        t.coefficient * attenuation_factor(model, &profile, t.string.weight()),
                    );
                }
                self.propagator.expectation(circuit, params, &damped, basis)
            }
        }
    }
}

impl Backend for PauliPropagationBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let basis = initial
            .basis_index()
            .expect("the Pauli-propagation backend requires a basis-state initial state");
        self.ledger
            .charge_evaluation(self.shots_per_pauli, charged_op.num_terms());
        let charged = self.expectation(circuit, params, charged_op, basis);
        let free = free_ops
            .iter()
            .map(|op| self.expectation(circuit, params, op, basis))
            .collect();
        (charged, free)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        let basis = initial
            .basis_index()
            .expect("the Pauli-propagation backend requires a basis-state initial state");
        self.expectation(circuit, params, op, basis)
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "pauli-propagation"
    }

    fn capabilities(&self) -> BackendCaps {
        // Heisenberg-picture propagation is a pure function of the request: no RNG, no
        // cross-request state, so retries (and half-failed batch re-executions) cannot
        // perturb any other job.
        BackendCaps {
            noise: self.noise.is_some(),
            retry_safe: true,
            ..BackendCaps::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};

    fn demo_setup() -> (Circuit, Vec<f64>, PauliOp, PauliOp) {
        let circuit = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let params: Vec<f64> = (0..circuit.num_parameters())
            .map(|i| 0.1 * i as f64)
            .collect();
        let h1 = PauliOp::from_labels(3, &[("ZZI", -1.0), ("IXI", 0.3)]);
        let h2 = PauliOp::from_labels(3, &[("ZZI", -0.8), ("IIX", 0.2)]);
        (circuit, params, h1, h2)
    }

    #[test]
    fn statevector_backend_charges_shots_and_matches_exact() {
        let (circuit, params, h1, h2) = demo_setup();
        let mut backend = StatevectorBackend::with_shots(1000);
        let (charged, free) =
            backend.evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[&h2]);
        assert_eq!(backend.shots_used(), 1000 * h1.num_terms() as u64);
        let state = prepare_state(&circuit, &params, &InitialState::Basis(0));
        assert!((charged - h1.expectation(&state)).abs() < 1e-12);
        assert!((free[0] - h2.expectation(&state)).abs() < 1e-12);
        backend.reset_shots();
        assert_eq!(backend.shots_used(), 0);
        assert_eq!(backend.name(), "statevector");
    }

    #[test]
    fn batched_evaluation_matches_serial_exactly() {
        let (circuit, params, h1, h2) = demo_setup();
        for batch_size in [1usize, 2, 17] {
            let candidates: Vec<Vec<f64>> = (0..batch_size)
                .map(|k| params.iter().map(|p| p + 0.01 * k as f64).collect())
                .collect();
            let free_ops = [&h2];
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|c| EvalRequest {
                    circuit: &circuit,
                    params: c,
                    initial: &InitialState::Basis(0),
                    charged_op: &h1,
                    free_ops: &free_ops,
                    stream: None,
                })
                .collect();
            let mut batched = StatevectorBackend::with_shots(100);
            let results = batched.evaluate_batch(&requests);

            let mut serial = StatevectorBackend::with_shots(100);
            for (c, r) in candidates.iter().zip(&results) {
                let (charged, free) =
                    serial.evaluate(&circuit, c, &InitialState::Basis(0), &h1, &[&h2]);
                assert_eq!(charged, r.charged, "batch size {batch_size}");
                assert_eq!(free, r.free);
                assert_eq!(r.shots, 100 * h1.num_terms() as u64);
            }
            assert_eq!(batched.shots_used(), serial.shots_used());
        }
    }

    #[test]
    fn sampled_batch_reproduces_the_serial_rng_stream() {
        let (circuit, params, h1, _) = demo_setup();
        let candidates: Vec<Vec<f64>> = (0..5)
            .map(|k| params.iter().map(|p| p + 0.02 * k as f64).collect())
            .collect();
        let requests: Vec<EvalRequest<'_>> = candidates
            .iter()
            .map(|c| EvalRequest {
                circuit: &circuit,
                params: c,
                initial: &InitialState::Basis(0),
                charged_op: &h1,
                free_ops: &[],
                stream: None,
            })
            .collect();
        let mut batched = SampledBackend::new(256, 42);
        let results = batched.evaluate_batch(&requests);
        let mut serial = SampledBackend::new(256, 42);
        for (c, r) in candidates.iter().zip(&results) {
            let (charged, _) = serial.evaluate(&circuit, c, &InitialState::Basis(0), &h1, &[]);
            assert_eq!(charged, r.charged, "batched sampling must match serial");
        }
    }

    #[test]
    fn mixed_circuit_batches_fall_back_to_the_serial_path() {
        let (circuit_a, params, h1, _) = demo_setup();
        let circuit_b = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular).build();
        let params_b: Vec<f64> = (0..circuit_b.num_parameters()).map(|_| 0.05).collect();
        let requests = [
            EvalRequest {
                circuit: &circuit_a,
                params: &params,
                initial: &InitialState::Basis(0),
                charged_op: &h1,
                free_ops: &[],
                stream: None,
            },
            EvalRequest {
                circuit: &circuit_b,
                params: &params_b,
                initial: &InitialState::Basis(0),
                charged_op: &h1,
                free_ops: &[],
                stream: None,
            },
        ];
        let mut backend = StatevectorBackend::with_shots(10);
        let results = backend.evaluate_batch(&requests);
        assert_eq!(results.len(), 2);
        let expected_a =
            h1.expectation(&prepare_state(&circuit_a, &params, &InitialState::Basis(0)));
        let expected_b = h1.expectation(&prepare_state(
            &circuit_b,
            &params_b,
            &InitialState::Basis(0),
        ));
        assert!((results[0].charged - expected_a).abs() < 1e-12);
        assert!((results[1].charged - expected_b).abs() < 1e-12);
    }

    #[test]
    fn sampled_backend_is_noisy_but_unbiased() {
        let (circuit, params, h1, _) = demo_setup();
        let mut backend = SampledBackend::new(256, 7);
        let exact = {
            let state = prepare_state(&circuit, &params, &InitialState::Basis(0));
            h1.expectation(&state)
        };
        let n = 64;
        let mean: f64 = (0..n)
            .map(|_| {
                backend
                    .evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[])
                    .0
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - exact).abs() < 0.05,
            "sampled mean {mean} vs exact {exact}"
        );
        assert_eq!(backend.shots_used(), 256 * h1.num_terms() as u64 * n);
    }

    #[test]
    fn noisy_backend_attenuates_relative_to_ideal() {
        let (circuit, params, h1, _) = demo_setup();
        let ideal = {
            let state = prepare_state(&circuit, &params, &InitialState::Basis(0));
            h1.expectation(&state)
        };
        let model = NoiseModel::by_name("mumbai").unwrap();
        let mut backend = NoisyBackend::new(model, 5, 0, 3);
        // shots_per_pauli = 0 disables sampling noise in the analytic sampler, isolating
        // the attenuation effect.
        let (noisy, _) = backend.evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[]);
        assert!(noisy.abs() <= ideal.abs() + 1e-9);
        assert_eq!(backend.name(), "noisy");
    }

    #[test]
    fn pauli_propagation_backend_matches_statevector_for_small_systems() {
        let (circuit, params, h1, h2) = demo_setup();
        let mut dense = StatevectorBackend::with_shots(10);
        let mut prop = PauliPropagationBackend::new(
            PauliPropagatorConfig {
                max_weight: 3,
                coefficient_threshold: 1e-14,
                max_terms: 1_000_000,
            },
            10,
        );
        let (a, fa) = dense.evaluate(&circuit, &params, &InitialState::Basis(0b101), &h1, &[&h2]);
        let (b, fb) = prop.evaluate(&circuit, &params, &InitialState::Basis(0b101), &h1, &[&h2]);
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        assert!((fa[0] - fb[0]).abs() < 1e-7);
        assert_eq!(dense.shots_used(), prop.shots_used());
    }

    #[test]
    #[should_panic]
    fn pauli_propagation_rejects_superposition_initial_state() {
        let (circuit, params, h1, _) = demo_setup();
        let mut prop = PauliPropagationBackend::new(PauliPropagatorConfig::default(), 10);
        let _ = prop.evaluate(
            &circuit,
            &params,
            &InitialState::UniformSuperposition,
            &h1,
            &[],
        );
    }
}
