//! Classical initialization strategies.
//!
//! * [`cafqa_initialize`] — a CAFQA-style Clifford-point search (paper Section 8.5): ansatz
//!   angles are restricted to multiples of π/2 (where the hardware-efficient ansatz is a
//!   Clifford circuit), and a greedy coordinate-descent search over that discrete space is
//!   evaluated **classically** — no execution shots are ever charged.  The original CAFQA
//!   uses a stabilizer simulator for scalability; at this reproduction's register sizes the
//!   exact statevector plays that role (see DESIGN.md §3.5).
//! * [`red_qaoa_initial_point`] — a Red-QAOA-style initializer (paper Section 8.8): QAOA
//!   parameters are derived from a pooled (coarsened) graph and shared by all isomorphic
//!   instances of the family (DESIGN.md §3.6).

use crate::task::InitialState;
use qcircuit::{Circuit, QaoaAnsatz};
use qgraph::{pool_graph, WeightedGraph};
use qop::PauliOp;

/// Result of a CAFQA-style Clifford search.
#[derive(Clone, Debug)]
pub struct CafqaResult {
    /// The best Clifford-point parameters found.
    pub params: Vec<f64>,
    /// The (classically evaluated) energy at those parameters.
    pub energy: f64,
    /// Number of classical circuit evaluations performed.
    pub evaluations: usize,
}

/// Searches the Clifford points of an ansatz for the lowest energy of `target`.
///
/// Greedy coordinate descent: sweeps every parameter `sweeps` times, trying the four
/// Clifford angles `{0, π/2, π, 3π/2}` for each while holding the others fixed.  All
/// evaluations are classical (exact statevector); no shots are charged.
///
/// # Panics
///
/// Panics if the ansatz has no parameters.
pub fn cafqa_initialize(
    ansatz: &Circuit,
    initial: &InitialState,
    target: &PauliOp,
    sweeps: usize,
) -> CafqaResult {
    let num_params = ansatz.num_parameters();
    assert!(num_params > 0, "CAFQA needs a parameterized ansatz");
    let clifford_angles = [
        0.0,
        std::f64::consts::FRAC_PI_2,
        std::f64::consts::PI,
        1.5 * std::f64::consts::PI,
    ];

    let init_state = initial.prepare(ansatz.num_qubits());
    // Lower the ansatz once for the whole sweep (re-binding θ per evaluation is O(ops)),
    // and keep one scratch statevector that each evaluation re-prepares in place instead
    // of allocating a fresh state.
    let compiled = qsim::CompiledCircuit::compile(ansatz);
    let mut scratch = init_state.clone();
    let mut evaluate = |params: &[f64]| -> f64 {
        compiled.execute_into(params, &init_state, &mut scratch);
        target.expectation(&scratch)
    };

    let mut params = vec![0.0; num_params];
    let mut best_energy = evaluate(&params);
    let mut evaluations = 1usize;

    for _ in 0..sweeps.max(1) {
        let mut improved = false;
        for i in 0..num_params {
            let original = params[i];
            let mut best_angle = original;
            for &angle in &clifford_angles {
                if (angle - original).abs() < 1e-12 {
                    continue;
                }
                params[i] = angle;
                let energy = evaluate(&params);
                evaluations += 1;
                if energy < best_energy - 1e-12 {
                    best_energy = energy;
                    best_angle = angle;
                    improved = true;
                }
            }
            params[i] = best_angle;
        }
        if !improved {
            break;
        }
    }

    CafqaResult {
        params,
        energy: best_energy,
        evaluations,
    }
}

/// Derives a shared QAOA starting point from a pooled version of the graph, in the spirit
/// of Red-QAOA's graph-reduction warm start.
///
/// The pooled graph's mean edge weight rescales the phasing (γ) entries of the standard
/// linear-ramp schedule so that heavier instance families start with proportionally
/// smaller phase angles.
pub fn red_qaoa_initial_point(ansatz: &QaoaAnsatz, graph: &WeightedGraph) -> Vec<f64> {
    let pooled = pool_graph(graph);
    let base_mean = graph.mean_weight().max(1e-9);
    let pooled_mean = if pooled.graph.num_edges() > 0 {
        pooled.graph.mean_weight()
    } else {
        base_mean
    };
    // Heavier (pooled) weights → smaller initial phase angles, bounded to a sane range.
    let gamma_scale = (base_mean / pooled_mean).clamp(0.25, 1.0);

    let mut point = ansatz.ramp_parameters();
    match ansatz.style() {
        qcircuit::QaoaStyle::Standard => {
            for (i, v) in point.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v *= gamma_scale;
                }
            }
        }
        qcircuit::QaoaStyle::MultiAngle => {
            let m = ansatz.num_cost_terms();
            let n = ansatz.num_qubits();
            let stride = m + n;
            for (i, v) in point.iter_mut().enumerate() {
                if i % stride < m {
                    *v *= gamma_scale;
                }
            }
        }
    }
    point
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Entanglement, HardwareEfficientAnsatz, QaoaStyle};
    use qgraph::maxcut_cost_hamiltonian;
    use qop::{ground_energy, LanczosOptions};

    #[test]
    fn cafqa_improves_over_the_all_zero_point_for_ising() {
        // Transverse-field Ising at small field: the ground state is nearly classical, so
        // a Clifford point should capture most of the energy.
        let ham = qchem::transverse_field_ising(4, 1.0, 0.2);
        let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular).build();
        let initial = InitialState::Basis(0);

        let zero_energy = {
            let state = qsim::run_circuit(
                &ansatz,
                &vec![0.0; ansatz.num_parameters()],
                &initial.prepare(4),
            );
            ham.expectation(&state)
        };
        let result = cafqa_initialize(&ansatz, &initial, &ham, 2);
        assert!(result.energy <= zero_energy + 1e-9);
        let exact = ground_energy(&ham, &LanczosOptions::default());
        let fidelity = 1.0 - (exact - result.energy).abs() / exact.abs();
        assert!(fidelity > 0.9, "CAFQA fidelity too low: {fidelity}");
        assert!(result.evaluations > ansatz.num_parameters());
    }

    #[test]
    fn cafqa_parameters_are_clifford_angles() {
        let ham = qchem::transverse_field_ising(3, 1.0, 0.5);
        let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let result = cafqa_initialize(&ansatz, &InitialState::Basis(0), &ham, 1);
        for p in &result.params {
            let quarter_turns = p / std::f64::consts::FRAC_PI_2;
            assert!(
                (quarter_turns - quarter_turns.round()).abs() < 1e-9,
                "parameter {p} is not a Clifford angle"
            );
        }
    }

    #[test]
    fn red_qaoa_point_has_correct_length_and_scaling() {
        let graph = qgraph::ieee14_base_graph();
        let cost = maxcut_cost_hamiltonian(&graph);
        for style in [QaoaStyle::Standard, QaoaStyle::MultiAngle] {
            let ansatz = QaoaAnsatz::new(&cost, 2, style).unwrap();
            let point = red_qaoa_initial_point(&ansatz, &graph);
            assert_eq!(point.len(), ansatz.num_parameters());
            // Gamma entries must be no larger than the plain ramp's.
            let ramp = ansatz.ramp_parameters();
            assert!(point.iter().zip(ramp.iter()).all(|(a, b)| *a <= *b + 1e-12));
        }
    }

    #[test]
    fn red_qaoa_point_is_shared_across_isomorphic_instances() {
        // The initializer depends only on the base topology scale, so two instances from
        // the same family should receive identical starting points when built from the
        // same reference graph — this is how the paper uses Red-QAOA (one init for all).
        let family = qgraph::Ieee14Family::new(0.9, 1.1, 3);
        let graphs = family.graphs();
        let cost = maxcut_cost_hamiltonian(&graphs[0]);
        let ansatz = QaoaAnsatz::new(&cost, 1, QaoaStyle::MultiAngle).unwrap();
        let a = red_qaoa_initial_point(&ansatz, &graphs[0]);
        let b = red_qaoa_initial_point(&ansatz, &graphs[0]);
        assert_eq!(a, b);
    }
}
