//! The stochastic-trajectory noisy statevector backend.
//!
//! Where [`crate::NoisyBackend`] *analytically attenuates* expectations (cheap, but
//! blind to how errors actually propagate through the circuit), this backend **simulates
//! the noise**: each evaluation averages K stochastic Pauli trajectories, and each
//! trajectory is one ideal compiled execution with a pre-sampled Pauli error stream
//! replayed between compiled ops (`qnoise::TrajectorySampler` over
//! [`qsim::CompiledCircuit::noise_sites`]).  No density matrix is ever formed: memory
//! stays one statevector per in-flight trajectory, and the trajectory average is an
//! unbiased estimate of the density-matrix expectation.
//!
//! # Riding the batch engine
//!
//! K trajectories of one parameter binding are embarrassingly parallel rollouts of one
//! compiled program — exactly the shape the PR 2 batch engine was built for.  The
//! backend flattens a batch of requests into (request, trajectory) work items and drives
//! them through the same scratch-state pool and across/within-state parallel policy as
//! the exact backends ([`crate::backend::run_indexed_chunk`]).  Because all K
//! trajectories of a request share one parameter vector, the compiled circuit's
//! diagonal passes are bound **once per request** ([`qsim::CompiledCircuit::prepare_batch_tables`])
//! and reused by every trajectory — for QAOA-shaped ansätze this removes the whole
//! cost-layer binding (and its `O(√dim)` table construction) from K−1 of the K rollouts.
//!
//! # Determinism
//!
//! Results are deterministic and independent of batching/chunking/worker count — and,
//! since the counter-based `qrng` rework, of execution *order* too.  Each request's
//! randomness is keyed by its draw stream (its pinned [`EvalRequest::stream`], or the
//! backend's evaluation-order fallback stream for direct trait callers): the trajectory
//! stream seed is `policy.key(stream.substream(0))`, trajectory `t` of that stream is
//! seeded per the `qnoise` seeding contract, the trajectory average is summed in
//! trajectory order, and optional shot sampling draws from `stream.substream(1)`.  A
//! stream-carrying request therefore produces the same bits wherever and whenever it
//! runs, which is what lets the backend advertise `retry_safe`.

use crate::backend::{
    batch_chunk, circuit_cache_capacity, run_indexed_chunk, uniform_circuit, Backend, BackendCaps,
    CircuitCache, EvalRequest, EvalResult, ScratchPool,
};
use crate::task::InitialState;
use qcircuit::Circuit;
use qnoise::{readout_attenuation, PauliNoiseModel, TrajectorySampler};
use qop::PauliOp;
use qrng::{SeedPolicy, StreamId};
use qsim::{CompiledCircuit, PauliInsertion, ShotLedger};

/// Per-circuit derived data: the compiled form plus the noise model bound to its sites.
#[derive(Debug)]
struct NoisePlan {
    compiled: CompiledCircuit,
    sampler: TrajectorySampler,
}

/// Noisy statevector backend: stochastic Pauli-trajectory simulation over the compiled
/// batch engine (see the module docs).
///
/// The charged observable and all tracking observables are trajectory-averaged and then
/// readout-attenuated per term; with [`NoisyStatevectorBackend::with_shot_sampling`] the
/// charged value additionally receives the analytic shot-noise perturbation of
/// [`crate::SampledBackend`] on top of the trajectory mean.
#[derive(Debug)]
pub struct NoisyStatevectorBackend {
    model: PauliNoiseModel,
    trajectories: usize,
    policy: SeedPolicy,
    /// Evaluation-order fallback counter, advanced only by stream-less requests.
    evals_issued: u64,
    shots_per_pauli: u64,
    sample_shots: bool,
    ledger: ShotLedger,
    cache: CircuitCache<NoisePlan>,
    pool: ScratchPool,
}

impl NoisyStatevectorBackend {
    /// Creates a trajectory-noise backend.
    ///
    /// The trajectory count defaults to [`qnoise::default_trajectories`] (the
    /// `QNOISE_TRAJECTORIES` knob); shot charging follows the paper's per-Pauli-term
    /// model, and the returned backend reports exact trajectory means (no shot
    /// sampling — opt in with [`NoisyStatevectorBackend::with_shot_sampling`]).
    pub fn new(model: PauliNoiseModel, shots_per_pauli: u64, seed: u64) -> Self {
        Self::with_policy(model, shots_per_pauli, SeedPolicy::legacy(seed))
    }

    /// Creates a trajectory-noise backend with a typed seeding policy.
    pub fn with_policy(model: PauliNoiseModel, shots_per_pauli: u64, policy: SeedPolicy) -> Self {
        NoisyStatevectorBackend {
            model,
            trajectories: qnoise::default_trajectories(),
            policy,
            evals_issued: 0,
            shots_per_pauli,
            sample_shots: false,
            ledger: ShotLedger::new(),
            cache: CircuitCache::new(circuit_cache_capacity()),
            pool: ScratchPool::default(),
        }
    }

    /// The draw stream of `request`: its pinned stream, or the next
    /// evaluation-order fallback stream (advancing the instance counter).
    fn resolve_stream(&mut self, stream: Option<StreamId>) -> StreamId {
        stream.unwrap_or_else(|| {
            let s = StreamId::for_eval(self.evals_issued);
            self.evals_issued += 1;
            s
        })
    }

    /// Sets the trajectory count per evaluation (builder style, minimum 1).
    pub fn with_trajectories(mut self, trajectories: usize) -> Self {
        self.trajectories = trajectories.max(1);
        self
    }

    /// Adds analytic per-term shot sampling on the charged observable, on top of the
    /// trajectory mean (builder style).
    pub fn with_shot_sampling(mut self) -> Self {
        self.sample_shots = true;
        self
    }

    /// The backend's noise model.
    pub fn model(&self) -> &PauliNoiseModel {
        &self.model
    }

    /// Trajectories averaged per evaluation.
    pub fn trajectories(&self) -> usize {
        self.trajectories
    }

    /// Runs a uniform-circuit slice of requests; the caller guarantees every request
    /// references `circuit`.
    fn run_uniform(&mut self, circuit: &Circuit, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        // Per-request draw streams, resolved up front in request order (stream-less
        // requests consume the evaluation-order fallback exactly as a serial loop
        // would).  Substream 0 keys the trajectory schedules, substream 1 the optional
        // shot sampling — pure functions of the stream, independent of execution order.
        let streams: Vec<StreamId> = requests
            .iter()
            .map(|req| self.resolve_stream(req.stream))
            .collect();
        let eval_seeds: Vec<u64> = streams
            .iter()
            .map(|s| self.policy.key(s.substream(0)))
            .collect();
        let model = &self.model;
        let plan = self.cache.get_or_insert_with(circuit, |c| {
            let compiled = CompiledCircuit::compile(c);
            let sampler = TrajectorySampler::new(&compiled, model);
            NoisePlan { compiled, sampler }
        });
        // With no gate noise every trajectory is the identical ideal rollout, so one
        // rollout suffices (readout attenuation is analytic and per-term, not sampled).
        let k = if plan.sampler.is_trivial() {
            1
        } else {
            self.trajectories
        };
        let num_qubits = plan.compiled.num_qubits();

        // Per request: the diagonal passes bound once (all K trajectories share one
        // binding), and the per-evaluation noise stream seed.
        let tables: Vec<qsim::BatchTables> = requests
            .iter()
            .map(|req| plan.compiled.prepare_batch_tables(&[req.params]))
            .collect();

        // Accumulators: per request, per charged term and per free-op term, summed in
        // trajectory order (chunk iteration preserves flat item order, so the sums are
        // independent of chunk size and worker count).
        let mut charged_acc: Vec<Vec<f64>> = requests
            .iter()
            .map(|r| vec![0.0; r.charged_op.num_terms()])
            .collect();
        let mut free_acc: Vec<Vec<Vec<f64>>> = requests
            .iter()
            .map(|r| {
                r.free_ops
                    .iter()
                    .map(|op| vec![0.0; op.num_terms()])
                    .collect()
            })
            .collect();

        let total_items = requests.len() * k;
        let mut schedules: Vec<Vec<PauliInsertion>> = Vec::new();
        for chunk_start in (0..total_items).step_by(batch_chunk()) {
            let chunk_len = batch_chunk().min(total_items - chunk_start);
            // Pre-sample the chunk's insertion schedules serially (cheap: O(gates) per
            // trajectory, no state-sized work).
            schedules.resize_with(chunk_len, Vec::new);
            for (slot, item) in (chunk_start..chunk_start + chunk_len).enumerate() {
                let (req_idx, traj) = (item / k, (item % k) as u64);
                plan.sampler
                    .sample_into(eval_seeds[req_idx], traj, &mut schedules[slot]);
            }
            let chunk_results: Vec<(Vec<f64>, Vec<Vec<f64>>)> =
                run_indexed_chunk(chunk_len, num_qubits, &mut self.pool, |slot, state| {
                    let item = chunk_start + slot;
                    let req = &requests[item / k];
                    req.initial.prepare_into(state);
                    plan.compiled.execute_in_place_with_insertions(
                        req.params,
                        state,
                        &schedules[slot],
                        Some(&tables[item / k]),
                    );
                    let charged = qsim::exact_term_expectations(req.charged_op, state);
                    let free = req
                        .free_ops
                        .iter()
                        .map(|op| qsim::exact_term_expectations(op, state))
                        .collect();
                    (charged, free)
                });
            for (slot, (charged, free)) in chunk_results.into_iter().enumerate() {
                let req_idx = (chunk_start + slot) / k;
                for (acc, v) in charged_acc[req_idx].iter_mut().zip(charged) {
                    *acc += v;
                }
                for (op_acc, op_vals) in free_acc[req_idx].iter_mut().zip(free) {
                    for (acc, v) in op_acc.iter_mut().zip(op_vals) {
                        *acc += v;
                    }
                }
            }
        }

        // Reduce: trajectory mean → readout attenuation → (optional) shot sampling,
        // charging shots in request order.
        let readout = self.model.readout_flip;
        let mut results = Vec::with_capacity(requests.len());
        for (req_idx, req) in requests.iter().enumerate() {
            self.ledger
                .charge_evaluation(self.shots_per_pauli, req.charged_op.num_terms());
            let term_means: Vec<f64> = charged_acc[req_idx]
                .iter()
                .zip(req.charged_op.terms())
                .map(|(sum, term)| {
                    sum / k as f64 * readout_attenuation(readout, term.string.weight())
                })
                .collect();
            let charged = if self.sample_shots {
                let mut rng = self.policy.rng(streams[req_idx].substream(1));
                qsim::analytic_sampled_from_expectations(
                    req.charged_op,
                    &term_means,
                    self.shots_per_pauli,
                    &mut rng,
                )
            } else {
                term_means
                    .iter()
                    .zip(req.charged_op.terms())
                    .map(|(mean, term)| term.coefficient * mean)
                    .sum()
            };
            let free: Vec<f64> = req
                .free_ops
                .iter()
                .zip(&free_acc[req_idx])
                .map(|(op, sums)| {
                    op.terms()
                        .iter()
                        .zip(sums)
                        .map(|(term, sum)| {
                            term.coefficient
                                * (sum / k as f64)
                                * readout_attenuation(readout, term.string.weight())
                        })
                        .sum()
                })
                .collect();
            results.push(EvalResult {
                charged,
                free,
                shots: self.shots_per_pauli * req.charged_op.num_terms() as u64,
            });
        }
        results
    }
}

impl Backend for NoisyStatevectorBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let requests = [EvalRequest {
            circuit,
            params,
            initial,
            charged_op,
            free_ops,
            stream: None,
        }];
        let mut results = self.run_uniform(circuit, &requests);
        let result = results.pop().expect("one result per request");
        (result.charged, result.free)
    }

    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        let Some(circuit) = uniform_circuit(requests) else {
            // Mixed-circuit fallback: run each request as its own uniform slice (rather
            // than the trait's stream-blind serial default) so pinned streams survive.
            return requests
                .iter()
                .flat_map(|r| self.run_uniform(r.circuit, std::slice::from_ref(r)))
                .collect();
        };
        self.run_uniform(circuit, requests)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        // Probes report the ideal energy of the prepared state: fidelity metrics measure
        // optimization quality, independent of simulated hardware noise.  The cache
        // entry still carries the real model's sampler so a later noisy evaluation of
        // the same circuit hits it unchanged.
        let model = &self.model;
        let plan = self.cache.get_or_insert_with(circuit, |c| {
            let compiled = CompiledCircuit::compile(c);
            let sampler = TrajectorySampler::new(&compiled, model);
            NoisePlan { compiled, sampler }
        });
        let state = self.pool.state(circuit.num_qubits());
        initial.prepare_into(state);
        plan.compiled.execute_in_place(params, state);
        op.expectation(state)
    }

    fn shots_used(&self) -> u64 {
        self.ledger.total()
    }

    fn reset_shots(&mut self) {
        self.ledger.reset();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.shots_per_pauli
    }

    fn name(&self) -> &'static str {
        "noisy-trajectory"
    }

    fn capabilities(&self) -> BackendCaps {
        // Retry-safe since the counter-based rework: a stream-carrying request's
        // trajectory schedules and shot draws are pure functions of its stream, so
        // re-executing it cannot shift any other request's randomness.
        BackendCaps {
            batch: true,
            shots: self.sample_shots,
            noise: true,
            trajectories: true,
            retry_safe: true,
        }
    }

    fn recover(&mut self) {
        self.cache.clear();
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatevectorBackend;
    use qcircuit::{Entanglement, Gate, HardwareEfficientAnsatz};

    fn demo() -> (Circuit, Vec<f64>, PauliOp, PauliOp) {
        let circuit = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let params: Vec<f64> = (0..circuit.num_parameters())
            .map(|i| 0.1 * i as f64)
            .collect();
        let h1 = PauliOp::from_labels(3, &[("ZZI", -1.0), ("IXI", 0.3)]);
        let h2 = PauliOp::from_labels(3, &[("ZIZ", 0.7)]);
        (circuit, params, h1, h2)
    }

    #[test]
    fn zero_rate_trajectories_match_exact_backend_bitwise() {
        let (circuit, params, h1, h2) = demo();
        let mut noisy =
            NoisyStatevectorBackend::new(PauliNoiseModel::noiseless(), 100, 9).with_trajectories(3);
        let mut exact = StatevectorBackend::with_shots(100);
        let (nc, nf) = noisy.evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[&h2]);
        let (ec, ef) = exact.evaluate(&circuit, &params, &InitialState::Basis(0), &h1, &[&h2]);
        // Trajectory averaging of identical rollouts divides and re-sums, so demand
        // bit-identity of the underlying term values via the combined ones.
        assert_eq!(nc.to_bits(), ec.to_bits());
        assert_eq!(nf[0].to_bits(), ef[0].to_bits());
        assert_eq!(noisy.shots_used(), exact.shots_used());
    }

    #[test]
    fn batched_trajectory_evaluation_matches_serial_exactly() {
        let (circuit, params, h1, h2) = demo();
        let model = PauliNoiseModel::ibm_like("test", 0.02, 0.05, 0.01, 0.01);
        for batch_size in [1usize, 2, 17] {
            let candidates: Vec<Vec<f64>> = (0..batch_size)
                .map(|k| params.iter().map(|p| p + 0.01 * k as f64).collect())
                .collect();
            let free_ops = [&h2];
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|c| EvalRequest {
                    circuit: &circuit,
                    params: c,
                    initial: &InitialState::Basis(0),
                    charged_op: &h1,
                    free_ops: &free_ops,
                    stream: None,
                })
                .collect();
            let mut batched =
                NoisyStatevectorBackend::new(model.clone(), 50, 4).with_trajectories(7);
            let results = batched.evaluate_batch(&requests);
            let mut serial =
                NoisyStatevectorBackend::new(model.clone(), 50, 4).with_trajectories(7);
            for (c, r) in candidates.iter().zip(&results) {
                let (charged, free) =
                    serial.evaluate(&circuit, c, &InitialState::Basis(0), &h1, &free_ops);
                assert_eq!(charged.to_bits(), r.charged.to_bits(), "batch {batch_size}");
                assert_eq!(free[0].to_bits(), r.free[0].to_bits());
            }
            assert_eq!(batched.shots_used(), serial.shots_used());
        }
    }

    #[test]
    fn single_qubit_depolarizing_matches_analytic_channel() {
        // ⟨X⟩ on |+⟩ under one depolarizing gate channel: factor 1 − 4p/3.
        let p = 0.3;
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        let x = PauliOp::from_labels(1, &[("X", 1.0)]);
        let k = 20_000;
        let mut backend = NoisyStatevectorBackend::new(PauliNoiseModel::depolarizing(p, 0.0), 0, 5)
            .with_trajectories(k);
        let (value, _) = backend.evaluate(&circ, &[], &InitialState::Basis(0), &x, &[]);
        let expected = 1.0 - 4.0 * p / 3.0;
        // Each trajectory contributes ±1-ish; the mean's σ ≈ √(p/k) ≪ 0.02.
        assert!(
            (value - expected).abs() < 0.02,
            "trajectory mean {value} vs analytic {expected}"
        );
    }

    #[test]
    fn readout_attenuation_is_deterministic_per_term_weight() {
        let (circuit, params, _, _) = demo();
        let r = 0.04;
        let h = PauliOp::from_labels(3, &[("III", -2.0), ("ZII", 1.0), ("ZZZ", 0.5)]);
        let model = PauliNoiseModel::noiseless().with_readout(r);
        let mut noisy = NoisyStatevectorBackend::new(model, 0, 1).with_trajectories(2);
        let (nv, _) = noisy.evaluate(&circuit, &params, &InitialState::Basis(0), &h, &[]);
        let state_terms = {
            let mut s = qop::Statevector::zero_state(3);
            qsim::run_circuit_in_place(&circuit, &params, &mut s);
            qsim::exact_term_expectations(&h, &s)
        };
        let expected: f64 = h
            .terms()
            .iter()
            .zip(&state_terms)
            .map(|(t, &v)| t.coefficient * v * readout_attenuation(r, t.string.weight()))
            .sum();
        assert!((nv - expected).abs() < 1e-12);
    }

    #[test]
    fn probe_reports_ideal_energy_under_noise() {
        let (circuit, params, h1, _) = demo();
        let model = PauliNoiseModel::depolarizing(0.1, 0.2).with_readout(0.05);
        let mut noisy = NoisyStatevectorBackend::new(model, 0, 5).with_trajectories(4);
        let mut exact = StatevectorBackend::with_shots(0);
        let p_noisy = noisy.probe(&circuit, &params, &InitialState::Basis(0), &h1);
        let p_exact = exact.probe(&circuit, &params, &InitialState::Basis(0), &h1);
        assert_eq!(p_noisy.to_bits(), p_exact.to_bits());
    }
}
