//! Run configuration and result types for single-task VQA and the conventional
//! (baseline) multi-task runner.
//!
//! The *drivers* that produce these records moved to the `qexec` execution service
//! (`qexec::run_single_vqa` / `qexec::run_baseline`): optimizer candidates are submitted
//! as owned jobs to an executor client instead of threading a `&mut dyn Backend` by
//! hand.  This module keeps the plain-data configuration and result types, which belong
//! with the task/application vocabulary (and feed [`crate::metrics`]).

use qopt::OptimizerSpec;
use serde::{Deserialize, Serialize};

/// Configuration of a (single- or multi-task) VQA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VqaRunConfig {
    /// Maximum optimizer iterations per task.
    pub max_iterations: usize,
    /// The classical optimizer.
    pub optimizer: OptimizerSpec,
    /// Seed for the optimizer's stochastic components.
    pub seed: u64,
    /// Record a history entry (with an uncharged exact-energy probe) every this many
    /// iterations.  1 records every iteration; larger values reduce simulation overhead
    /// for long runs.
    pub record_every: usize,
}

impl Default for VqaRunConfig {
    fn default() -> Self {
        VqaRunConfig {
            max_iterations: 200,
            optimizer: OptimizerSpec::default_spsa(),
            seed: 1,
            record_every: 1,
        }
    }
}

/// One point of a run's convergence history.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Optimizer iteration index (0-based).
    pub iteration: usize,
    /// Cumulative shots charged by the backend up to and including this iteration.
    pub cumulative_shots: u64,
    /// The loss value the optimizer saw this iteration (may include sampling noise).
    pub loss: f64,
    /// The exact (uncharged probe) energy of the current parameters.
    pub exact_energy: f64,
    /// The best exact energy observed so far.
    pub best_energy: f64,
}

/// Result of optimizing one task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VqaRunResult {
    /// Label of the task this result belongs to.
    pub task_label: String,
    /// Final parameter vector.
    pub final_params: Vec<f64>,
    /// Exact energy at the final parameters.
    pub final_energy: f64,
    /// Best exact energy observed during the run.
    pub best_energy: f64,
    /// Shots charged by this run.
    pub shots_used: u64,
    /// Convergence history.
    pub history: Vec<IterationRecord>,
}

/// Result of the conventional baseline over a whole application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineRunResult {
    /// Per-task results, in task order.
    pub per_task: Vec<VqaRunResult>,
    /// Total shots charged across all tasks.
    pub total_shots: u64,
}

impl BaselineRunResult {
    /// Best exact energy per task, in task order.
    pub fn best_energies(&self) -> Vec<f64> {
        self.per_task.iter().map(|r| r.best_energy).collect()
    }
}
