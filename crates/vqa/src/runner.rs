//! Single-task VQA execution and the conventional (baseline) multi-task runner.
//!
//! The baseline of every experiment in the paper is "conventional VQA": each task of the
//! application is optimized independently with an equal allocation of shots
//! (Section 7.3).  [`run_single_vqa`] drives one task; [`run_baseline`] drives the whole
//! application and aggregates shot usage.

use crate::backend::{Backend, EvalRequest};
use crate::task::{InitialState, VqaApplication, VqaTask};
use qcircuit::Circuit;
use qopt::OptimizerSpec;
use serde::{Deserialize, Serialize};

/// Configuration of a (single- or multi-task) VQA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VqaRunConfig {
    /// Maximum optimizer iterations per task.
    pub max_iterations: usize,
    /// The classical optimizer.
    pub optimizer: OptimizerSpec,
    /// Seed for the optimizer's stochastic components.
    pub seed: u64,
    /// Record a history entry (with an uncharged exact-energy probe) every this many
    /// iterations.  1 records every iteration; larger values reduce simulation overhead
    /// for long runs.
    pub record_every: usize,
}

impl Default for VqaRunConfig {
    fn default() -> Self {
        VqaRunConfig {
            max_iterations: 200,
            optimizer: OptimizerSpec::default_spsa(),
            seed: 1,
            record_every: 1,
        }
    }
}

/// One point of a run's convergence history.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Optimizer iteration index (0-based).
    pub iteration: usize,
    /// Cumulative shots charged by the backend up to and including this iteration.
    pub cumulative_shots: u64,
    /// The loss value the optimizer saw this iteration (may include sampling noise).
    pub loss: f64,
    /// The exact (uncharged probe) energy of the current parameters.
    pub exact_energy: f64,
    /// The best exact energy observed so far.
    pub best_energy: f64,
}

/// Result of optimizing one task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VqaRunResult {
    /// Label of the task this result belongs to.
    pub task_label: String,
    /// Final parameter vector.
    pub final_params: Vec<f64>,
    /// Exact energy at the final parameters.
    pub final_energy: f64,
    /// Best exact energy observed during the run.
    pub best_energy: f64,
    /// Shots charged by this run.
    pub shots_used: u64,
    /// Convergence history.
    pub history: Vec<IterationRecord>,
}

/// Runs conventional VQA on a single task.
///
/// `initial_params` seeds the ansatz parameters (e.g. zeros for Hartree–Fock, a CAFQA
/// point, or parameters inherited from a parent TreeVQA cluster).
pub fn run_single_vqa(
    task: &VqaTask,
    ansatz: &Circuit,
    initial: &InitialState,
    initial_params: &[f64],
    backend: &mut dyn Backend,
    config: &VqaRunConfig,
) -> VqaRunResult {
    assert_eq!(
        initial_params.len(),
        ansatz.num_parameters(),
        "initial parameter vector does not match the ansatz"
    );
    let mut optimizer = config.optimizer.build(config.seed);
    let mut params = initial_params.to_vec();
    let shots_at_start = backend.shots_used();
    let mut history = Vec::new();
    let mut best_energy = f64::INFINITY;
    let record_every = config.record_every.max(1);

    for iteration in 0..config.max_iterations {
        // Drive the optimizer's propose/observe phases, submitting each phase's
        // candidates (SPSA's ± pair, a simplex build, …) as one backend batch so the
        // dense backends can prepare the states concurrently.  The phase protocol visits
        // the same candidates in the same order as the serial closure API, so
        // trajectories and shot accounting are unchanged.
        let stats = loop {
            let candidates = optimizer.propose(&params);
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|candidate| EvalRequest {
                    circuit: ansatz,
                    params: candidate,
                    initial,
                    charged_op: &task.hamiltonian,
                    free_ops: &[],
                })
                .collect();
            let results = backend.evaluate_batch(&requests);
            let values: Vec<f64> = results.iter().map(|r| r.charged).collect();
            if let Some(stats) = optimizer.observe(&mut params, &values) {
                break stats;
            }
        };

        if iteration % record_every == 0 || iteration + 1 == config.max_iterations {
            let exact_energy = backend.probe(ansatz, &params, initial, &task.hamiltonian);
            best_energy = best_energy.min(exact_energy);
            history.push(IterationRecord {
                iteration,
                cumulative_shots: backend.shots_used() - shots_at_start,
                loss: stats.loss,
                exact_energy,
                best_energy,
            });
        }
    }

    let final_energy = backend.probe(ansatz, &params, initial, &task.hamiltonian);
    best_energy = best_energy.min(final_energy);
    VqaRunResult {
        task_label: task.label.clone(),
        final_params: params,
        final_energy,
        best_energy,
        shots_used: backend.shots_used() - shots_at_start,
        history,
    }
}

/// Result of the conventional baseline over a whole application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineRunResult {
    /// Per-task results, in task order.
    pub per_task: Vec<VqaRunResult>,
    /// Total shots charged across all tasks.
    pub total_shots: u64,
}

impl BaselineRunResult {
    /// Best exact energy per task, in task order.
    pub fn best_energies(&self) -> Vec<f64> {
        self.per_task.iter().map(|r| r.best_energy).collect()
    }
}

/// Runs the conventional baseline: every task is optimized independently with an equal
/// iteration (and therefore shot) allocation.
///
/// `make_backend` is called once per task so that shot usage can be attributed per task;
/// typically it returns a freshly seeded backend of the same kind.
pub fn run_baseline(
    application: &VqaApplication,
    initial_params: &[f64],
    config: &VqaRunConfig,
    make_backend: &mut dyn FnMut(usize) -> Box<dyn Backend>,
) -> BaselineRunResult {
    let mut per_task = Vec::with_capacity(application.tasks.len());
    let mut total_shots = 0u64;
    for (index, task) in application.tasks.iter().enumerate() {
        let mut backend = make_backend(index);
        let mut task_config = config.clone();
        // Decorrelate optimizer randomness across tasks while staying deterministic.
        task_config.seed = config.seed.wrapping_add(index as u64).wrapping_mul(0x9E37);
        let result = run_single_vqa(
            task,
            &application.ansatz,
            &application.initial_state,
            initial_params,
            backend.as_mut(),
            &task_config,
        );
        total_shots += result.shots_used;
        per_task.push(result);
    }
    BaselineRunResult {
        per_task,
        total_shots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StatevectorBackend;
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};
    use qopt::SpsaConfig;

    fn tfim_task(h: f64) -> VqaTask {
        let ham = qchem::transverse_field_ising(3, 1.0, h);
        VqaTask::with_computed_reference(format!("TFIM h={h}"), h, ham)
    }

    fn demo_app() -> VqaApplication {
        let ansatz = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular).build();
        VqaApplication::new(
            "tfim-demo",
            vec![tfim_task(0.4), tfim_task(0.5)],
            ansatz,
            InitialState::Basis(0),
        )
    }

    fn fast_config(iters: usize) -> VqaRunConfig {
        VqaRunConfig {
            max_iterations: iters,
            optimizer: qopt::OptimizerSpec::Spsa(SpsaConfig {
                a: 0.25,
                ..Default::default()
            }),
            seed: 5,
            record_every: 1,
        }
    }

    #[test]
    fn single_vqa_improves_energy_and_charges_shots() {
        let app = demo_app();
        let task = &app.tasks[0];
        let mut backend = StatevectorBackend::with_shots(128);
        let zeros = vec![0.0; app.num_parameters()];
        let result = run_single_vqa(
            task,
            &app.ansatz,
            &app.initial_state,
            &zeros,
            &mut backend,
            &fast_config(150),
        );
        let initial_energy = result.history.first().unwrap().exact_energy;
        assert!(result.best_energy < initial_energy, "no improvement");
        assert!(result.shots_used > 0);
        // Fidelity against the exact ground state should be decent for this easy problem.
        let fid = task.fidelity(result.best_energy).unwrap();
        assert!(fid > 0.8, "fidelity {fid}");
        // History bookkeeping.
        assert_eq!(result.history.len(), 150);
        assert!(result
            .history
            .windows(2)
            .all(|w| w[1].cumulative_shots >= w[0].cumulative_shots));
        assert!(result
            .history
            .windows(2)
            .all(|w| w[1].best_energy <= w[0].best_energy + 1e-12));
    }

    #[test]
    fn record_every_thins_history() {
        let app = demo_app();
        let mut backend = StatevectorBackend::with_shots(16);
        let zeros = vec![0.0; app.num_parameters()];
        let mut cfg = fast_config(50);
        cfg.record_every = 10;
        let result = run_single_vqa(
            &app.tasks[0],
            &app.ansatz,
            &app.initial_state,
            &zeros,
            &mut backend,
            &cfg,
        );
        assert!(result.history.len() <= 7);
    }

    #[test]
    fn baseline_runs_every_task_and_sums_shots() {
        let app = demo_app();
        let zeros = vec![0.0; app.num_parameters()];
        let config = fast_config(60);
        let result = run_baseline(&app, &zeros, &config, &mut |i| {
            Box::new(StatevectorBackend::with_shots(64 + i as u64))
        });
        assert_eq!(result.per_task.len(), 2);
        let sum: u64 = result.per_task.iter().map(|r| r.shots_used).sum();
        assert_eq!(result.total_shots, sum);
        assert_eq!(result.best_energies().len(), 2);
        // Different tasks should have been given different optimizer seeds (results differ).
        assert_ne!(
            result.per_task[0].final_params, result.per_task[1].final_params,
            "per-task runs should not be identical"
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_initial_parameters_panic() {
        let app = demo_app();
        let mut backend = StatevectorBackend::new();
        let _ = run_single_vqa(
            &app.tasks[0],
            &app.ansatz,
            &app.initial_state,
            &[0.0; 3],
            &mut backend,
            &fast_config(5),
        );
    }
}
