//! VQA tasks and applications.
//!
//! Terminology follows the paper's Figure 1: a *VQA task* is one Hamiltonian to be solved
//! for its ground state (one molecular geometry, one sweep point, one MaxCut instance); a
//! *VQA application* is a family of such tasks whose solutions jointly form the
//! application's solution landscape (a potential-energy surface, a phase diagram, a family
//! of grid-partitioning problems).

use qcircuit::Circuit;
use qop::{ground_energy, LanczosOptions, PauliOp, Statevector};
use serde::{Deserialize, Serialize};

/// How the reference (initial) quantum state of the ansatz is prepared.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialState {
    /// A computational basis state (e.g. the Hartree–Fock determinant).
    Basis(u64),
    /// The uniform superposition `|+…+⟩` (prepared by the simulator, not by circuit gates).
    UniformSuperposition,
}

impl InitialState {
    /// Materializes the initial state on `num_qubits` qubits (dense backends only).
    pub fn prepare(&self, num_qubits: usize) -> Statevector {
        match *self {
            InitialState::Basis(b) => Statevector::basis_state(num_qubits, b),
            InitialState::UniformSuperposition => Statevector::uniform_superposition(num_qubits),
        }
    }

    /// Re-prepares the initial state into an existing vector of the right register size,
    /// allocation-free (the optimizer-inner-loop counterpart of [`InitialState::prepare`]).
    ///
    /// # Panics
    ///
    /// Panics if a basis index is out of range for the vector's register.
    pub fn prepare_into(&self, state: &mut Statevector) {
        match *self {
            InitialState::Basis(b) => state.set_basis_state(b),
            InitialState::UniformSuperposition => state.set_uniform_superposition(),
        }
    }

    /// The basis index if this is a basis state (Pauli-propagation backends can only start
    /// from product basis states).
    pub fn basis_index(&self) -> Option<u64> {
        match *self {
            InitialState::Basis(b) => Some(b),
            InitialState::UniformSuperposition => None,
        }
    }
}

/// One VQA task: a Hamiltonian plus bookkeeping metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VqaTask {
    /// Human-readable label, e.g. `"LiH @ 1.43 Å"`.
    pub label: String,
    /// The scalar sweep parameter that generated this task (bond length, field, load
    /// scale); used for reporting only.
    pub parameter: f64,
    /// The task Hamiltonian.
    pub hamiltonian: PauliOp,
    /// The exact ground-state energy, if known (used for fidelity metrics).
    pub reference_energy: Option<f64>,
}

impl VqaTask {
    /// Creates a task without a reference energy.
    pub fn new(label: impl Into<String>, parameter: f64, hamiltonian: PauliOp) -> Self {
        VqaTask {
            label: label.into(),
            parameter,
            hamiltonian,
            reference_energy: None,
        }
    }

    /// Creates a task and computes its exact reference energy with Lanczos (only sensible
    /// for dense-simulable register sizes).
    pub fn with_computed_reference(
        label: impl Into<String>,
        parameter: f64,
        hamiltonian: PauliOp,
    ) -> Self {
        let reference = ground_energy(&hamiltonian, &LanczosOptions::default());
        VqaTask {
            label: label.into(),
            parameter,
            hamiltonian,
            reference_energy: Some(reference),
        }
    }

    /// The relative error `|E_gs − E| / |E_gs|` of an achieved energy (paper Section 7.2).
    ///
    /// Returns `None` if no reference energy is available.
    pub fn relative_error(&self, energy: f64) -> Option<f64> {
        self.reference_energy.map(|gs| {
            let denom = gs.abs().max(1e-12);
            (gs - energy).abs() / denom
        })
    }

    /// The fidelity `F = 1 − ε` of an achieved energy (paper Section 7.2), clamped to
    /// `[0, 1]`.
    pub fn fidelity(&self, energy: f64) -> Option<f64> {
        self.relative_error(energy)
            .map(|e| (1.0 - e).clamp(0.0, 1.0))
    }
}

/// A VQA application: a family of related tasks sharing one ansatz and one initial state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VqaApplication {
    /// Application name (used in experiment reports).
    pub name: String,
    /// The member tasks.
    pub tasks: Vec<VqaTask>,
    /// The shared parameterized ansatz circuit.
    pub ansatz: Circuit,
    /// The shared reference state the ansatz is applied to.
    pub initial_state: InitialState,
}

impl VqaApplication {
    /// Creates an application.
    ///
    /// # Panics
    ///
    /// Panics if there are no tasks, or if any task's register size differs from the
    /// ansatz register size.
    pub fn new(
        name: impl Into<String>,
        tasks: Vec<VqaTask>,
        ansatz: Circuit,
        initial_state: InitialState,
    ) -> Self {
        assert!(!tasks.is_empty(), "an application needs at least one task");
        for t in &tasks {
            assert_eq!(
                t.hamiltonian.num_qubits(),
                ansatz.num_qubits(),
                "task '{}' register size does not match the ansatz",
                t.label
            );
        }
        VqaApplication {
            name: name.into(),
            tasks,
            ansatz,
            initial_state,
        }
    }

    /// Number of qubits of the shared register.
    pub fn num_qubits(&self) -> usize {
        self.ansatz.num_qubits()
    }

    /// Number of member tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of ansatz parameters.
    pub fn num_parameters(&self) -> usize {
        self.ansatz.num_parameters()
    }

    /// Computes (with Lanczos) and stores the reference energy of every task that does not
    /// have one yet.  Only call this for dense-simulable register sizes.
    pub fn compute_references(&mut self) {
        let opts = LanczosOptions::default();
        for task in &mut self.tasks {
            if task.reference_energy.is_none() {
                task.reference_energy = Some(ground_energy(&task.hamiltonian, &opts));
            }
        }
    }

    /// The minimum fidelity across all tasks for a vector of achieved energies (the
    /// paper's aggregate acceptance criterion: every task must meet the threshold).
    ///
    /// Returns `None` if any task lacks a reference energy.
    ///
    /// # Panics
    ///
    /// Panics if `energies.len() != num_tasks()`.
    pub fn min_fidelity(&self, energies: &[f64]) -> Option<f64> {
        assert_eq!(
            energies.len(),
            self.tasks.len(),
            "one energy per task required"
        );
        self.tasks
            .iter()
            .zip(energies)
            .map(|(t, &e)| t.fidelity(e))
            .try_fold(f64::INFINITY, |acc, f| f.map(|v| acc.min(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};

    fn tiny_task(label: &str, shift: f64) -> VqaTask {
        let h = PauliOp::from_labels(2, &[("ZZ", -1.0), ("XI", shift)]);
        VqaTask::with_computed_reference(label, shift, h)
    }

    #[test]
    fn fidelity_is_one_at_the_reference_energy() {
        let t = tiny_task("t", -0.3);
        let gs = t.reference_energy.unwrap();
        assert!((t.fidelity(gs).unwrap() - 1.0).abs() < 1e-12);
        assert!(t.fidelity(gs + 0.1).unwrap() < 1.0);
        assert!(t.relative_error(gs).unwrap() < 1e-12);
    }

    #[test]
    fn fidelity_clamps_to_unit_interval() {
        let t = tiny_task("t", -0.3);
        assert_eq!(t.fidelity(1e6), Some(0.0));
    }

    #[test]
    fn missing_reference_gives_none() {
        let h = PauliOp::from_labels(1, &[("Z", 1.0)]);
        let t = VqaTask::new("no-ref", 0.0, h);
        assert!(t.fidelity(0.0).is_none());
        assert!(t.relative_error(0.0).is_none());
    }

    #[test]
    fn application_validates_register_sizes() {
        let ansatz = HardwareEfficientAnsatz::new(2, 1, Entanglement::Linear).build();
        let app = VqaApplication::new(
            "demo",
            vec![tiny_task("a", 0.1), tiny_task("b", 0.2)],
            ansatz,
            InitialState::Basis(0),
        );
        assert_eq!(app.num_tasks(), 2);
        assert_eq!(app.num_qubits(), 2);
        assert!(app.num_parameters() > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_register_size_panics() {
        let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let _ = VqaApplication::new(
            "bad",
            vec![tiny_task("a", 0.1)],
            ansatz,
            InitialState::Basis(0),
        );
    }

    #[test]
    fn min_fidelity_takes_the_worst_task() {
        let ansatz = HardwareEfficientAnsatz::new(2, 1, Entanglement::Linear).build();
        let app = VqaApplication::new(
            "demo",
            vec![tiny_task("a", 0.1), tiny_task("b", 0.4)],
            ansatz,
            InitialState::Basis(0),
        );
        let refs: Vec<f64> = app
            .tasks
            .iter()
            .map(|t| t.reference_energy.unwrap())
            .collect();
        // First task exactly solved, second off by a lot.
        let fid = app.min_fidelity(&[refs[0], refs[1] + 1.0]).unwrap();
        assert!(fid < 0.9);
        let perfect = app.min_fidelity(&refs).unwrap();
        assert!((perfect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn initial_state_preparation() {
        let b = InitialState::Basis(0b10).prepare(2);
        assert!((b.probability(0b10) - 1.0).abs() < 1e-12);
        let u = InitialState::UniformSuperposition.prepare(2);
        assert!((u.probability(0b11) - 0.25).abs() < 1e-12);
        assert_eq!(InitialState::Basis(3).basis_index(), Some(3));
        assert_eq!(InitialState::UniformSuperposition.basis_index(), None);
    }

    #[test]
    fn compute_references_fills_missing() {
        let ansatz = HardwareEfficientAnsatz::new(2, 1, Entanglement::Linear).build();
        let h = PauliOp::from_labels(2, &[("ZZ", -1.0)]);
        let mut app = VqaApplication::new(
            "demo",
            vec![VqaTask::new("a", 0.0, h)],
            ansatz,
            InitialState::Basis(0),
        );
        assert!(app.tasks[0].reference_energy.is_none());
        app.compute_references();
        assert!((app.tasks[0].reference_energy.unwrap() + 1.0).abs() < 1e-8);
    }
}
