//! Evaluation metrics: fidelity-vs-shots analysis over convergence histories.
//!
//! The paper's two headline plots are (a) shots required to reach a fidelity threshold
//! (Figure 6) and (b) fidelity achieved under a fixed shot budget (Figure 7).  Both are
//! derived from per-run convergence histories; the helpers here perform that derivation
//! for any runner (baseline or TreeVQA) that records [`IterationRecord`]s.

use crate::runner::{IterationRecord, VqaRunResult};
use crate::task::VqaTask;

/// The cumulative shots at which a single run first reaches `threshold` fidelity on its
/// task (using the best-so-far energy), or `None` if it never does or the task has no
/// reference energy.
pub fn shots_to_reach_fidelity(
    history: &[IterationRecord],
    task: &VqaTask,
    threshold: f64,
) -> Option<u64> {
    for record in history {
        let fidelity = task.fidelity(record.best_energy)?;
        if fidelity >= threshold {
            return Some(record.cumulative_shots);
        }
    }
    None
}

/// The best fidelity a run achieves within a shot budget, or `None` if the task has no
/// reference energy.  Returns 0.0 if no history entry fits the budget.
pub fn fidelity_at_budget(history: &[IterationRecord], task: &VqaTask, budget: u64) -> Option<f64> {
    let mut best: Option<f64> = None;
    for record in history {
        if record.cumulative_shots > budget {
            break;
        }
        let fidelity = task.fidelity(record.best_energy)?;
        best = Some(best.map_or(fidelity, |b: f64| b.max(fidelity)));
    }
    Some(best.unwrap_or(0.0))
}

/// Total baseline shots needed for *every* task of an application to reach `threshold`
/// fidelity, assuming each independent task stops as soon as it reaches the threshold
/// (the most favourable accounting for the baseline).  `None` if any task never reaches it.
pub fn baseline_shots_for_threshold(
    results: &[VqaRunResult],
    tasks: &[VqaTask],
    threshold: f64,
) -> Option<u64> {
    assert_eq!(results.len(), tasks.len(), "one result per task required");
    let mut total = 0u64;
    for (result, task) in results.iter().zip(tasks) {
        total += shots_to_reach_fidelity(&result.history, task, threshold)?;
    }
    Some(total)
}

/// The minimum fidelity across tasks that a baseline achieves when each task is limited to
/// an equal share of `total_budget` shots.
pub fn baseline_min_fidelity_at_budget(
    results: &[VqaRunResult],
    tasks: &[VqaTask],
    total_budget: u64,
) -> Option<f64> {
    assert_eq!(results.len(), tasks.len(), "one result per task required");
    let per_task = total_budget / results.len().max(1) as u64;
    let mut min_fid = f64::INFINITY;
    for (result, task) in results.iter().zip(tasks) {
        let f = fidelity_at_budget(&result.history, task, per_task)?;
        min_fid = min_fid.min(f);
    }
    Some(min_fid)
}

/// The mean fidelity across tasks for a vector of achieved energies.
pub fn mean_fidelity(tasks: &[VqaTask], energies: &[f64]) -> Option<f64> {
    assert_eq!(tasks.len(), energies.len(), "one energy per task required");
    let mut total = 0.0;
    for (task, &energy) in tasks.iter().zip(energies) {
        total += task.fidelity(energy)?;
    }
    Some(total / tasks.len() as f64)
}

/// The shot-savings ratio `baseline / treevqa`, the paper's headline metric.
///
/// Returns `None` when the TreeVQA count is zero (undefined ratio).
pub fn shot_savings_ratio(baseline_shots: u64, treevqa_shots: u64) -> Option<f64> {
    if treevqa_shots == 0 {
        None
    } else {
        Some(baseline_shots as f64 / treevqa_shots as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qop::PauliOp;

    fn task_with_reference(reference: f64) -> VqaTask {
        let mut t = VqaTask::new("t", 0.0, PauliOp::from_labels(1, &[("Z", 1.0)]));
        t.reference_energy = Some(reference);
        t
    }

    fn record(shots: u64, best: f64) -> IterationRecord {
        IterationRecord {
            iteration: 0,
            cumulative_shots: shots,
            loss: best,
            exact_energy: best,
            best_energy: best,
        }
    }

    #[test]
    fn shots_to_reach_fidelity_finds_first_crossing() {
        let task = task_with_reference(-1.0);
        // Energies approach -1.0, i.e. fidelity rises toward 1.
        let history = vec![record(100, -0.5), record(200, -0.9), record(300, -0.99)];
        assert_eq!(shots_to_reach_fidelity(&history, &task, 0.85), Some(200));
        assert_eq!(shots_to_reach_fidelity(&history, &task, 0.99), Some(300));
        assert_eq!(shots_to_reach_fidelity(&history, &task, 0.999), None);
    }

    #[test]
    fn fidelity_at_budget_respects_the_budget() {
        let task = task_with_reference(-1.0);
        let history = vec![record(100, -0.5), record(200, -0.9), record(300, -0.99)];
        assert!((fidelity_at_budget(&history, &task, 250).unwrap() - 0.9).abs() < 1e-12);
        assert!((fidelity_at_budget(&history, &task, 1000).unwrap() - 0.99).abs() < 1e-12);
        assert_eq!(fidelity_at_budget(&history, &task, 50), Some(0.0));
    }

    #[test]
    fn baseline_aggregation_sums_per_task_shots() {
        let tasks = vec![task_with_reference(-1.0), task_with_reference(-2.0)];
        let results = vec![
            VqaRunResult {
                task_label: "a".into(),
                final_params: vec![],
                final_energy: -0.99,
                best_energy: -0.99,
                shots_used: 300,
                history: vec![record(100, -0.5), record(300, -0.99)],
            },
            VqaRunResult {
                task_label: "b".into(),
                final_params: vec![],
                final_energy: -1.99,
                best_energy: -1.99,
                shots_used: 400,
                history: vec![record(200, -1.5), record(400, -1.99)],
            },
        ];
        assert_eq!(
            baseline_shots_for_threshold(&results, &tasks, 0.9),
            Some(300 + 400)
        );
        assert_eq!(baseline_shots_for_threshold(&results, &tasks, 0.999), None);
        let min_fid = baseline_min_fidelity_at_budget(&results, &tasks, 800).unwrap();
        assert!((min_fid - 0.99).abs() < 1e-12);
    }

    #[test]
    fn mean_fidelity_and_savings_ratio() {
        let tasks = vec![task_with_reference(-1.0), task_with_reference(-1.0)];
        let mean = mean_fidelity(&tasks, &[-1.0, -0.9]).unwrap();
        assert!((mean - 0.95).abs() < 1e-12);
        assert_eq!(shot_savings_ratio(1000, 100), Some(10.0));
        assert_eq!(shot_savings_ratio(1000, 0), None);
    }
}
