//! # vqa — the VQA execution layer
//!
//! Sits between the simulators (`qsim`) and TreeVQA (`treevqa`):
//!
//! * [`VqaTask`] / [`VqaApplication`] — the paper's task/application terminology.
//! * [`Backend`] — one trait over all execution substrates (exact, shot-sampled,
//!   analytically noisy, trajectory-noisy, Pauli propagation), with explicit shot
//!   accounting and a batched submission form ([`Backend::evaluate_batch`] over
//!   [`EvalRequest`]s) that the dense backends implement with a compiled-circuit cache
//!   and a data-parallel scratch-state pool.
//! * [`NoisyStatevectorBackend`] — stochastic Pauli-trajectory noise simulation
//!   (`qnoise` channels replayed through the compiled batch engine) and [`ZneBackend`],
//!   the zero-noise-extrapolation mitigation wrapper any backend can opt into.
//! * [`VqaRunConfig`] / [`VqaRunResult`] / [`BaselineRunResult`] — plain-data run
//!   configuration and result records.  The drivers that produce them live in the
//!   `qexec` execution service (`qexec::run_single_vqa` / `qexec::run_baseline`), which
//!   owns backends behind an executor and accepts owned jobs — the `Backend` trait here
//!   is the low-level driver interface those backends implement.
//! * [`cafqa_initialize`] / [`red_qaoa_initial_point`] — classical warm starts.
//! * [`metrics`] — fidelity-vs-shots analysis shared by all experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod backend;
mod init;
pub mod metrics;
mod mitigation;
mod noisy;
mod runner;
mod task;

pub use backend::{
    batch_chunk, circuit_cache_capacity, circuit_cache_stats, Backend, BackendCaps, EvalRequest,
    EvalResult, NoisyBackend, PauliPropagationBackend, SampledBackend, StatevectorBackend,
};
pub use init::{cafqa_initialize, red_qaoa_initial_point, CafqaResult};
pub use mitigation::{MitigationError, ZneBackend};
pub use noisy::NoisyStatevectorBackend;
pub use runner::{BaselineRunResult, IterationRecord, VqaRunConfig, VqaRunResult};
pub use task::{InitialState, VqaApplication, VqaTask};
