//! Error-mitigation wrappers over [`Backend`]s.
//!
//! Mitigation is deliberately a *wrapper*, not a backend feature: any execution
//! substrate — the trajectory-noise backend, the analytic noisy backend, even a future
//! real-hardware backend — can opt into zero-noise extrapolation by wrapping itself in
//! [`ZneBackend`], and the TreeVQA controller and baseline runners see an ordinary
//! [`Backend`].

use crate::backend::{
    default_serial_batch, uniform_circuit, Backend, CircuitCache, EvalRequest, EvalResult,
};
use crate::task::InitialState;
use qcircuit::Circuit;
use qnoise::{fold_gates, richardson_extrapolate, DEFAULT_ZNE_SCALES};
use qop::PauliOp;

/// Zero-noise extrapolation over any inner backend.
///
/// Every logical evaluation is executed at each configured gate-folding scale
/// (`g ↦ g·(g†·g)^((c−1)/2)`, [`qnoise::fold_gates`]) and the charged and tracking
/// values are Richardson-extrapolated to the zero-noise limit
/// ([`qnoise::richardson_extrapolate`]).  Shots are charged by the inner backend at
/// every scale — mitigation is not free, which is exactly the trade-off the noisy
/// experiments quantify.
///
/// Batches stay batched: [`ZneBackend::evaluate_batch`] submits one inner batch per
/// scale (each uniform in its folded circuit), so the wrapper rides the inner backend's
/// scratch-pool parallelism.  Note the inner backend therefore consumes its noise
/// streams scale-major within a batch, whereas a serial loop over
/// [`ZneBackend::evaluate`] consumes them request-major: mitigated values are unbiased
/// either way, but draw-level reproducibility holds per call shape (unlike the dense
/// backends, whose batched results are bit-identical to serial).
///
/// Probes pass through **unfolded**: fidelity metrics measure the prepared state, which
/// folding leaves unchanged by construction.
#[derive(Debug)]
pub struct ZneBackend<B: Backend> {
    inner: B,
    scales: Vec<usize>,
    folded: CircuitCache<Vec<Circuit>>,
}

impl<B: Backend> ZneBackend<B> {
    /// Wraps `inner` with the default 1×/3×/5× folding ladder.
    pub fn new(inner: B) -> Self {
        Self::with_scales(inner, DEFAULT_ZNE_SCALES.to_vec())
    }

    /// Wraps `inner` with explicit folding scales, validating them.
    ///
    /// Ladders that fit the compiled-circuit cache capacity minus one (see
    /// [`crate::circuit_cache_capacity`], default 8 → seven scales) stay fully
    /// amortized by the dense backends; longer ladders still compute correctly but
    /// recompile per scale unless the `VQA_COMPILED_CACHE` knob is raised.
    pub fn try_with_scales(inner: B, scales: Vec<usize>) -> Result<Self, MitigationError> {
        if scales.is_empty() {
            return Err(MitigationError("ZNE needs at least one scale"));
        }
        if !scales.iter().all(|s| s % 2 == 1) {
            return Err(MitigationError("gate-folding scales must be odd"));
        }
        if !scales.windows(2).all(|w| w[0] < w[1]) {
            return Err(MitigationError("scales must be strictly increasing"));
        }
        Ok(ZneBackend {
            inner,
            scales,
            folded: CircuitCache::new(2),
        })
    }

    /// Wraps `inner` with explicit (odd, strictly increasing) folding scales.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty, contains an even factor, or is not strictly
    /// increasing; use [`ZneBackend::try_with_scales`] to handle that as a
    /// [`MitigationError`] instead.
    pub fn with_scales(inner: B, scales: Vec<usize>) -> Self {
        match Self::try_with_scales(inner, scales) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The folding scales in use.
    pub fn scales(&self) -> &[usize] {
        &self.scales
    }

    /// Richardson-extrapolates per-scale results into one mitigated [`EvalResult`]
    /// (borrowed rows: the batch path re-groups by request without cloning).
    fn combine(&self, per_scale: &[&EvalResult]) -> EvalResult {
        let points: Vec<(f64, f64)> = self
            .scales
            .iter()
            .zip(per_scale)
            .map(|(&s, r)| (s as f64, r.charged))
            .collect();
        let charged = richardson_extrapolate(&points);
        let num_free = per_scale[0].free.len();
        let free = (0..num_free)
            .map(|i| {
                let pts: Vec<(f64, f64)> = self
                    .scales
                    .iter()
                    .zip(per_scale)
                    .map(|(&s, r)| (s as f64, r.free[i]))
                    .collect();
                richardson_extrapolate(&pts)
            })
            .collect();
        EvalResult {
            charged,
            free,
            shots: per_scale.iter().map(|r| r.shots).sum(),
        }
    }
}

impl<B: Backend> Backend for ZneBackend<B> {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        let scales = &self.scales;
        let folded = self.folded.get_or_insert_with(circuit, |c| {
            scales.iter().map(|&s| fold_gates(c, s)).collect()
        });
        let mut per_scale = Vec::with_capacity(folded.len());
        for fc in folded {
            let before = self.inner.shots_used();
            let (charged, free) = self
                .inner
                .evaluate(fc, params, initial, charged_op, free_ops);
            per_scale.push(EvalResult {
                charged,
                free,
                shots: self.inner.shots_used() - before,
            });
        }
        let rows: Vec<&EvalResult> = per_scale.iter().collect();
        let combined = self.combine(&rows);
        (combined.charged, combined.free)
    }

    fn evaluate_batch(&mut self, requests: &[EvalRequest<'_>]) -> Vec<EvalResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        // The hot path (TreeVQA submits one uniform-circuit batch per round) hits the
        // same folded-circuit cache as `evaluate`, so the inner backend sees stable
        // circuit allocations and its own compiled cache keeps hitting.  Mixed-circuit
        // batches fall back to the serial loop, whose per-request `evaluate` calls also
        // go through the cache.
        let Some(circuit) = uniform_circuit(requests) else {
            return default_serial_batch(self, requests);
        };
        let scales = &self.scales;
        let folded = self.folded.get_or_insert_with(circuit, |c| {
            scales.iter().map(|&s| fold_gates(c, s)).collect()
        });
        // One inner batch per scale; each is uniform in its folded circuit.
        let per_scale: Vec<Vec<EvalResult>> = folded
            .iter()
            .map(|fc| {
                let scaled: Vec<EvalRequest<'_>> = requests
                    .iter()
                    .map(|r| EvalRequest { circuit: fc, ..*r })
                    .collect();
                self.inner.evaluate_batch(&scaled)
            })
            .collect();
        (0..requests.len())
            .map(|ri| {
                let row: Vec<&EvalResult> = per_scale.iter().map(|scale| &scale[ri]).collect();
                self.combine(&row)
            })
            .collect()
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        self.inner.probe(circuit, params, initial, op)
    }

    fn shots_used(&self) -> u64 {
        self.inner.shots_used()
    }

    fn reset_shots(&mut self) {
        self.inner.reset_shots();
    }

    fn shots_per_pauli(&self) -> u64 {
        self.inner.shots_per_pauli()
    }

    fn name(&self) -> &'static str {
        "zne"
    }

    fn capabilities(&self) -> crate::BackendCaps {
        // Mitigation is transparent: the wrapper batches iff the inner backend batches,
        // and inherits its noise/shot/trajectory/retry character.
        self.inner.capabilities()
    }

    fn recover(&mut self) {
        self.folded.clear();
        self.inner.recover();
    }
}

/// An invalid mitigation configuration (the message names the violated constraint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MitigationError(pub &'static str);

impl std::fmt::Display for MitigationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid mitigation configuration: {}", self.0)
    }
}

impl std::error::Error for MitigationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoisyStatevectorBackend, StatevectorBackend};
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};
    use qnoise::PauliNoiseModel;

    fn demo() -> (Circuit, Vec<f64>, PauliOp) {
        let circuit = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
        let params: Vec<f64> = (0..circuit.num_parameters())
            .map(|i| 0.17 * i as f64)
            .collect();
        let h = PauliOp::from_labels(3, &[("ZZI", -1.0), ("IXX", 0.4)]);
        (circuit, params, h)
    }

    #[test]
    fn zne_over_an_exact_backend_is_exact() {
        // Folding preserves the unitary, so every scale measures the ideal value and the
        // extrapolation returns it (to fp accuracy).
        let (circuit, params, h) = demo();
        let ideal = StatevectorBackend::with_shots(0).evaluate(
            &circuit,
            &params,
            &InitialState::Basis(0),
            &h,
            &[],
        );
        let mut zne = ZneBackend::new(StatevectorBackend::with_shots(10));
        let (mitigated, _) = zne.evaluate(&circuit, &params, &InitialState::Basis(0), &h, &[]);
        assert!((mitigated - ideal.0).abs() < 1e-9);
        // Three scales, each charged.
        assert_eq!(zne.shots_used(), 3 * 10 * h.num_terms() as u64);
        assert_eq!(zne.name(), "zne");
        assert_eq!(zne.scales(), &[1, 3, 5]);
    }

    #[test]
    fn zne_recovers_more_signal_than_the_unmitigated_noisy_backend() {
        let (circuit, params, h) = demo();
        let ideal = StatevectorBackend::with_shots(0)
            .evaluate(&circuit, &params, &InitialState::Basis(0), &h, &[])
            .0;
        let model = PauliNoiseModel::depolarizing(0.004, 0.012);
        let k = 6000;
        let noisy = NoisyStatevectorBackend::new(model.clone(), 0, 11)
            .with_trajectories(k)
            .evaluate(&circuit, &params, &InitialState::Basis(0), &h, &[])
            .0;
        let mitigated =
            ZneBackend::new(NoisyStatevectorBackend::new(model, 0, 11).with_trajectories(k))
                .evaluate(&circuit, &params, &InitialState::Basis(0), &h, &[])
                .0;
        assert!(
            (mitigated - ideal).abs() < (noisy - ideal).abs(),
            "ZNE {mitigated} should beat raw noisy {noisy} against ideal {ideal}"
        );
    }

    #[test]
    fn zne_batch_matches_combined_shape_and_shots() {
        let (circuit, params, h) = demo();
        let requests = [EvalRequest {
            circuit: &circuit,
            params: &params,
            initial: &InitialState::Basis(0),
            charged_op: &h,
            free_ops: &[],
            stream: None,
        }];
        let mut zne = ZneBackend::new(StatevectorBackend::with_shots(7));
        let results = zne.evaluate_batch(&requests);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].shots, 3 * 7 * h.num_terms() as u64);
    }

    #[test]
    #[should_panic]
    fn even_scales_are_rejected() {
        let _ = ZneBackend::with_scales(StatevectorBackend::with_shots(0), vec![1, 2]);
    }
}
