//! # qchem — chemistry and physics workload generators
//!
//! Provides the task Hamiltonians for every VQE benchmark in the paper's evaluation
//! (Table 1 and Section 7.1):
//!
//! * [`MoleculeSpec`] — synthetic molecular Hamiltonian families (H₂, LiH, BeH₂, HF,
//!   C₂H₂) whose coefficients vary smoothly with bond length; the documented substitution
//!   for PySCF/Qiskit-Nature electronic-structure input (DESIGN.md §3.1).
//! * [`heisenberg_xxz`] / [`transverse_field_ising`] / [`SpinChainFamily`] — exact
//!   spin-chain models, including the 25-site Ising chain of the large-scale study.
//!
//! A VQA *application* in the paper is a family of such Hamiltonians (one per geometry or
//! sweep point); the `tasks(count)` methods return exactly that.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod molecule;
mod spin;

pub use molecule::MoleculeSpec;
pub use spin::{heisenberg_xxz, transverse_field_ising, SpinChainFamily, SpinModel};
