//! Synthetic molecular Hamiltonian families.
//!
//! The paper derives its chemistry benchmarks (H₂, LiH, BeH₂, HF, C₂H₂) from
//! PySCF/Qiskit-Nature electronic-structure integrals in the STO-3G basis.  Reproducing a
//! quantum-chemistry package is out of scope, so this module implements the documented
//! substitution (DESIGN.md §3.1): a deterministic generator that, for each molecule,
//! produces a **fixed Pauli-term structure** whose coefficients vary **smoothly with the
//! bond length**, with the identity coefficient following a Morse-like dissociation curve
//! anchored at the paper's equilibrium geometry.
//!
//! The property TreeVQA exploits — neighbouring geometries have small ℓ1 coefficient
//! distance and therefore strongly overlapping ground states (paper Section 3) — is
//! preserved by construction, which is what matters for reproducing the branching
//! behaviour and the shot-reduction trends.  Qubit counts are scaled down relative to the
//! paper so exact reference ground states stay cheap (see the table in DESIGN.md).

use qop::{Pauli, PauliOp, PauliString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a molecular benchmark family.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MoleculeSpec {
    /// Molecule name (e.g. `"LiH"`).
    pub name: String,
    /// Number of qubits (spin orbitals after reduction) in this reproduction.
    pub num_qubits: usize,
    /// Number of electrons occupying the lowest spin orbitals in the Hartree–Fock state.
    pub num_electrons: usize,
    /// Target number of Pauli terms in the generated Hamiltonian.
    pub num_terms: usize,
    /// Equilibrium bond length in Ångström (paper Table 1).
    pub equilibrium_bond: f64,
    /// Lower end of the benchmark bond-length range (Å).
    pub bond_min: f64,
    /// Upper end of the benchmark bond-length range (Å).
    pub bond_max: f64,
    /// Overall energy scale (Hartree-like units) of the non-identity terms.
    pub coupling_scale: f64,
    /// Dissociation-well depth of the Morse-like identity-coefficient curve.
    pub well_depth: f64,
    /// Seed controlling the per-term coefficient functions (fixed per molecule so that
    /// every run regenerates the identical family).
    pub seed: u64,
}

impl MoleculeSpec {
    /// H₂ in a 4-qubit Jordan–Wigner encoding (15 Pauli terms, as in paper Table 1).
    pub fn h2() -> Self {
        MoleculeSpec {
            name: "H2".to_string(),
            num_qubits: 4,
            num_electrons: 2,
            num_terms: 15,
            equilibrium_bond: 0.741,
            bond_min: 0.74,
            bond_max: 0.83,
            coupling_scale: 0.18,
            well_depth: 0.35,
            seed: 0x4832,
        }
    }

    /// LiH, scaled from 12 to 6 qubits.
    pub fn lih() -> Self {
        MoleculeSpec {
            name: "LiH".to_string(),
            num_qubits: 6,
            num_electrons: 2,
            num_terms: 62,
            equilibrium_bond: 1.595,
            bond_min: 1.4,
            bond_max: 1.7,
            coupling_scale: 0.12,
            well_depth: 0.25,
            seed: 0x4C69,
        }
    }

    /// BeH₂, scaled from 14 to 8 qubits.
    pub fn beh2() -> Self {
        MoleculeSpec {
            name: "BeH2".to_string(),
            num_qubits: 8,
            num_electrons: 4,
            num_terms: 98,
            equilibrium_bond: 1.333,
            bond_min: 1.2,
            bond_max: 1.47,
            coupling_scale: 0.11,
            well_depth: 0.3,
            seed: 0x4265,
        }
    }

    /// HF (hydrogen fluoride), scaled from 12 to 8 qubits.
    pub fn hf() -> Self {
        MoleculeSpec {
            name: "HF".to_string(),
            num_qubits: 8,
            num_electrons: 4,
            num_terms: 78,
            equilibrium_bond: 0.917,
            bond_min: 0.83,
            bond_max: 1.1,
            coupling_scale: 0.13,
            well_depth: 0.32,
            seed: 0x4846,
        }
    }

    /// C₂H₂ (acetylene), scaled from 28 to 16 qubits; used with the Pauli-propagation
    /// backend in the large-scale study.
    pub fn c2h2() -> Self {
        MoleculeSpec {
            name: "C2H2".to_string(),
            num_qubits: 16,
            num_electrons: 6,
            num_terms: 300,
            equilibrium_bond: 1.2,
            bond_min: 1.15,
            bond_max: 1.25,
            coupling_scale: 0.08,
            well_depth: 0.4,
            seed: 0xC2A2,
        }
    }

    /// The five chemistry benchmarks of paper Table 1, in the paper's order.
    pub fn all_benchmarks() -> Vec<MoleculeSpec> {
        vec![
            Self::h2(),
            Self::lih(),
            Self::beh2(),
            Self::hf(),
            Self::c2h2(),
        ]
    }

    /// Looks up a benchmark by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<MoleculeSpec> {
        Self::all_benchmarks()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// The Hartree–Fock reference bitstring: the lowest `num_electrons` orbitals occupied.
    pub fn hartree_fock_state(&self) -> u64 {
        (0..self.num_electrons).fold(0u64, |acc, q| acc | (1u64 << q))
    }

    /// `count` equally spaced bond lengths covering `[bond_min, bond_max]`.
    pub fn bond_lengths(&self, count: usize) -> Vec<f64> {
        assert!(count >= 1);
        if count == 1 {
            return vec![self.equilibrium_bond];
        }
        (0..count)
            .map(|i| {
                self.bond_min + (self.bond_max - self.bond_min) * i as f64 / (count - 1) as f64
            })
            .collect()
    }

    /// Bond lengths covering the full range with a fixed step (the "precision" axis of the
    /// paper's Figure 8: smaller step → more tasks).
    pub fn bond_lengths_with_step(&self, step: f64) -> Vec<f64> {
        assert!(step > 0.0, "step must be positive");
        let mut v = Vec::new();
        let mut r = self.bond_min;
        while r <= self.bond_max + 1e-9 {
            v.push(r);
            r += step;
        }
        v
    }

    /// The fixed Pauli-term structure of this molecule's qubit Hamiltonian.
    ///
    /// The structure is generated once per molecule (independent of bond length): identity,
    /// all single-Z, all ZZ pairs, then XX+YY hopping pairs and a deterministic selection
    /// of higher-weight exchange strings until `num_terms` is reached.
    pub fn term_structure(&self) -> Vec<PauliString> {
        let n = self.num_qubits;
        let mut terms: Vec<PauliString> = Vec::with_capacity(self.num_terms);
        terms.push(PauliString::identity(n));
        for q in 0..n {
            terms.push(PauliString::single(n, q, Pauli::Z));
        }
        'outer: for i in 0..n {
            for j in i + 1..n {
                if terms.len() >= self.num_terms {
                    break 'outer;
                }
                terms.push(PauliString::from_sparse(n, &[(i, Pauli::Z), (j, Pauli::Z)]));
            }
        }
        // Hopping terms XX and YY on nearest and next-nearest pairs.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut offset = 1usize;
        while terms.len() < self.num_terms && offset < n {
            for i in 0..n - offset {
                if terms.len() >= self.num_terms {
                    break;
                }
                let j = i + offset;
                terms.push(PauliString::from_sparse(n, &[(i, Pauli::X), (j, Pauli::X)]));
                if terms.len() >= self.num_terms {
                    break;
                }
                terms.push(PauliString::from_sparse(n, &[(i, Pauli::Y), (j, Pauli::Y)]));
            }
            offset += 1;
        }
        // Exchange (double-excitation-like) strings of weight 4 to fill the remainder.
        while terms.len() < self.num_terms {
            let mut qubits: Vec<usize> = (0..n).collect();
            for k in (1..qubits.len()).rev() {
                let swap_with = rng.random_range(0..=k);
                qubits.swap(k, swap_with);
            }
            let pattern = [Pauli::X, Pauli::X, Pauli::Y, Pauli::Y];
            let pairs: Vec<(usize, Pauli)> = qubits
                .iter()
                .take(4)
                .zip(pattern.iter())
                .map(|(&q, &p)| (q, p))
                .collect();
            let candidate = PauliString::from_sparse(n, &pairs);
            if !terms.contains(&candidate) {
                terms.push(candidate);
            }
        }
        terms
    }

    /// The qubit Hamiltonian of this molecule at bond length `bond` (Å).
    ///
    /// Coefficients are smooth functions of `bond`; the identity coefficient traces a
    /// Morse-like dissociation curve with its minimum at [`MoleculeSpec::equilibrium_bond`].
    ///
    /// # Panics
    ///
    /// Panics if `bond` is not positive.
    pub fn hamiltonian(&self, bond: f64) -> PauliOp {
        assert!(bond > 0.0, "bond length must be positive");
        let structure = self.term_structure();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9E3779B97F4A7C15);
        let re = self.equilibrium_bond;
        // Dimensionless stretch coordinate.
        let s = (bond - re) / re;

        let mut op = PauliOp::zero(self.num_qubits);
        for (k, string) in structure.iter().enumerate() {
            // Per-term static draws (same for every bond length because the RNG stream is
            // consumed in a fixed order).
            let base: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let slope: f64 = rng.random::<f64>() * 0.8 - 0.4;
            let curvature: f64 = rng.random::<f64>() * 0.4 - 0.2;
            let decay: f64 = 0.5 + rng.random::<f64>();

            let coefficient = if string.is_identity() {
                // Morse-like curve: E(re) = offset − well_depth, rising toward dissociation.
                let morse = 2.0 * self.well_depth * (1.0 - (-decay * (bond - re)).exp()).powi(2);
                -(self.num_electrons as f64) * 0.25 - self.well_depth + morse
            } else {
                // Category scaling, mirroring real molecular Hamiltonians: the single-Z
                // (orbital-energy) part is signed so that the Hartree–Fock determinant is
                // the diagonal optimum, the ZZ part is a smaller density–density
                // correction, and the off-diagonal exchange terms carry the "correlation
                // energy" that the VQE recovers by smooth rotations away from the
                // reference.  This gives a realistic convergence trajectory: the HF start
                // is good but not exact, and the remaining gap is reachable without
                // crossing energy barriers.
                let has_xy = string.x_mask() != 0;
                let (category_scale, sign) = if has_xy {
                    (0.5, if base >= 0.0 { 1.0 } else { -1.0 })
                } else if string.weight() == 1 {
                    // Single Z on qubit q: occupied orbitals favour |1⟩ (positive
                    // coefficient), virtual orbitals favour |0⟩ (negative coefficient).
                    let qubit = string
                        .iter_non_identity()
                        .next()
                        .map(|(q, _)| q)
                        .unwrap_or(0);
                    let sign = if qubit < self.num_electrons {
                        1.0
                    } else {
                        -1.0
                    };
                    (1.0, sign)
                } else {
                    (0.25, if base >= 0.0 { 1.0 } else { -1.0 })
                };
                let magnitude = self.coupling_scale * category_scale * (0.4 + 0.6 * base.abs());
                sign * magnitude * (1.0 + slope * s + curvature * s * s)
            };
            // k only orders the stream; the value is already term-specific.
            let _ = k;
            op.add_term(*string, coefficient);
        }
        op.simplify(0.0);
        op
    }

    /// Convenience: the Hamiltonians for `count` evenly spaced bond lengths, returned as
    /// `(bond_length, Hamiltonian)` pairs — one VQA task each.
    pub fn tasks(&self, count: usize) -> Vec<(f64, PauliOp)> {
        self.bond_lengths(count)
            .into_iter()
            .map(|b| (b, self.hamiltonian(b)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qop::{ground_energy, LanczosOptions};

    #[test]
    fn table1_characteristics_match_scaled_spec() {
        let h2 = MoleculeSpec::h2();
        assert_eq!(h2.num_qubits, 4);
        assert_eq!(h2.hamiltonian(0.741).num_terms(), 15);
        assert!((h2.equilibrium_bond - 0.741).abs() < 1e-12);

        for spec in MoleculeSpec::all_benchmarks() {
            let h = spec.hamiltonian(spec.equilibrium_bond);
            assert_eq!(h.num_qubits(), spec.num_qubits, "{}", spec.name);
            assert_eq!(h.num_terms(), spec.num_terms, "{}", spec.name);
            assert!(spec.bond_min < spec.equilibrium_bond + 1.0);
            assert!(spec.bond_min < spec.bond_max);
        }
    }

    #[test]
    fn hamiltonian_is_deterministic() {
        let a = MoleculeSpec::lih().hamiltonian(1.5);
        let b = MoleculeSpec::lih().hamiltonian(1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn coefficients_vary_smoothly_with_bond_length() {
        let spec = MoleculeSpec::lih();
        let h_a = spec.hamiltonian(1.50);
        let h_b = spec.hamiltonian(1.51);
        let h_c = spec.hamiltonian(1.70);
        let near = h_a.l1_distance(&h_b);
        let far = h_a.l1_distance(&h_c);
        assert!(
            near < far,
            "nearby bonds must be closer in l1: {near} vs {far}"
        );
        assert!(
            near < 0.2,
            "0.01 Å step should move coefficients only slightly: {near}"
        );
    }

    #[test]
    fn ground_states_of_neighbouring_bonds_overlap_strongly() {
        let spec = MoleculeSpec::h2();
        let opts = LanczosOptions::default();
        let gs_a = qop::ground_state(&spec.hamiltonian(0.74), &opts);
        let gs_b = qop::ground_state(&spec.hamiltonian(0.77), &opts);
        let overlap = gs_a.state.overlap(&gs_b.state);
        assert!(
            overlap > 0.9,
            "adiabatic continuity violated: overlap {overlap}"
        );
    }

    #[test]
    fn energy_curve_has_minimum_near_equilibrium() {
        let spec = MoleculeSpec::hf();
        let opts = LanczosOptions {
            max_iterations: 80,
            ..Default::default()
        };
        let e_eq = ground_energy(&spec.hamiltonian(spec.equilibrium_bond), &opts);
        let e_stretch = ground_energy(&spec.hamiltonian(spec.bond_max + 0.6), &opts);
        assert!(
            e_eq < e_stretch,
            "stretched geometry should be higher in energy: {e_eq} vs {e_stretch}"
        );
    }

    #[test]
    fn bond_length_grids() {
        let spec = MoleculeSpec::beh2();
        let ten = spec.bond_lengths(10);
        assert_eq!(ten.len(), 10);
        assert!((ten[0] - spec.bond_min).abs() < 1e-12);
        assert!((ten[9] - spec.bond_max).abs() < 1e-12);
        let stepped = spec.bond_lengths_with_step(0.03);
        assert!(stepped.len() >= 9);
        assert!(stepped
            .windows(2)
            .all(|w| (w[1] - w[0] - 0.03).abs() < 1e-9));
        assert_eq!(spec.bond_lengths(1), vec![spec.equilibrium_bond]);
    }

    #[test]
    fn hartree_fock_bitstring_occupies_lowest_orbitals() {
        assert_eq!(MoleculeSpec::h2().hartree_fock_state(), 0b0011);
        assert_eq!(MoleculeSpec::beh2().hartree_fock_state(), 0b0000_1111);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(MoleculeSpec::by_name("lih"), Some(MoleculeSpec::lih()));
        assert!(MoleculeSpec::by_name("H2O").is_none());
    }

    #[test]
    fn tasks_pair_bonds_with_hamiltonians() {
        let spec = MoleculeSpec::h2();
        let tasks = spec.tasks(5);
        assert_eq!(tasks.len(), 5);
        for (bond, ham) in &tasks {
            assert_eq!(*ham, spec.hamiltonian(*bond));
        }
    }
}
