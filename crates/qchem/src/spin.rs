//! Spin-chain physics benchmarks: the Heisenberg XXZ chain and the transverse-field Ising
//! model (paper Section 7.1, "Physics Benchmarks").
//!
//! Unlike the chemistry families these Hamiltonians are exact — no electronic-structure
//! input is needed.  A "task" is one value of the sweep parameter (the XXZ anisotropy `Δ`
//! or the transverse field `h`), matching how the paper builds its physics applications.

use qop::{Pauli, PauliOp, PauliString};
use serde::{Deserialize, Serialize};

/// Builds the open-boundary Heisenberg XXZ chain
/// `H = J Σ_i (X_i X_{i+1} + Y_i Y_{i+1} + Δ · Z_i Z_{i+1})`.
///
/// # Panics
///
/// Panics if `num_sites < 2`.
///
/// # Examples
///
/// ```
/// use qchem::heisenberg_xxz;
/// let h = heisenberg_xxz(4, 1.0, 0.5);
/// assert_eq!(h.num_qubits(), 4);
/// assert_eq!(h.num_terms(), 9); // 3 bonds × 3 couplings
/// ```
pub fn heisenberg_xxz(num_sites: usize, j: f64, delta: f64) -> PauliOp {
    assert!(num_sites >= 2, "a chain needs at least two sites");
    let mut op = PauliOp::zero(num_sites);
    for i in 0..num_sites - 1 {
        for (pauli, weight) in [(Pauli::X, j), (Pauli::Y, j), (Pauli::Z, j * delta)] {
            op.add_term(
                PauliString::from_sparse(num_sites, &[(i, pauli), (i + 1, pauli)]),
                weight,
            );
        }
    }
    op
}

/// Builds the open-boundary transverse-field Ising chain
/// `H = −J Σ_i Z_i Z_{i+1} − h Σ_i X_i`.
///
/// # Panics
///
/// Panics if `num_sites < 2`.
pub fn transverse_field_ising(num_sites: usize, j: f64, h: f64) -> PauliOp {
    assert!(num_sites >= 2, "a chain needs at least two sites");
    let mut op = PauliOp::zero(num_sites);
    for i in 0..num_sites - 1 {
        op.add_term(
            PauliString::from_sparse(num_sites, &[(i, Pauli::Z), (i + 1, Pauli::Z)]),
            -j,
        );
    }
    for i in 0..num_sites {
        op.add_term(PauliString::single(num_sites, i, Pauli::X), -h);
    }
    op
}

/// Which spin model a family sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SpinModel {
    /// Heisenberg XXZ chain; the sweep parameter is the anisotropy `Δ`.
    HeisenbergXxz {
        /// Exchange coupling `J` (the paper fixes `J = 1`).
        j: f64,
    },
    /// Transverse-field Ising chain; the sweep parameter is the field `h`.
    TransverseIsing {
        /// Ising coupling `J` (the paper fixes `J = 1`).
        j: f64,
    },
}

/// A family of spin-chain VQA tasks obtained by sweeping one model parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpinChainFamily {
    /// The model being swept.
    pub model: SpinModel,
    /// Number of lattice sites (= qubits).
    pub num_sites: usize,
    /// Lower end of the sweep-parameter range.
    pub param_min: f64,
    /// Upper end of the sweep-parameter range.
    pub param_max: f64,
}

impl SpinChainFamily {
    /// The paper's XXZ benchmark configuration at a reduced size (8 sites; sweep of the
    /// anisotropy across the BKT transition at Δ = 1).
    pub fn xxz_benchmark() -> Self {
        SpinChainFamily {
            model: SpinModel::HeisenbergXxz { j: 1.0 },
            num_sites: 8,
            param_min: 0.5,
            param_max: 1.5,
        }
    }

    /// The paper's transverse-field Ising benchmark at a reduced size (8 sites; sweep of
    /// the field across the quantum phase transition at h = J = 1).
    pub fn tfim_benchmark() -> Self {
        SpinChainFamily {
            model: SpinModel::TransverseIsing { j: 1.0 },
            num_sites: 8,
            param_min: 0.5,
            param_max: 1.5,
        }
    }

    /// The 25-site Ising chain used in the large-scale study (Section 8.4), simulated via
    /// Pauli propagation.
    pub fn large_ising_benchmark() -> Self {
        SpinChainFamily {
            model: SpinModel::TransverseIsing { j: 1.0 },
            num_sites: 25,
            param_min: 0.6,
            param_max: 1.4,
        }
    }

    /// Human-readable family name.
    pub fn name(&self) -> &'static str {
        match self.model {
            SpinModel::HeisenbergXxz { .. } => "XXZ",
            SpinModel::TransverseIsing { .. } => "TFIM",
        }
    }

    /// `count` evenly spaced sweep-parameter values.
    pub fn parameter_values(&self, count: usize) -> Vec<f64> {
        assert!(count >= 1);
        if count == 1 {
            return vec![0.5 * (self.param_min + self.param_max)];
        }
        (0..count)
            .map(|i| {
                self.param_min + (self.param_max - self.param_min) * i as f64 / (count - 1) as f64
            })
            .collect()
    }

    /// The Hamiltonian at one sweep-parameter value.
    pub fn hamiltonian(&self, param: f64) -> PauliOp {
        match self.model {
            SpinModel::HeisenbergXxz { j } => heisenberg_xxz(self.num_sites, j, param),
            SpinModel::TransverseIsing { j } => transverse_field_ising(self.num_sites, j, param),
        }
    }

    /// `(parameter, Hamiltonian)` pairs for `count` tasks.
    pub fn tasks(&self, count: usize) -> Vec<(f64, PauliOp)> {
        self.parameter_values(count)
            .into_iter()
            .map(|p| (p, self.hamiltonian(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qop::{ground_energy, LanczosOptions};

    #[test]
    fn xxz_term_count_scales_with_bonds() {
        let h = heisenberg_xxz(6, 1.0, 0.7);
        assert_eq!(h.num_terms(), 5 * 3);
        assert_eq!(h.num_qubits(), 6);
    }

    #[test]
    fn tfim_term_count() {
        let h = transverse_field_ising(5, 1.0, 0.3);
        assert_eq!(h.num_terms(), 4 + 5);
    }

    #[test]
    fn tfim_limits_have_known_ground_energies() {
        let opts = LanczosOptions::default();
        // h = 0: classical ferromagnet, E0 = -J (N-1).
        let e_classical = ground_energy(&transverse_field_ising(6, 1.0, 0.0), &opts);
        assert!((e_classical + 5.0).abs() < 1e-6);
        // J = 0: free spins in a field, E0 = -h N.
        let e_free = ground_energy(&transverse_field_ising(6, 0.0, 0.7), &opts);
        assert!((e_free + 4.2).abs() < 1e-6);
    }

    #[test]
    fn xxz_ground_energy_decreases_with_delta() {
        // Larger antiferromagnetic anisotropy lowers the ground energy of the XXZ chain.
        let opts = LanczosOptions::default();
        let e_small = ground_energy(&heisenberg_xxz(6, 1.0, 0.2), &opts);
        let e_large = ground_energy(&heisenberg_xxz(6, 1.0, 1.5), &opts);
        assert!(e_large < e_small);
    }

    #[test]
    fn family_tasks_cover_the_sweep_range() {
        let fam = SpinChainFamily::tfim_benchmark();
        let tasks = fam.tasks(5);
        assert_eq!(tasks.len(), 5);
        assert!((tasks[0].0 - 0.5).abs() < 1e-12);
        assert!((tasks[4].0 - 1.5).abs() < 1e-12);
        assert_eq!(tasks[0].1.num_qubits(), 8);
        assert_eq!(fam.name(), "TFIM");
        assert_eq!(SpinChainFamily::xxz_benchmark().name(), "XXZ");
    }

    #[test]
    fn neighbouring_sweep_points_have_similar_hamiltonians() {
        let fam = SpinChainFamily::xxz_benchmark();
        let h_a = fam.hamiltonian(0.9);
        let h_b = fam.hamiltonian(0.95);
        let h_c = fam.hamiltonian(1.5);
        assert!(h_a.l1_distance(&h_b) < h_a.l1_distance(&h_c));
    }

    #[test]
    fn large_ising_is_25_sites() {
        let fam = SpinChainFamily::large_ising_benchmark();
        assert_eq!(fam.num_sites, 25);
        assert_eq!(fam.hamiltonian(1.0).num_qubits(), 25);
    }
}
