//! Dense statevector circuit simulator.
//!
//! This plays the role of Qiskit Aer's `StatevectorSimulator` in the paper's evaluation:
//! it executes a parameterized [`Circuit`] exactly (no shot noise) and returns the final
//! [`Statevector`].  Shot noise and hardware noise are layered on top by the estimator and
//! noise modules.
//!
//! # Kernel design
//!
//! Gate application is the hot path of every VQA optimization loop, so the kernels avoid
//! the classic costs of a naive statevector simulator:
//!
//! * **No data-dependent branches.**  A 2×2 gate on qubit `q` updates the amplitude pairs
//!   `(i0, i0 | 1<<q)`.  Instead of scanning all `2^n` indices and testing `i & bit == 0`,
//!   the kernels enumerate exactly the `2^(n-1)` pair indices with a two-level
//!   `(block, offset)` bit-insertion walk — half the iterations, and the inner loop is
//!   pure arithmetic.  Controlled gates enumerate only the quarter of indices with the
//!   control bit set.
//! * **No allocation.**  Pauli rotations `exp(-iθ/2 P)` exploit that a Pauli string acts
//!   on the computational basis as the involution `b ↔ b ^ x_mask`: each `(b, b')` pair is
//!   rotated in place by a 2×2 update, instead of cloning the full state per gate.
//!   [`run_circuit_in_place`] / [`run_circuit_into`] let callers drive a whole circuit
//!   without a single allocation, which the backend layers in `vqa` use to keep optimizer
//!   inner loops allocation-free.
//! * **Split re/im lanes (SoA).**  The statevector stores real and imaginary parts in
//!   separate `f64` arrays (see [`Statevector`]), and every serial kernel walks them in
//!   explicitly 4-wide-chunked inner loops with scalar tails.  Pauli phases are factored
//!   into a hoisted `i^num_y` constant times a `(−1)^popcount` sign served by a
//!   [`qop::lanes::SignTable`], and the `b ↔ b ^ x_mask` partner access inside an aligned
//!   4-chunk is a constant lane shuffle — so the butterfly updates are contiguous
//!   homogeneous FMA streams the compiler autovectorizes (AVX2 via the pinned
//!   `target-cpu`), instead of interleaved complex shuffles that defeat it.
//! * **Data parallelism.**  For registers at or above [`parallel_threshold`] amplitudes
//!   the kernels split the pair-index range across threads (disjoint index sets, so the
//!   updates are race-free).  Small registers stay serial: thread fan-out costs more than
//!   the update itself below the threshold.
//!
//! The original straightforward kernels are retained in [`reference`] on **interleaved**
//! `Complex64` storage (converting at entry/exit), so the equivalence suites pin the
//! split-lane kernels against a genuinely independent layout; the `treevqa_bench`
//! criterion benches quantify the speedup.

use qcircuit::{Circuit, Gate};
use qop::lanes::{i_power, parity_sign, SignTable, LANES, SIGN_BLOCK};
// The parallel policy (threshold knob, worker gate, Send pointer wrapper) is shared with
// the expectation kernels and lives in `qop::par`; `SendPtr` is the Sync wrapper for the
// disjoint-index lane writes.
use qop::par::{use_parallel, SendPtr, MIN_PAR_INDICES};
use qop::with_lane_perm;
use qop::{Complex64, PauliString, Statevector};
use rayon::prelude::*;

// One knob governs both the gate kernels here and the expectation kernels in `qop`:
// `QSIM_PAR_THRESHOLD` amplitudes (default 2^14), read once per process.
pub use qop::parallel_threshold;

/// Executes `circuit` with bound parameter values `params`, starting from `initial`.
///
/// # Examples
///
/// ```
/// use qcircuit::{Circuit, Gate};
/// use qop::Statevector;
/// use qsim::run_circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cx(0, 1));
/// let out = run_circuit(&bell, &[], &Statevector::zero_state(2));
/// assert!((out.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((out.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the circuit and state register sizes differ, or if a parameterized gate
/// references an index beyond `params.len()`.
pub fn run_circuit(circuit: &Circuit, params: &[f64], initial: &Statevector) -> Statevector {
    let mut state = initial.clone();
    run_circuit_in_place(circuit, params, &mut state);
    state
}

/// Executes `circuit` directly on `state`.
///
/// Since the compiled-execution refactor this is a thin wrapper that lowers the circuit
/// through [`crate::CompiledCircuit`] and executes the fused form — a one-shot caller
/// gets gate fusion for free.  Hot loops that bind many parameter vectors to the *same*
/// circuit should compile once and call
/// [`crate::CompiledCircuit::execute_in_place`]/[`execute_into`](crate::CompiledCircuit::execute_into)
/// directly (the `vqa` backends do this through a compiled-circuit cache).
///
/// # Panics
///
/// Panics if the circuit and state register sizes differ, or if a parameterized gate
/// references an index beyond `params.len()`.
pub fn run_circuit_in_place(circuit: &Circuit, params: &[f64], state: &mut Statevector) {
    assert_eq!(
        circuit.num_qubits(),
        state.num_qubits(),
        "circuit acts on {} qubits but the state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    crate::CompiledCircuit::compile(circuit).execute_in_place(params, state);
}

/// Executes `circuit` gate by gate, with no fusion — the pre-compilation interpreter.
///
/// Retained as the baseline the criterion benches compare [`crate::CompiledCircuit`]
/// against, and as an independent second implementation for the equivalence tests.
pub fn interpret_circuit_in_place(circuit: &Circuit, params: &[f64], state: &mut Statevector) {
    assert_eq!(
        circuit.num_qubits(),
        state.num_qubits(),
        "circuit acts on {} qubits but the state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    for gate in circuit.gates() {
        apply_gate(state, gate, params);
    }
}

/// Executes `circuit` starting from `initial`, writing the result into `scratch`.
///
/// `scratch`'s allocation is reused whenever its dimension already matches, making this
/// the zero-allocation building block for optimizer inner loops that evaluate one ansatz
/// at many parameter vectors (see `vqa::StatevectorBackend`).
pub fn run_circuit_into(
    circuit: &Circuit,
    params: &[f64],
    initial: &Statevector,
    scratch: &mut Statevector,
) {
    scratch.clone_from(initial);
    run_circuit_in_place(circuit, params, scratch);
}

/// Applies a single gate in place.
pub fn apply_gate(state: &mut Statevector, gate: &Gate, params: &[f64]) {
    match gate {
        Gate::H(q) => apply_single_qubit(state, *q, &H_MATRIX),
        Gate::X(q) => apply_single_qubit(state, *q, &X_MATRIX),
        Gate::Y(q) => apply_single_qubit(state, *q, &Y_MATRIX),
        Gate::Z(q) => apply_single_qubit(state, *q, &Z_MATRIX),
        Gate::S(q) => apply_single_qubit(state, *q, &S_MATRIX),
        Gate::Sdg(q) => apply_single_qubit(state, *q, &SDG_MATRIX),
        Gate::Cx(c, t) => apply_cx(state, *c, *t),
        Gate::Cz(c, t) => apply_cz(state, *c, *t),
        Gate::Rx(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &rx_matrix(theta));
        }
        Gate::Ry(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &ry_matrix(theta));
        }
        Gate::Rz(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &rz_matrix(theta));
        }
        Gate::PauliRotation(string, a) => {
            let theta = a.resolve(params);
            apply_pauli_rotation(state, string, theta);
        }
    }
}

/// A dense 2×2 complex matrix (row-major), the single-qubit-gate representation.
pub type Matrix2 = [[Complex64; 2]; 2];

const fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

static H_MATRIX: Matrix2 = [
    [c(FRAC_1_SQRT_2, 0.0), c(FRAC_1_SQRT_2, 0.0)],
    [c(FRAC_1_SQRT_2, 0.0), c(-FRAC_1_SQRT_2, 0.0)],
];
static X_MATRIX: Matrix2 = [[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]];
static Y_MATRIX: Matrix2 = [[c(0.0, 0.0), c(0.0, -1.0)], [c(0.0, 1.0), c(0.0, 0.0)]];
static Z_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(-1.0, 0.0)]];
static S_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, 1.0)]];
static SDG_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, -1.0)]];

/// `RX(θ) = exp(-i θ/2 X)`.
pub fn rx_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(0.0, -s)], [c(0.0, -s), c(co, 0.0)]]
}

/// `RY(θ) = exp(-i θ/2 Y)`.
pub fn ry_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(-s, 0.0)], [c(s, 0.0), c(co, 0.0)]]
}

/// `RZ(θ) = exp(-i θ/2 Z)`.
pub fn rz_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, -s), c(0.0, 0.0)], [c(0.0, 0.0), c(co, s)]]
}

/// Inserts a zero bit at position `pos`: maps `k`'s bits `[pos..]` up by one, leaving bit
/// `pos` clear.  Enumerating `k = 0..dim/2` through this map yields exactly the indices
/// with bit `pos` clear, in increasing order.
#[inline(always)]
fn insert_zero_bit(k: usize, pos: usize) -> usize {
    let low_mask = (1usize << pos) - 1;
    ((k & !low_mask) << 1) | (k & low_mask)
}

/// Applies an arbitrary 2×2 unitary to qubit `q`.
///
/// Branch-free two-level walk: the outer level ranges over blocks of `2^(q+1)` contiguous
/// amplitudes, the inner level over the `2^q` offsets inside a block; `i0 = block + off`
/// and `i1 = i0 | bit` form the update pair directly, so no index test is ever executed.
/// The serial inner loop runs 4 lanes at a time over the split re/im arrays — eight
/// scalar matrix constants against four contiguous f64 streams, which vectorizes to
/// straight FMA code.
pub fn apply_single_qubit(state: &mut Statevector, q: usize, m: &Matrix2) {
    let dim = state.dim();
    let bit = 1usize << q;
    assert!(
        bit < dim,
        "qubit index {q} out of range for {dim} amplitudes"
    );
    let (m00r, m00i) = (m[0][0].re, m[0][0].im);
    let (m01r, m01i) = (m[0][1].re, m[0][1].im);
    let (m10r, m10i) = (m[1][0].re, m[1][0].im);
    let (m11r, m11i) = (m[1][1].re, m[1][1].im);
    let (re, im) = state.lanes_mut();
    if use_parallel(dim) {
        let rp = SendPtr(re.as_mut_ptr());
        let ip = SendPtr(im.as_mut_ptr());
        (0..dim / 2)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| {
                let i0 = insert_zero_bit(k, q);
                let i1 = i0 | bit;
                // SAFETY: `insert_zero_bit` is injective over k and never sets `bit`, so
                // every (i0, i1) pair is disjoint from every other thread's pairs.
                unsafe {
                    let r0 = *rp.add(i0);
                    let i0v = *ip.add(i0);
                    let r1 = *rp.add(i1);
                    let i1v = *ip.add(i1);
                    *rp.add(i0) = (m00r * r0 - m00i * i0v) + (m01r * r1 - m01i * i1v);
                    *ip.add(i0) = (m00r * i0v + m00i * r0) + (m01r * i1v + m01i * r1);
                    *rp.add(i1) = (m10r * r0 - m10i * i0v) + (m11r * r1 - m11i * i1v);
                    *ip.add(i1) = (m10r * i0v + m10i * r0) + (m11r * i1v + m11i * r1);
                }
            });
        return;
    }
    single_qubit_serial(
        re,
        im,
        bit,
        &[m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i],
    );
}

/// Serial single-qubit body.  A separate function on purpose: taking the lanes as two
/// `&mut [f64]` **parameters** gives LLVM `noalias` guarantees between them (reborrows
/// of two fields of one struct do not), which is what lets the flat four-stream zip
/// below autovectorize; a zip-of-chunks formulation, or this same loop written inline
/// against the struct's lanes, compiles to scalar code.
fn single_qubit_serial(re: &mut [f64], im: &mut [f64], bit: usize, m: &[f64; 8]) {
    let [m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i] = *m;
    for (rb, ib) in re
        .chunks_exact_mut(bit << 1)
        .zip(im.chunks_exact_mut(bit << 1))
    {
        let (r_lo, r_hi) = rb.split_at_mut(bit);
        let (i_lo, i_hi) = ib.split_at_mut(bit);
        for (((r0, i0), r1), i1) in r_lo
            .iter_mut()
            .zip(i_lo.iter_mut())
            .zip(r_hi.iter_mut())
            .zip(i_hi.iter_mut())
        {
            let (x0, y0) = (*r0, *i0);
            let (x1, y1) = (*r1, *i1);
            *r0 = (m00r * x0 - m00i * y0) + (m01r * x1 - m01i * y1);
            *i0 = (m00r * y0 + m00i * x0) + (m01r * y1 + m01i * x1);
            *r1 = (m10r * x0 - m10i * y0) + (m11r * x1 - m11i * y1);
            *i1 = (m10r * y0 + m10i * x0) + (m11r * y1 + m11i * x1);
        }
    }
}

/// Enumerates the `dim/4` basis indices with the control bit **set** and the target bit
/// **clear** by double bit-insertion, then hands each to `f` (serial or parallel).
#[inline]
fn for_each_controlled_pair<F>(dim: usize, control: usize, target: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let cbit = 1usize << control;
    let (lo, hi) = if control < target {
        (control, target)
    } else {
        (target, control)
    };
    let quarter = dim / 4;
    if use_parallel(dim) {
        (0..quarter)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| f(insert_zero_bit(insert_zero_bit(k, lo), hi) | cbit));
    } else {
        for k in 0..quarter {
            f(insert_zero_bit(insert_zero_bit(k, lo), hi) | cbit);
        }
    }
}

/// Applies CX with the given control and target.
///
/// Iterates only the quarter of indices with the control bit set and the target bit clear
/// (the swap partners), rather than scanning and testing all `2^n` indices.  Serially,
/// the swap set decomposes into contiguous runs of `2^min(control, target)` indices
/// (everything below the lower qubit bit is free), so each run is one pair of
/// `swap_nonoverlapping` lane memmoves instead of per-index swaps.
pub fn apply_cx(state: &mut Statevector, control: usize, target: usize) {
    assert_ne!(control, target, "CX control and target must differ");
    let dim = state.dim();
    let tbit = 1usize << target;
    assert!(
        1usize << control < dim && tbit < dim,
        "CX qubits ({control}, {target}) out of range for {dim} amplitudes"
    );
    let (re, im) = state.lanes_mut();
    let lo = control.min(target);
    let hi = control.max(target);
    let cbit = 1usize << control;
    let run = 1usize << lo;
    if use_parallel(dim) || run < LANES {
        // Parallel execution, or serial runs of 1–2 elements where per-run setup would
        // dominate: per-pair lane swaps over the enumerated quarter
        // (for_each_controlled_pair self-selects serial vs parallel).
        let rp = SendPtr(re.as_mut_ptr());
        let ip = SendPtr(im.as_mut_ptr());
        for_each_controlled_pair(dim, control, target, |i0| {
            // SAFETY: i0 has the target bit clear and each i0 is produced exactly once,
            // so the (i0, i0|tbit) swap pairs are pairwise disjoint.
            unsafe {
                std::ptr::swap(rp.add(i0), rp.add(i0 | tbit));
                std::ptr::swap(ip.add(i0), ip.add(i0 | tbit));
            }
        });
        return;
    }
    let mut k = 0usize;
    while k < dim / 4 {
        let i0 = insert_zero_bit(insert_zero_bit(k, lo), hi) | cbit;
        // SAFETY: the `run` indices from i0 all keep the control bit set and the target
        // bit clear (their varying bits sit strictly below min(control, target)), and
        // their partners at +tbit are disjoint from them.
        unsafe {
            std::ptr::swap_nonoverlapping(
                re.as_mut_ptr().add(i0),
                re.as_mut_ptr().add(i0 | tbit),
                run,
            );
            std::ptr::swap_nonoverlapping(
                im.as_mut_ptr().add(i0),
                im.as_mut_ptr().add(i0 | tbit),
                run,
            );
        }
        k += run;
    }
}

/// Applies CZ with the given control and target (symmetric).
///
/// Iterates only the quarter of indices with both bits set; serially those decompose
/// into contiguous runs of `2^min(control, target)` indices negated as straight lane
/// sweeps.
pub fn apply_cz(state: &mut Statevector, control: usize, target: usize) {
    assert_ne!(control, target, "CZ control and target must differ");
    let dim = state.dim();
    let tbit = 1usize << target;
    assert!(
        1usize << control < dim && tbit < dim,
        "CZ qubits ({control}, {target}) out of range for {dim} amplitudes"
    );
    let (re, im) = state.lanes_mut();
    if use_parallel(dim) {
        let rp = SendPtr(re.as_mut_ptr());
        let ip = SendPtr(im.as_mut_ptr());
        for_each_controlled_pair(dim, control, target, |i0| {
            let i = i0 | tbit;
            // SAFETY: each index with both bits set is produced exactly once.
            unsafe {
                *rp.add(i) = -*rp.add(i);
                *ip.add(i) = -*ip.add(i);
            }
        });
        return;
    }
    let lo = control.min(target);
    let hi = control.max(target);
    let cbit = 1usize << control;
    let run = 1usize << lo;
    let mut k = 0usize;
    while k < dim / 4 {
        let i = (insert_zero_bit(insert_zero_bit(k, lo), hi) | cbit) | tbit;
        for r in &mut re[i..i + run] {
            *r = -*r;
        }
        for v in &mut im[i..i + run] {
            *v = -*v;
        }
        k += run;
    }
}

/// The split-lane involution-pair update shared by the Pauli-rotation and Pauli-string
/// kernels: over all pairs `(i0, i1 = i0 ^ x_mask)` (pivot bit of `x_mask` clear in
/// `i0`), applies
///
/// ```text
/// a0' = c·a0 + sgn·(g01·a1)        a1' = c·a1 + sgn·(g10·a0)
/// ```
///
/// with `sgn = (−1)^popcount(i0 & z_mask)`.  The rotation kernel passes
/// `(cos θ/2, −i·sin θ/2·conj(i^num_y), −i·sin θ/2·i^num_y)`; the plain Pauli
/// application passes `(0, conj(i^num_y), i^num_y)` — the phase table of the old
/// interleaved kernel factored into one hoisted complex constant per side and a ±1 sign
/// stream, which is what lets the serial inner loop vectorize.
fn pair_update(
    state: &mut Statevector,
    x_mask: u64,
    z_mask: u64,
    c: f64,
    g01: Complex64,
    g10: Complex64,
) {
    let dim = state.dim();
    let pivot = (63 - x_mask.leading_zeros()) as usize;
    let x = x_mask as usize;
    let (re, im) = state.lanes_mut();

    if use_parallel(dim) {
        let rp = SendPtr(re.as_mut_ptr());
        let ip = SendPtr(im.as_mut_ptr());
        (0..dim / 2)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| {
                let i0 = insert_zero_bit(k, pivot);
                let i1 = i0 ^ x;
                let s = parity_sign(i0 as u64 & z_mask);
                // SAFETY: i0 never has the pivot bit, i1 always does, and ^x_mask is an
                // involution, so pairs are pairwise disjoint across threads.
                unsafe {
                    let (r0, v0) = (*rp.add(i0), *ip.add(i0));
                    let (r1, v1) = (*rp.add(i1), *ip.add(i1));
                    *rp.add(i0) = c * r0 + s * (g01.re * r1 - g01.im * v1);
                    *ip.add(i0) = c * v0 + s * (g01.re * v1 + g01.im * r1);
                    *rp.add(i1) = c * r1 + s * (g10.re * r0 - g10.im * v0);
                    *ip.add(i1) = c * v1 + s * (g10.re * v0 + g10.im * r0);
                }
            });
        return;
    }

    pair_update_serial(re, im, x_mask, z_mask, c, g01, g10);
}

/// Serial body of [`pair_update`], walking blocks of `2^(pivot+1)` amplitudes: within a
/// block, `i0 = base + off` and `i1 = base + 2^pivot + (off ^ xl)`, where `xl` is
/// `x_mask` with its pivot bit removed (the pivot is x's highest bit, so x spans only
/// the block).  The sign of the block base is hoisted; the low-bit signs stream from the
/// table; the partner access is a constant 4-lane shuffle.  Separate function so the
/// lanes arrive as `noalias` slice parameters (see [`single_qubit_serial`]).
fn pair_update_serial(
    re: &mut [f64],
    im: &mut [f64],
    x_mask: u64,
    z_mask: u64,
    c: f64,
    g01: Complex64,
    g10: Complex64,
) {
    let dim = re.len();
    let pivot = (63 - x_mask.leading_zeros()) as usize;
    let pbit = 1usize << pivot;
    let x = x_mask as usize;
    let xl = x & (pbit - 1);
    if dim < SIGN_BLOCK {
        // Below one table block, the table fill (a 2 KiB array init) would dominate
        // the kernel's own work; update the pairs with direct parity signs.
        let mut base = 0usize;
        while base < dim {
            for off in 0..pbit {
                let i0 = base + off;
                let i1 = base + pbit + (off ^ xl);
                let s = parity_sign(i0 as u64 & z_mask);
                let (r0, v0) = (re[i0], im[i0]);
                let (r1, v1) = (re[i1], im[i1]);
                re[i0] = c * r0 + s * (g01.re * r1 - g01.im * v1);
                im[i0] = c * v0 + s * (g01.re * v1 + g01.im * r1);
                re[i1] = c * r1 + s * (g10.re * r0 - g10.im * v0);
                im[i1] = c * v1 + s * (g10.re * v0 + g10.im * r0);
            }
            base += pbit << 1;
        }
        return;
    }
    let z_low = z_mask & (pbit as u64 - 1);
    let table = SignTable::new(z_low, pbit);
    let mut base = 0usize;
    while base < dim {
        let base_sign = parity_sign(base as u64 & z_mask);
        let (r_lo, r_hi) = re[base..base + (pbit << 1)].split_at_mut(pbit);
        let (i_lo, i_hi) = im[base..base + (pbit << 1)].split_at_mut(pbit);
        if pbit >= LANES {
            let xlh = xl & !(LANES - 1);
            // Explicit 4-wide chunks: all eight streams are staged through fixed-size
            // `[f64; 4]` arrays (loads, compute, whole-array stores) so the vectorizer
            // sees straight-line 4-lane register blocks, and the `off ^ xl` partner
            // permutation is a compile-time shuffle per `with_lane_perm!` arm.  An
            // element-indexed formulation of the same loop compiles to scalar code.
            macro_rules! body {
                ($m:literal) => {{
                    let mut ob = 0usize;
                    while ob < pbit {
                        let oe = pbit.min(ob + SIGN_BLOCK);
                        let mid = base_sign * table.block_sign(ob as u64);
                        let mut off = ob;
                        while off < oe {
                            // off/pb are 4-aligned and < pbit (the half-slice length);
                            // lo8 is 4-aligned and < 256, so every window below is in
                            // bounds and the try_into calls cannot fail.
                            let pb = off ^ xlh;
                            let lo8 = off & (SIGN_BLOCK - 1);
                            let sg: &[f64; LANES] =
                                (&table.low()[lo8..lo8 + LANES]).try_into().unwrap();
                            let rl: &mut [f64; LANES] =
                                (&mut r_lo[off..off + LANES]).try_into().unwrap();
                            let il: &mut [f64; LANES] =
                                (&mut i_lo[off..off + LANES]).try_into().unwrap();
                            let rh: &mut [f64; LANES] =
                                (&mut r_hi[pb..pb + LANES]).try_into().unwrap();
                            let ih: &mut [f64; LANES] =
                                (&mut i_hi[pb..pb + LANES]).try_into().unwrap();
                            let mut nrl = [0.0; LANES];
                            let mut nil = [0.0; LANES];
                            let mut nrh = [0.0; LANES];
                            let mut nih = [0.0; LANES];
                            for j in 0..LANES {
                                let s = mid * sg[j];
                                let (r0, v0) = (rl[j], il[j]);
                                let (r1, v1) = (rh[j ^ $m], ih[j ^ $m]);
                                nrl[j] = c * r0 + s * (g01.re * r1 - g01.im * v1);
                                nil[j] = c * v0 + s * (g01.re * v1 + g01.im * r1);
                                nrh[j ^ $m] = c * r1 + s * (g10.re * r0 - g10.im * v0);
                                nih[j ^ $m] = c * v1 + s * (g10.re * v0 + g10.im * r0);
                            }
                            *rl = nrl;
                            *il = nil;
                            *rh = nrh;
                            *ih = nih;
                            off += LANES;
                        }
                        ob = oe;
                    }
                }};
            }
            with_lane_perm!(xl & (LANES - 1), body);
        } else {
            // Scalar tail: pivot < 2 leaves half-blocks narrower than one lane chunk.
            for off in 0..pbit {
                let s = base_sign * table.lane(off);
                let partner = off ^ xl;
                let (r0, v0) = (r_lo[off], i_lo[off]);
                let (r1, v1) = (r_hi[partner], i_hi[partner]);
                r_lo[off] = c * r0 + s * (g01.re * r1 - g01.im * v1);
                i_lo[off] = c * v0 + s * (g01.re * v1 + g01.im * r1);
                r_hi[partner] = c * r1 + s * (g10.re * r0 - g10.im * v0);
                i_hi[partner] = c * v1 + s * (g10.re * v0 + g10.im * r0);
            }
        }
        base += pbit << 1;
    }
}

/// Applies `exp(-i θ/2 P)` for a Pauli string `P`, in place and allocation-free.
///
/// A Pauli string maps basis states by the involution `b ↔ b ^ x_mask` (with a phase), so
/// the rotation decomposes into independent 2×2 rotations on `(b, b ^ x_mask)` pairs —
/// there is no need for the naive `cos·|ψ⟩ − i·sin·P|ψ⟩` construction's full-state clone.
/// Diagonal strings (`x_mask == 0`) reduce to a pure per-amplitude phase whose sign
/// stream comes from a [`SignTable`]; general strings go through the shared involution-pair
/// update (`pair_update`).
pub fn apply_pauli_rotation(state: &mut Statevector, string: &PauliString, theta: f64) {
    if string.is_identity() {
        // Global phase only; expectation values are unaffected, so skip it.
        return;
    }
    let (s, co) = (theta / 2.0).sin_cos();
    let dim = state.dim();
    let x_mask = string.x_mask();
    let z_mask = string.z_mask();

    if x_mask == 0 {
        // Diagonal: amplitude b picks up exp(-iθ/2 · (-1)^popcount(b & z)), i.e. is
        // multiplied by (cos θ/2, −sin θ/2 · sgn_b).
        let (re, im) = state.lanes_mut();
        if use_parallel(dim) {
            let rp = SendPtr(re.as_mut_ptr());
            let ip = SendPtr(im.as_mut_ptr());
            (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .for_each(|b| {
                    let t = s * parity_sign(b as u64 & z_mask);
                    // SAFETY: each b is visited exactly once.
                    unsafe {
                        let (r, i) = (*rp.add(b), *ip.add(b));
                        *rp.add(b) = co * r + t * i;
                        *ip.add(b) = co * i - t * r;
                    }
                });
        } else {
            diag_phase_serial(re, im, z_mask, co, s);
        }
        return;
    }

    // General case: 2×2 rotation on each (b0, b0 ^ x_mask) pair.  P|b0⟩ = phase0|b1⟩
    // with phase0 = i^num_y · (-1)^popcount(b0 & z); because P² = I, the return phase is
    // conj(phase0).  The update is a0' = cos·a0 − i·sin·conj(phase0)·a1 (and mirrored),
    // which pair_update applies with the i^num_y part hoisted into its constants.
    let g = i_power((x_mask & z_mask).count_ones());
    let minus_i_sin = Complex64::new(0.0, -s);
    pair_update(
        state,
        x_mask,
        z_mask,
        co,
        minus_i_sin * g.conj(),
        minus_i_sin * g,
    );
}

/// Serial diagonal sign pass: multiplies amplitude `b`'s lanes by
/// `(−1)^popcount(b & z)` streamed from a [`SignTable`] (noalias slice parameters, flat
/// zip — see [`single_qubit_serial`]).
fn diag_sign_serial(re: &mut [f64], im: &mut [f64], z_mask: u64) {
    let dim = re.len();
    if dim < SIGN_BLOCK {
        for (b, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
            let s = parity_sign(b as u64 & z_mask);
            *r *= s;
            *i *= s;
        }
        return;
    }
    let table = SignTable::new(z_mask, dim);
    let mut b = 0usize;
    while b < dim {
        let end = dim.min(b + SIGN_BLOCK);
        let hs = table.block_sign(b as u64);
        let low = &table.low()[..end - b];
        for ((r, i), l) in re[b..end].iter_mut().zip(&mut im[b..end]).zip(low) {
            let s = hs * l;
            *r *= s;
            *i *= s;
        }
        b = end;
    }
}

/// Serial diagonal phase pass: multiplies amplitude `b` by `(co, −s·sgn_b)` with the
/// sign streamed from a [`SignTable`].  The flat three-stream zip (both lanes plus the
/// contiguous ±1 table slice) is the shape the vectorizer widens to 4 lanes.
fn diag_phase_serial(re: &mut [f64], im: &mut [f64], z_mask: u64, co: f64, s: f64) {
    let dim = re.len();
    if dim < SIGN_BLOCK {
        for (b, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
            let t = s * parity_sign(b as u64 & z_mask);
            let (x, y) = (*r, *i);
            *r = co * x + t * y;
            *i = co * y - t * x;
        }
        return;
    }
    let table = SignTable::new(z_mask, dim);
    let mut b = 0usize;
    while b < dim {
        let end = dim.min(b + SIGN_BLOCK);
        let hs = table.block_sign(b as u64);
        let low = &table.low()[..end - b];
        for ((r, i), l) in re[b..end].iter_mut().zip(&mut im[b..end]).zip(low) {
            let t = s * (hs * l);
            let (x, y) = (*r, *i);
            *r = co * x + t * y;
            *i = co * y - t * x;
        }
        b = end;
    }
}

/// Applies a Pauli string `P` itself (not a rotation), in place and allocation-free —
/// the error-insertion primitive of stochastic Pauli-trajectory noise simulation
/// (`qnoise`): a sampled error is one Pauli applied between compiled operations.
///
/// The kernel is the θ-free specialization of [`apply_pauli_rotation`]: `P` maps basis
/// states by the involution `b ↔ b ^ x_mask` with a phase `i^num_y · (−1)^popcount(b & z)`
/// — so diagonal strings are one sign pass and general strings are one disjoint-pair
/// swap-with-phase pass (`pair_update` with `c = 0`), parallelized above
/// [`parallel_threshold`] like every other kernel.  The application is phase-exact
/// (including the `i^num_y` factor), so inserted errors compose exactly with per-gate
/// reference simulation, not just up to global phase.
pub fn apply_pauli_string(state: &mut Statevector, string: &PauliString) {
    if string.is_identity() {
        return;
    }
    let dim = state.dim();
    let x_mask = string.x_mask();
    let z_mask = string.z_mask();

    if x_mask == 0 {
        // Diagonal: amplitude b picks up (−1)^popcount(b & z).  Multiplying both lanes
        // by the ±1 sign is exact and branch-free.
        let (re, im) = state.lanes_mut();
        if use_parallel(dim) {
            let rp = SendPtr(re.as_mut_ptr());
            let ip = SendPtr(im.as_mut_ptr());
            (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .for_each(|b| {
                    let s = parity_sign(b as u64 & z_mask);
                    // SAFETY: each b is visited exactly once.
                    unsafe {
                        *rp.add(b) *= s;
                        *ip.add(b) *= s;
                    }
                });
        } else {
            diag_sign_serial(re, im, z_mask);
        }
        return;
    }

    // General case: P|b0⟩ = phase0|b1⟩ with b1 = b0 ^ x_mask and
    // phase0 = i^num_y · (−1)^popcount(b0 & z); since P² = I the return phase is
    // conj(phase0).  pair_update with c = 0 is exactly that swap-with-phase.
    let g = i_power((x_mask & z_mask).count_ones());
    pair_update(state, x_mask, z_mask, 0.0, g.conj(), g);
}

pub mod reference {
    //! The original, straightforward kernels on **interleaved** `Complex64` storage,
    //! retained as the correctness baseline.
    //!
    //! The `*_amps` functions operate directly on a raw interleaved amplitude buffer —
    //! the naive algorithms themselves, with per-index branches, and a full-state clone
    //! per Pauli rotation.  The [`Statevector`] wrappers convert out of the split-lane
    //! storage at entry and back at exit ([`Statevector::to_amplitudes`] /
    //! [`Statevector::copy_from_amplitudes`]), so the reference path never depends on
    //! the SoA layout it is pinning — the equivalence suites compare two genuinely
    //! different storage schemes.  [`run_circuit`] converts **once per circuit**, and
    //! the criterion benches time the `*_amps` forms, so the committed naive baselines
    //! measure the naive algorithm, not layout conversion.  Nothing but property tests
    //! and the benches should call any of this.

    use super::Matrix2;
    use qop::{Complex64, PauliString, Statevector};

    /// Naive single-qubit gate on interleaved amplitudes: scans every index and tests
    /// the qubit bit.
    pub fn apply_single_qubit_amps(amps: &mut [Complex64], q: usize, m: &Matrix2) {
        let dim = amps.len();
        let bit = 1usize << q;
        let mut base = 0usize;
        while base < dim {
            if base & bit == 0 {
                let i0 = base;
                let i1 = base | bit;
                let a0 = amps[i0];
                let a1 = amps[i1];
                amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += 1;
        }
    }

    /// Naive CX on interleaved amplitudes: scans every index and tests both bits.
    pub fn apply_cx_amps(amps: &mut [Complex64], control: usize, target: usize) {
        assert_ne!(control, target, "CX control and target must differ");
        let dim = amps.len();
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for i in 0..dim {
            if i & cbit != 0 && i & tbit == 0 {
                amps.swap(i, i | tbit);
            }
        }
    }

    /// Naive CZ on interleaved amplitudes: scans every index and tests both bits.
    pub fn apply_cz_amps(amps: &mut [Complex64], control: usize, target: usize) {
        assert_ne!(control, target, "CZ control and target must differ");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for (i, a) in amps.iter_mut().enumerate() {
            if i & cbit != 0 && i & tbit != 0 {
                *a = -*a;
            }
        }
    }

    /// Naive Pauli rotation via `cos(θ/2)|ψ⟩ − i·sin(θ/2)·P|ψ⟩`, cloning the buffer.
    pub fn apply_pauli_rotation_amps(amps: &mut [Complex64], string: &PauliString, theta: f64) {
        if string.is_identity() {
            return;
        }
        let (s, co) = (theta / 2.0).sin_cos();
        let old = amps.to_vec();
        for a in amps.iter_mut() {
            *a = a.scale(co);
        }
        let minus_i_sin = Complex64::new(0.0, -s);
        for (b, a) in old.iter().enumerate() {
            if *a == Complex64::ZERO {
                continue;
            }
            let (b2, phase) = string.apply_to_basis(b as u64);
            amps[b2 as usize] += minus_i_sin * phase * *a;
        }
    }

    /// Naive Pauli-string application via [`PauliString::apply_to_basis`], building a
    /// fresh output buffer (reference analogue of [`super::apply_pauli_string`]).
    pub fn apply_pauli_string_amps(amps: &mut [Complex64], string: &PauliString) {
        let old = amps.to_vec();
        for a in amps.iter_mut() {
            *a = Complex64::ZERO;
        }
        for (b, a) in old.iter().enumerate() {
            let (b2, phase) = string.apply_to_basis(b as u64);
            amps[b2 as usize] += phase * *a;
        }
    }

    /// Applies one gate to interleaved amplitudes using the naive kernels.
    pub fn apply_gate_amps(amps: &mut [Complex64], gate: &qcircuit::Gate, params: &[f64]) {
        use qcircuit::Gate;
        match gate {
            Gate::H(q) => apply_single_qubit_amps(amps, *q, &super::H_MATRIX),
            Gate::X(q) => apply_single_qubit_amps(amps, *q, &super::X_MATRIX),
            Gate::Y(q) => apply_single_qubit_amps(amps, *q, &super::Y_MATRIX),
            Gate::Z(q) => apply_single_qubit_amps(amps, *q, &super::Z_MATRIX),
            Gate::S(q) => apply_single_qubit_amps(amps, *q, &super::S_MATRIX),
            Gate::Sdg(q) => apply_single_qubit_amps(amps, *q, &super::SDG_MATRIX),
            Gate::Cx(c, t) => apply_cx_amps(amps, *c, *t),
            Gate::Cz(c, t) => apply_cz_amps(amps, *c, *t),
            Gate::Rx(q, a) => {
                apply_single_qubit_amps(amps, *q, &super::rx_matrix(a.resolve(params)))
            }
            Gate::Ry(q, a) => {
                apply_single_qubit_amps(amps, *q, &super::ry_matrix(a.resolve(params)))
            }
            Gate::Rz(q, a) => {
                apply_single_qubit_amps(amps, *q, &super::rz_matrix(a.resolve(params)))
            }
            Gate::PauliRotation(string, a) => {
                apply_pauli_rotation_amps(amps, string, a.resolve(params))
            }
        }
    }

    /// Naive single-qubit gate (statevector wrapper; converts at the boundary).
    pub fn apply_single_qubit(state: &mut Statevector, q: usize, m: &Matrix2) {
        let mut amps = state.to_amplitudes();
        apply_single_qubit_amps(&mut amps, q, m);
        state.copy_from_amplitudes(&amps);
    }

    /// Naive CX (statevector wrapper; converts at the boundary).
    pub fn apply_cx(state: &mut Statevector, control: usize, target: usize) {
        let mut amps = state.to_amplitudes();
        apply_cx_amps(&mut amps, control, target);
        state.copy_from_amplitudes(&amps);
    }

    /// Naive CZ (statevector wrapper; converts at the boundary).
    pub fn apply_cz(state: &mut Statevector, control: usize, target: usize) {
        let mut amps = state.to_amplitudes();
        apply_cz_amps(&mut amps, control, target);
        state.copy_from_amplitudes(&amps);
    }

    /// Naive Pauli rotation (statevector wrapper; converts at the boundary).
    pub fn apply_pauli_rotation(state: &mut Statevector, string: &PauliString, theta: f64) {
        let mut amps = state.to_amplitudes();
        apply_pauli_rotation_amps(&mut amps, string, theta);
        state.copy_from_amplitudes(&amps);
    }

    /// Naive Pauli-string application (statevector wrapper; converts at the boundary).
    pub fn apply_pauli_string(state: &mut Statevector, string: &PauliString) {
        let mut amps = state.to_amplitudes();
        apply_pauli_string_amps(&mut amps, string);
        state.copy_from_amplitudes(&amps);
    }

    /// Applies one gate using the naive kernels (reference analogue of
    /// [`super::apply_gate`]; converts at the boundary).
    pub fn apply_gate(state: &mut Statevector, gate: &qcircuit::Gate, params: &[f64]) {
        let mut amps = state.to_amplitudes();
        apply_gate_amps(&mut amps, gate, params);
        state.copy_from_amplitudes(&amps);
    }

    /// Runs a whole circuit through the naive kernels, converting to interleaved
    /// storage once for the whole circuit.
    pub fn run_circuit(
        circuit: &qcircuit::Circuit,
        params: &[f64],
        initial: &Statevector,
    ) -> Statevector {
        let mut amps = initial.to_amplitudes();
        for gate in circuit.gates() {
            apply_gate_amps(&mut amps, gate, params);
        }
        Statevector::from_amplitudes(amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Angle;
    use qop::PauliOp;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(1));
        assert!(close(out.probability(0), 0.5));
        assert!(close(out.probability(1), 0.5));
    }

    #[test]
    fn bell_state_and_ghz() {
        let mut ghz = Circuit::new(3);
        ghz.push(Gate::H(0));
        ghz.push(Gate::Cx(0, 1));
        ghz.push(Gate::Cx(1, 2));
        let out = run_circuit(&ghz, &[], &Statevector::zero_state(3));
        assert!(close(out.probability(0b000), 0.5));
        assert!(close(out.probability(0b111), 0.5));
        assert!(close(out.norm(), 1.0));
    }

    #[test]
    fn rx_rotates_z_expectation() {
        let z = PauliOp::from_labels(1, &[("Z", 1.0)]);
        for &theta in &[0.0, 0.3, 1.2, std::f64::consts::PI] {
            let mut circ = Circuit::new(1);
            circ.push(Gate::Rx(0, Angle::param(0)));
            let out = run_circuit(&circ, &[theta], &Statevector::zero_state(1));
            assert!(
                close(z.expectation(&out), theta.cos()),
                "theta={theta}: {} vs {}",
                z.expectation(&out),
                theta.cos()
            );
        }
    }

    #[test]
    fn ry_rotates_between_basis_states() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::Ry(0, Angle::param(0)));
        let out = run_circuit(&circ, &[std::f64::consts::PI], &Statevector::zero_state(1));
        assert!(close(out.probability(1), 1.0));
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        circ.push(Gate::Rz(0, Angle::param(0)));
        circ.push(Gate::H(0));
        // H Rz(θ) H |0> gives P(0) = cos²(θ/2).
        let theta = 0.8f64;
        let out = run_circuit(&circ, &[theta], &Statevector::zero_state(1));
        assert!(close(out.probability(0), (theta / 2.0).cos().powi(2)));
    }

    #[test]
    fn pauli_rotation_matches_dedicated_rotations() {
        // exp(-iθ/2 Z0Z1) acting on |++> must equal the textbook CX-RZ-CX construction.
        let theta = 0.9;
        let zz = PauliString::from_label("ZZ").unwrap();
        let mut a = Circuit::new(2);
        a.push(Gate::H(0));
        a.push(Gate::H(1));
        a.push(Gate::PauliRotation(zz, Angle::param(0)));

        let mut b = Circuit::new(2);
        b.push(Gate::H(0));
        b.push(Gate::H(1));
        b.push(Gate::Cx(0, 1));
        b.push(Gate::Rz(1, Angle::param(0)));
        b.push(Gate::Cx(0, 1));

        let sa = run_circuit(&a, &[theta], &Statevector::zero_state(2));
        let sb = run_circuit(&b, &[theta], &Statevector::zero_state(2));
        assert!(close(sa.overlap(&sb), 1.0));
    }

    #[test]
    fn single_qubit_rotation_gates_match_pauli_rotation_path() {
        for (gate_ctor, label) in [
            (Gate::Rx as fn(usize, Angle) -> Gate, "X"),
            (Gate::Ry as fn(usize, Angle) -> Gate, "Y"),
            (Gate::Rz as fn(usize, Angle) -> Gate, "Z"),
        ] {
            let theta = 1.1;
            let mut a = Circuit::new(1);
            a.push(Gate::H(0));
            a.push(gate_ctor(0, Angle::param(0)));
            let mut b = Circuit::new(1);
            b.push(Gate::H(0));
            b.push(Gate::PauliRotation(
                PauliString::from_label(label).unwrap(),
                Angle::param(0),
            ));
            let sa = run_circuit(&a, &[theta], &Statevector::zero_state(1));
            let sb = run_circuit(&b, &[theta], &Statevector::zero_state(1));
            assert!(close(sa.overlap(&sb), 1.0), "mismatch for R{label}");
        }
    }

    #[test]
    fn cz_phases_the_11_component() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::H(1));
        circ.push(Gate::Cz(0, 1));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(2));
        assert!(close(out.amplitude(0b11).re, -0.5));
        assert!(close(out.amplitude(0b01).re, 0.5));
    }

    #[test]
    fn s_and_sdg_cancel() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        circ.push(Gate::S(0));
        circ.push(Gate::Sdg(0));
        circ.push(Gate::H(0));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(1));
        assert!(close(out.probability(0), 1.0));
    }

    #[test]
    fn unitarity_preserves_norm_for_random_ansatz() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular);
        let circ = ansatz.build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let out = run_circuit(&circ, &params, &Statevector::zero_state(4));
        assert!(close(out.norm(), 1.0));
    }

    #[test]
    fn run_circuit_into_reuses_scratch_and_matches() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let circ = HardwareEfficientAnsatz::new(5, 2, Entanglement::Circular).build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64).cos())
            .collect();
        let initial = Statevector::zero_state(5);
        let expected = run_circuit(&circ, &params, &initial);
        let mut scratch = Statevector::zero_state(5);
        let buffer_before = scratch.re().as_ptr();
        run_circuit_into(&circ, &params, &initial, &mut scratch);
        assert_eq!(buffer_before, scratch.re().as_ptr(), "scratch reallocated");
        assert!(close(expected.overlap(&scratch), 1.0));
    }

    fn max_diff(a: &Statevector, b: &Statevector) -> f64 {
        a.to_amplitudes()
            .iter()
            .zip(b.to_amplitudes())
            .map(|(x, y)| (*x - y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fast_kernels_match_reference_on_dense_states() {
        // A state with every amplitude distinct, so index mix-ups cannot cancel.
        let n = 6;
        let dim = 1usize << n;
        let raw: Vec<Complex64> = (0..dim)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let base = {
            let mut v = Statevector::from_amplitudes(raw);
            v.normalize();
            v
        };
        for q in 0..n {
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_single_qubit(&mut fast, q, &rx_matrix(0.7));
            reference::apply_single_qubit(&mut naive, q, &rx_matrix(0.7));
            assert!(close(fast.overlap(&naive), 1.0), "1q mismatch on qubit {q}");
        }
        for (cq, tq) in [(0, 1), (1, 0), (2, 5), (5, 2), (4, 3)] {
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_cx(&mut fast, cq, tq);
            reference::apply_cx(&mut naive, cq, tq);
            assert!(close(fast.overlap(&naive), 1.0), "CX mismatch {cq}->{tq}");
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_cz(&mut fast, cq, tq);
            reference::apply_cz(&mut naive, cq, tq);
            assert!(close(fast.overlap(&naive), 1.0), "CZ mismatch {cq}->{tq}");
        }
        for label in ["ZZIIZZ", "XIYIZX", "YYYYYY", "IIXXII", "ZIIIII", "IIIIIX"] {
            let string = PauliString::from_label(label).unwrap();
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_pauli_rotation(&mut fast, &string, 1.234);
            reference::apply_pauli_rotation(&mut naive, &string, 1.234);
            assert!(
                close(fast.overlap(&naive), 1.0),
                "rotation mismatch on {label}"
            );
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_pauli_string(&mut fast, &string);
            reference::apply_pauli_string(&mut naive, &string);
            let diff = max_diff(&fast, &naive);
            assert!(diff < 1e-14, "pauli-string mismatch on {label}: {diff}");
        }
    }

    #[test]
    fn pauli_string_application_is_phase_exact_involution() {
        // Applying P twice is the exact identity (P² = I), amplitude for amplitude.
        let n = 5;
        let base = {
            let dim = 1usize << n;
            let mut v = Statevector::from_amplitudes(
                (0..dim)
                    .map(|i| Complex64::new((i as f64 * 0.19).cos(), (i as f64 * 0.41).sin()))
                    .collect(),
            );
            v.normalize();
            v
        };
        for label in ["XYZIX", "IIZZI", "YIIIY", "XXXXX"] {
            let string = PauliString::from_label(label).unwrap();
            let mut twice = base.clone();
            apply_pauli_string(&mut twice, &string);
            apply_pauli_string(&mut twice, &string);
            let diff = max_diff(&twice, &base);
            assert!(diff < 1e-14, "P² ≠ I for {label}: {diff}");
        }
    }
}
