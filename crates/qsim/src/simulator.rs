//! Dense statevector circuit simulator.
//!
//! This plays the role of Qiskit Aer's `StatevectorSimulator` in the paper's evaluation:
//! it executes a parameterized [`Circuit`] exactly (no shot noise) and returns the final
//! [`Statevector`].  Shot noise and hardware noise are layered on top by the estimator and
//! noise modules.
//!
//! # Kernel design
//!
//! Gate application is the hot path of every VQA optimization loop, so the kernels avoid
//! the three classic costs of a naive statevector simulator:
//!
//! * **No data-dependent branches.**  A 2×2 gate on qubit `q` updates the amplitude pairs
//!   `(i0, i0 | 1<<q)`.  Instead of scanning all `2^n` indices and testing `i & bit == 0`,
//!   the kernels enumerate exactly the `2^(n-1)` pair indices with a two-level
//!   `(block, offset)` bit-insertion walk — half the iterations, and the inner loop is
//!   pure arithmetic the compiler can unroll and vectorize.  Controlled gates enumerate
//!   only the quarter of indices with the control bit set.
//! * **No allocation.**  Pauli rotations `exp(-iθ/2 P)` exploit that a Pauli string acts
//!   on the computational basis as the involution `b ↔ b ^ x_mask`: each `(b, b')` pair is
//!   rotated in place by a 2×2 update, instead of cloning the full state per gate.
//!   [`run_circuit_in_place`] / [`run_circuit_into`] let callers drive a whole circuit
//!   without a single allocation, which the backend layers in `vqa` use to keep optimizer
//!   inner loops allocation-free.
//! * **Data parallelism.**  For registers at or above [`parallel_threshold`] amplitudes
//!   the kernels split the pair-index range across threads (disjoint index sets, so the
//!   updates are race-free).  Small registers stay serial: thread fan-out costs more than
//!   the update itself below the threshold.
//!
//! The original straightforward kernels are retained in [`reference`]; property tests and
//! the `treevqa_bench` criterion benches check the fast kernels against them.

use qcircuit::{Circuit, Gate};
// The parallel policy (threshold knob, worker gate, Send pointer wrapper, i-power table)
// is shared with the expectation kernels and lives in `qop::par`; `SendPtr` is the
// Sync wrapper for the disjoint-index amplitude writes.
use qop::par::{use_parallel, SendPtr, I_POWERS, MIN_PAR_INDICES};
use qop::{Complex64, PauliString, Statevector};
use rayon::prelude::*;

// One knob governs both the gate kernels here and the expectation kernels in `qop`:
// `QSIM_PAR_THRESHOLD` amplitudes (default 2^14), read once per process.
pub use qop::parallel_threshold;

/// Executes `circuit` with bound parameter values `params`, starting from `initial`.
///
/// # Examples
///
/// ```
/// use qcircuit::{Circuit, Gate};
/// use qop::Statevector;
/// use qsim::run_circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cx(0, 1));
/// let out = run_circuit(&bell, &[], &Statevector::zero_state(2));
/// assert!((out.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((out.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the circuit and state register sizes differ, or if a parameterized gate
/// references an index beyond `params.len()`.
pub fn run_circuit(circuit: &Circuit, params: &[f64], initial: &Statevector) -> Statevector {
    let mut state = initial.clone();
    run_circuit_in_place(circuit, params, &mut state);
    state
}

/// Executes `circuit` directly on `state`.
///
/// Since the compiled-execution refactor this is a thin wrapper that lowers the circuit
/// through [`crate::CompiledCircuit`] and executes the fused form — a one-shot caller
/// gets gate fusion for free.  Hot loops that bind many parameter vectors to the *same*
/// circuit should compile once and call
/// [`crate::CompiledCircuit::execute_in_place`]/[`execute_into`](crate::CompiledCircuit::execute_into)
/// directly (the `vqa` backends do this through a compiled-circuit cache).
///
/// # Panics
///
/// Panics if the circuit and state register sizes differ, or if a parameterized gate
/// references an index beyond `params.len()`.
pub fn run_circuit_in_place(circuit: &Circuit, params: &[f64], state: &mut Statevector) {
    assert_eq!(
        circuit.num_qubits(),
        state.num_qubits(),
        "circuit acts on {} qubits but the state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    crate::CompiledCircuit::compile(circuit).execute_in_place(params, state);
}

/// Executes `circuit` gate by gate, with no fusion — the pre-compilation interpreter.
///
/// Retained as the baseline the criterion benches compare [`crate::CompiledCircuit`]
/// against, and as an independent second implementation for the equivalence tests.
pub fn interpret_circuit_in_place(circuit: &Circuit, params: &[f64], state: &mut Statevector) {
    assert_eq!(
        circuit.num_qubits(),
        state.num_qubits(),
        "circuit acts on {} qubits but the state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    for gate in circuit.gates() {
        apply_gate(state, gate, params);
    }
}

/// Executes `circuit` starting from `initial`, writing the result into `scratch`.
///
/// `scratch`'s allocation is reused whenever its dimension already matches, making this
/// the zero-allocation building block for optimizer inner loops that evaluate one ansatz
/// at many parameter vectors (see `vqa::StatevectorBackend`).
pub fn run_circuit_into(
    circuit: &Circuit,
    params: &[f64],
    initial: &Statevector,
    scratch: &mut Statevector,
) {
    scratch.clone_from(initial);
    run_circuit_in_place(circuit, params, scratch);
}

/// Applies a single gate in place.
pub fn apply_gate(state: &mut Statevector, gate: &Gate, params: &[f64]) {
    match gate {
        Gate::H(q) => apply_single_qubit(state, *q, &H_MATRIX),
        Gate::X(q) => apply_single_qubit(state, *q, &X_MATRIX),
        Gate::Y(q) => apply_single_qubit(state, *q, &Y_MATRIX),
        Gate::Z(q) => apply_single_qubit(state, *q, &Z_MATRIX),
        Gate::S(q) => apply_single_qubit(state, *q, &S_MATRIX),
        Gate::Sdg(q) => apply_single_qubit(state, *q, &SDG_MATRIX),
        Gate::Cx(c, t) => apply_cx(state, *c, *t),
        Gate::Cz(c, t) => apply_cz(state, *c, *t),
        Gate::Rx(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &rx_matrix(theta));
        }
        Gate::Ry(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &ry_matrix(theta));
        }
        Gate::Rz(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &rz_matrix(theta));
        }
        Gate::PauliRotation(string, a) => {
            let theta = a.resolve(params);
            apply_pauli_rotation(state, string, theta);
        }
    }
}

/// A dense 2×2 complex matrix (row-major), the single-qubit-gate representation.
pub type Matrix2 = [[Complex64; 2]; 2];

const fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

static H_MATRIX: Matrix2 = [
    [c(FRAC_1_SQRT_2, 0.0), c(FRAC_1_SQRT_2, 0.0)],
    [c(FRAC_1_SQRT_2, 0.0), c(-FRAC_1_SQRT_2, 0.0)],
];
static X_MATRIX: Matrix2 = [[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]];
static Y_MATRIX: Matrix2 = [[c(0.0, 0.0), c(0.0, -1.0)], [c(0.0, 1.0), c(0.0, 0.0)]];
static Z_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(-1.0, 0.0)]];
static S_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, 1.0)]];
static SDG_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, -1.0)]];

/// `RX(θ) = exp(-i θ/2 X)`.
pub fn rx_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(0.0, -s)], [c(0.0, -s), c(co, 0.0)]]
}

/// `RY(θ) = exp(-i θ/2 Y)`.
pub fn ry_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(-s, 0.0)], [c(s, 0.0), c(co, 0.0)]]
}

/// `RZ(θ) = exp(-i θ/2 Z)`.
pub fn rz_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, -s), c(0.0, 0.0)], [c(0.0, 0.0), c(co, s)]]
}

/// Inserts a zero bit at position `pos`: maps `k`'s bits `[pos..]` up by one, leaving bit
/// `pos` clear.  Enumerating `k = 0..dim/2` through this map yields exactly the indices
/// with bit `pos` clear, in increasing order.
#[inline(always)]
fn insert_zero_bit(k: usize, pos: usize) -> usize {
    let low_mask = (1usize << pos) - 1;
    ((k & !low_mask) << 1) | (k & low_mask)
}

/// Applies an arbitrary 2×2 unitary to qubit `q`.
///
/// Branch-free two-level walk: the outer level ranges over blocks of `2^(q+1)` contiguous
/// amplitudes, the inner level over the `2^q` offsets inside a block; `i0 = block + off`
/// and `i1 = i0 | bit` form the update pair directly, so no index test is ever executed.
pub fn apply_single_qubit(state: &mut Statevector, q: usize, m: &Matrix2) {
    let dim = state.dim();
    let bit = 1usize << q;
    assert!(
        bit < dim,
        "qubit index {q} out of range for {dim} amplitudes"
    );
    let m = *m;
    let amps = state.amplitudes_mut();
    if use_parallel(dim) {
        let ptr = SendPtr(amps.as_mut_ptr());
        (0..dim / 2)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| {
                let i0 = insert_zero_bit(k, q);
                let i1 = i0 | bit;
                // SAFETY: `insert_zero_bit` is injective over k and never sets `bit`, so
                // every (i0, i1) pair is disjoint from every other thread's pairs.
                unsafe {
                    let a0 = *ptr.add(i0);
                    let a1 = *ptr.add(i1);
                    *ptr.add(i0) = m[0][0] * a0 + m[0][1] * a1;
                    *ptr.add(i1) = m[1][0] * a0 + m[1][1] * a1;
                }
            });
        return;
    }
    // Serial path: split each block into its i0 half (qubit bit clear) and i1 half (bit
    // set) and walk them as a zipped pair of slices — zero index arithmetic and zero
    // bounds checks in the inner loop, which lets the compiler unroll and vectorize it.
    for block in amps.chunks_exact_mut(bit << 1) {
        let (los, his) = block.split_at_mut(bit);
        for (a0, a1) in los.iter_mut().zip(his.iter_mut()) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = m[0][0] * x0 + m[0][1] * x1;
            *a1 = m[1][0] * x0 + m[1][1] * x1;
        }
    }
}

/// Enumerates the `dim/4` basis indices with the control bit **set** and the target bit
/// **clear** by double bit-insertion, then hands each to `f` (serial or parallel).
#[inline]
fn for_each_controlled_pair<F>(dim: usize, control: usize, target: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let cbit = 1usize << control;
    let (lo, hi) = if control < target {
        (control, target)
    } else {
        (target, control)
    };
    let quarter = dim / 4;
    if use_parallel(dim) {
        (0..quarter)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| f(insert_zero_bit(insert_zero_bit(k, lo), hi) | cbit));
    } else {
        for k in 0..quarter {
            f(insert_zero_bit(insert_zero_bit(k, lo), hi) | cbit);
        }
    }
}

/// Applies CX with the given control and target.
///
/// Iterates only the quarter of indices with the control bit set and the target bit clear
/// (the swap partners), rather than scanning and testing all `2^n` indices.
pub fn apply_cx(state: &mut Statevector, control: usize, target: usize) {
    assert_ne!(control, target, "CX control and target must differ");
    let dim = state.dim();
    let tbit = 1usize << target;
    assert!(
        1usize << control < dim && tbit < dim,
        "CX qubits ({control}, {target}) out of range for {dim} amplitudes"
    );
    let ptr = SendPtr(state.amplitudes_mut().as_mut_ptr());
    for_each_controlled_pair(dim, control, target, |i0| {
        // SAFETY: i0 has the target bit clear and each i0 is produced exactly once, so
        // the (i0, i0|tbit) swap pairs are pairwise disjoint.
        unsafe { std::ptr::swap(ptr.add(i0), ptr.add(i0 | tbit)) };
    });
}

/// Applies CZ with the given control and target (symmetric).
///
/// Iterates only the quarter of indices with both bits set.
pub fn apply_cz(state: &mut Statevector, control: usize, target: usize) {
    assert_ne!(control, target, "CZ control and target must differ");
    let dim = state.dim();
    let tbit = 1usize << target;
    assert!(
        1usize << control < dim && tbit < dim,
        "CZ qubits ({control}, {target}) out of range for {dim} amplitudes"
    );
    let ptr = SendPtr(state.amplitudes_mut().as_mut_ptr());
    for_each_controlled_pair(dim, control, target, |i0| {
        let i = i0 | tbit;
        // SAFETY: each index with both bits set is produced exactly once.
        unsafe { *ptr.add(i) = -*ptr.add(i) };
    });
}

/// Applies `exp(-i θ/2 P)` for a Pauli string `P`, in place and allocation-free.
///
/// A Pauli string maps basis states by the involution `b ↔ b ^ x_mask` (with a phase), so
/// the rotation decomposes into independent 2×2 rotations on `(b, b ^ x_mask)` pairs —
/// there is no need for the naive `cos·|ψ⟩ − i·sin·P|ψ⟩` construction's full-state clone.
/// Diagonal strings (`x_mask == 0`) reduce to a pure per-amplitude phase.
pub fn apply_pauli_rotation(state: &mut Statevector, string: &PauliString, theta: f64) {
    if string.is_identity() {
        // Global phase only; expectation values are unaffected, so skip it.
        return;
    }
    let (s, co) = (theta / 2.0).sin_cos();
    let dim = state.dim();
    let x_mask = string.x_mask();
    let z_mask = string.z_mask();

    if x_mask == 0 {
        // Diagonal: amplitude b picks up exp(-iθ/2 · (-1)^popcount(b & z)).
        let phases = [c(co, -s), c(co, s)];
        let amps = state.amplitudes_mut();
        if use_parallel(dim) {
            let ptr = SendPtr(amps.as_mut_ptr());
            (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .for_each(|b| {
                    let parity = ((b as u64 & z_mask).count_ones() & 1) as usize;
                    // SAFETY: each b is visited exactly once.
                    unsafe { *ptr.add(b) = *ptr.add(b) * phases[parity] };
                });
        } else {
            for (b, a) in amps.iter_mut().enumerate() {
                let parity = ((b as u64 & z_mask).count_ones() & 1) as usize;
                *a *= phases[parity];
            }
        }
        return;
    }

    // General case: pair b0 (pivot bit clear) with b1 = b0 ^ x_mask (pivot bit set).
    // P|b0⟩ = phase0|b1⟩ with phase0 = i^num_y · (-1)^popcount(b0 & z); because P² = I,
    // the return phase is conj(phase0).  The 2×2 update is then
    //   a0' = cos·a0 − i·sin·conj(phase0)·a1
    //   a1' = cos·a1 − i·sin·phase0·a0
    //
    // phase0 only takes the four values i^k, so both off-diagonal factors are precomputed
    // into a 4-entry table indexed by k — the inner loop is one AND + popcount + table
    // load per pair, with no branches.
    let pivot = (63 - x_mask.leading_zeros()) as usize;
    let num_y = (x_mask & z_mask).count_ones();
    let minus_i_sin = Complex64::new(0.0, -s);
    // factors[k] = (f01, f10) for phase0 = i^k.
    let factors: [(Complex64, Complex64); 4] = std::array::from_fn(|k| {
        let phase0 = I_POWERS[k];
        (minus_i_sin * phase0.conj(), minus_i_sin * phase0)
    });
    let amps = state.amplitudes_mut();
    if use_parallel(dim) {
        let ptr = SendPtr(amps.as_mut_ptr());
        (0..dim / 2)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| {
                let i0 = insert_zero_bit(k, pivot);
                let i1 = i0 ^ x_mask as usize;
                let k4 = ((num_y + 2 * (i0 as u64 & z_mask).count_ones()) & 3) as usize;
                let (f01, f10) = factors[k4];
                // SAFETY: i0 never has the pivot bit, i1 always does, and ^x_mask is an
                // involution, so pairs are pairwise disjoint across threads.
                unsafe {
                    let a0 = *ptr.add(i0);
                    let a1 = *ptr.add(i1);
                    *ptr.add(i0) = a0.scale(co) + f01 * a1;
                    *ptr.add(i1) = a1.scale(co) + f10 * a0;
                }
            });
        return;
    }
    // Serial path: walk blocks of 2^(pivot+1) amplitudes.  Within a block, i0 = base + off
    // and i1 = base + 2^pivot + (off ^ xl), where xl is x_mask with its pivot bit removed
    // (the pivot is x's highest bit, so x spans only the block).  The z-parity of the
    // block base is hoisted; the inner loop popcounts only the low bits.
    let pbit = 1usize << pivot;
    let xl = (x_mask as usize) & (pbit - 1);
    let z_low = z_mask & (pbit as u64 - 1);
    for (block_index, block) in amps.chunks_exact_mut(pbit << 1).enumerate() {
        let base = block_index * (pbit << 1);
        let base_popc = num_y + 2 * (base as u64 & z_mask).count_ones();
        let (los, his) = block.split_at_mut(pbit);
        for off in 0..pbit {
            let partner = off ^ xl;
            let k4 = ((base_popc + 2 * (off as u64 & z_low).count_ones()) & 3) as usize;
            let (f01, f10) = factors[k4];
            // SAFETY: off and partner are both < pbit, the length of each half-slice.
            unsafe {
                let a0 = *los.get_unchecked(off);
                let a1 = *his.get_unchecked(partner);
                *los.get_unchecked_mut(off) = a0.scale(co) + f01 * a1;
                *his.get_unchecked_mut(partner) = a1.scale(co) + f10 * a0;
            }
        }
    }
}

/// Applies a Pauli string `P` itself (not a rotation), in place and allocation-free —
/// the error-insertion primitive of stochastic Pauli-trajectory noise simulation
/// (`qnoise`): a sampled error is one Pauli applied between compiled operations.
///
/// The kernel is the θ-free specialization of [`apply_pauli_rotation`]: `P` maps basis
/// states by the involution `b ↔ b ^ x_mask` with a phase `i^num_y · (−1)^popcount(b & z)`
/// — so diagonal strings are one sign pass and general strings are one disjoint-pair
/// swap-with-phase pass, parallelized above [`parallel_threshold`] like every other
/// kernel.  The application is phase-exact (including the `i^num_y` factor), so inserted
/// errors compose exactly with per-gate reference simulation, not just up to global phase.
pub fn apply_pauli_string(state: &mut Statevector, string: &PauliString) {
    if string.is_identity() {
        return;
    }
    let dim = state.dim();
    let x_mask = string.x_mask();
    let z_mask = string.z_mask();

    if x_mask == 0 {
        // Diagonal: amplitude b picks up (−1)^popcount(b & z).
        let amps = state.amplitudes_mut();
        if use_parallel(dim) {
            let ptr = SendPtr(amps.as_mut_ptr());
            (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .for_each(|b| {
                    if (b as u64 & z_mask).count_ones() & 1 == 1 {
                        // SAFETY: each b is visited exactly once.
                        unsafe { *ptr.add(b) = -*ptr.add(b) };
                    }
                });
        } else {
            for (b, a) in amps.iter_mut().enumerate() {
                if (b as u64 & z_mask).count_ones() & 1 == 1 {
                    *a = -*a;
                }
            }
        }
        return;
    }

    // General case: P|b0⟩ = phase0|b1⟩ with b1 = b0 ^ x_mask and
    // phase0 = i^num_y · (−1)^popcount(b0 & z); since P² = I the return phase is
    // conj(phase0).  Pair enumeration mirrors the rotation kernel.
    let pivot = (63 - x_mask.leading_zeros()) as usize;
    let num_y = (x_mask & z_mask).count_ones();
    let amps = state.amplitudes_mut();
    let ptr = SendPtr(amps.as_mut_ptr());
    let update = |i0: usize| {
        let i1 = i0 ^ x_mask as usize;
        let k4 = ((num_y + 2 * (i0 as u64 & z_mask).count_ones()) & 3) as usize;
        let phase0 = I_POWERS[k4];
        // SAFETY: i0 never has the pivot bit, i1 always does, and ^x_mask is an
        // involution, so pairs are pairwise disjoint (across threads too).
        unsafe {
            let a0 = *ptr.add(i0);
            let a1 = *ptr.add(i1);
            *ptr.add(i0) = phase0.conj() * a1;
            *ptr.add(i1) = phase0 * a0;
        }
    };
    if use_parallel(dim) {
        (0..dim / 2)
            .into_par_iter()
            .with_min_len(MIN_PAR_INDICES)
            .for_each(|k| update(insert_zero_bit(k, pivot)));
    } else {
        for k in 0..dim / 2 {
            update(insert_zero_bit(k, pivot));
        }
    }
}

pub mod reference {
    //! The original, straightforward kernels, retained as the correctness baseline.
    //!
    //! These scan all `2^n` amplitudes with per-index branches, and the Pauli rotation
    //! clones the full statevector per gate.  They exist so property tests can check the
    //! optimized kernels against an independent implementation, and so the criterion
    //! benches in `treevqa_bench` can quantify the speedup; nothing else should call them.

    use super::Matrix2;
    use qop::{Complex64, PauliString, Statevector};

    /// Naive single-qubit gate: scans every index and tests the qubit bit.
    pub fn apply_single_qubit(state: &mut Statevector, q: usize, m: &Matrix2) {
        let dim = state.dim();
        let bit = 1usize << q;
        let amps = state.amplitudes_mut();
        let mut base = 0usize;
        while base < dim {
            if base & bit == 0 {
                let i0 = base;
                let i1 = base | bit;
                let a0 = amps[i0];
                let a1 = amps[i1];
                amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += 1;
        }
    }

    /// Naive CX: scans every index and tests both bits.
    pub fn apply_cx(state: &mut Statevector, control: usize, target: usize) {
        assert_ne!(control, target, "CX control and target must differ");
        let dim = state.dim();
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        let amps = state.amplitudes_mut();
        for i in 0..dim {
            if i & cbit != 0 && i & tbit == 0 {
                amps.swap(i, i | tbit);
            }
        }
    }

    /// Naive CZ: scans every index and tests both bits.
    pub fn apply_cz(state: &mut Statevector, control: usize, target: usize) {
        assert_ne!(control, target, "CZ control and target must differ");
        let dim = state.dim();
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        let amps = state.amplitudes_mut();
        for (i, a) in amps.iter_mut().enumerate().take(dim) {
            if i & cbit != 0 && i & tbit != 0 {
                *a = -*a;
            }
        }
    }

    /// Naive Pauli rotation via `cos(θ/2)|ψ⟩ − i·sin(θ/2)·P|ψ⟩`, cloning the state.
    pub fn apply_pauli_rotation(state: &mut Statevector, string: &PauliString, theta: f64) {
        if string.is_identity() {
            return;
        }
        let (s, co) = (theta / 2.0).sin_cos();
        let dim = state.dim();
        let old = state.clone();
        let old_amps = old.amplitudes();
        let amps = state.amplitudes_mut();
        for a in amps.iter_mut() {
            *a = a.scale(co);
        }
        let minus_i_sin = Complex64::new(0.0, -s);
        for b in 0..dim as u64 {
            let a = old_amps[b as usize];
            if a == Complex64::ZERO {
                continue;
            }
            let (b2, phase) = string.apply_to_basis(b);
            amps[b2 as usize] += minus_i_sin * phase * a;
        }
    }

    /// Naive Pauli-string application via [`PauliString::apply_to_basis`], building a
    /// fresh output vector (reference analogue of [`super::apply_pauli_string`]).
    pub fn apply_pauli_string(state: &mut Statevector, string: &PauliString) {
        let old = state.clone();
        let amps = state.amplitudes_mut();
        for a in amps.iter_mut() {
            *a = Complex64::ZERO;
        }
        for (b, a) in old.amplitudes().iter().enumerate() {
            let (b2, phase) = string.apply_to_basis(b as u64);
            amps[b2 as usize] += phase * *a;
        }
    }

    /// Applies one gate using the naive kernels (reference analogue of
    /// [`super::apply_gate`]).
    pub fn apply_gate(state: &mut Statevector, gate: &qcircuit::Gate, params: &[f64]) {
        use qcircuit::Gate;
        match gate {
            Gate::H(q) => apply_single_qubit(state, *q, &super::H_MATRIX),
            Gate::X(q) => apply_single_qubit(state, *q, &super::X_MATRIX),
            Gate::Y(q) => apply_single_qubit(state, *q, &super::Y_MATRIX),
            Gate::Z(q) => apply_single_qubit(state, *q, &super::Z_MATRIX),
            Gate::S(q) => apply_single_qubit(state, *q, &super::S_MATRIX),
            Gate::Sdg(q) => apply_single_qubit(state, *q, &super::SDG_MATRIX),
            Gate::Cx(c, t) => apply_cx(state, *c, *t),
            Gate::Cz(c, t) => apply_cz(state, *c, *t),
            Gate::Rx(q, a) => apply_single_qubit(state, *q, &super::rx_matrix(a.resolve(params))),
            Gate::Ry(q, a) => apply_single_qubit(state, *q, &super::ry_matrix(a.resolve(params))),
            Gate::Rz(q, a) => apply_single_qubit(state, *q, &super::rz_matrix(a.resolve(params))),
            Gate::PauliRotation(string, a) => {
                apply_pauli_rotation(state, string, a.resolve(params))
            }
        }
    }

    /// Runs a whole circuit through the naive kernels.
    pub fn run_circuit(
        circuit: &qcircuit::Circuit,
        params: &[f64],
        initial: &Statevector,
    ) -> Statevector {
        let mut state = initial.clone();
        for gate in circuit.gates() {
            apply_gate(&mut state, gate, params);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Angle;
    use qop::PauliOp;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(1));
        assert!(close(out.probability(0), 0.5));
        assert!(close(out.probability(1), 0.5));
    }

    #[test]
    fn bell_state_and_ghz() {
        let mut ghz = Circuit::new(3);
        ghz.push(Gate::H(0));
        ghz.push(Gate::Cx(0, 1));
        ghz.push(Gate::Cx(1, 2));
        let out = run_circuit(&ghz, &[], &Statevector::zero_state(3));
        assert!(close(out.probability(0b000), 0.5));
        assert!(close(out.probability(0b111), 0.5));
        assert!(close(out.norm(), 1.0));
    }

    #[test]
    fn rx_rotates_z_expectation() {
        let z = PauliOp::from_labels(1, &[("Z", 1.0)]);
        for &theta in &[0.0, 0.3, 1.2, std::f64::consts::PI] {
            let mut circ = Circuit::new(1);
            circ.push(Gate::Rx(0, Angle::param(0)));
            let out = run_circuit(&circ, &[theta], &Statevector::zero_state(1));
            assert!(
                close(z.expectation(&out), theta.cos()),
                "theta={theta}: {} vs {}",
                z.expectation(&out),
                theta.cos()
            );
        }
    }

    #[test]
    fn ry_rotates_between_basis_states() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::Ry(0, Angle::param(0)));
        let out = run_circuit(&circ, &[std::f64::consts::PI], &Statevector::zero_state(1));
        assert!(close(out.probability(1), 1.0));
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        circ.push(Gate::Rz(0, Angle::param(0)));
        circ.push(Gate::H(0));
        // H Rz(θ) H |0> gives P(0) = cos²(θ/2).
        let theta = 0.8f64;
        let out = run_circuit(&circ, &[theta], &Statevector::zero_state(1));
        assert!(close(out.probability(0), (theta / 2.0).cos().powi(2)));
    }

    #[test]
    fn pauli_rotation_matches_dedicated_rotations() {
        // exp(-iθ/2 Z0Z1) acting on |++> must equal the textbook CX-RZ-CX construction.
        let theta = 0.9;
        let zz = PauliString::from_label("ZZ").unwrap();
        let mut a = Circuit::new(2);
        a.push(Gate::H(0));
        a.push(Gate::H(1));
        a.push(Gate::PauliRotation(zz, Angle::param(0)));

        let mut b = Circuit::new(2);
        b.push(Gate::H(0));
        b.push(Gate::H(1));
        b.push(Gate::Cx(0, 1));
        b.push(Gate::Rz(1, Angle::param(0)));
        b.push(Gate::Cx(0, 1));

        let sa = run_circuit(&a, &[theta], &Statevector::zero_state(2));
        let sb = run_circuit(&b, &[theta], &Statevector::zero_state(2));
        assert!(close(sa.overlap(&sb), 1.0));
    }

    #[test]
    fn single_qubit_rotation_gates_match_pauli_rotation_path() {
        for (gate_ctor, label) in [
            (Gate::Rx as fn(usize, Angle) -> Gate, "X"),
            (Gate::Ry as fn(usize, Angle) -> Gate, "Y"),
            (Gate::Rz as fn(usize, Angle) -> Gate, "Z"),
        ] {
            let theta = 1.1;
            let mut a = Circuit::new(1);
            a.push(Gate::H(0));
            a.push(gate_ctor(0, Angle::param(0)));
            let mut b = Circuit::new(1);
            b.push(Gate::H(0));
            b.push(Gate::PauliRotation(
                PauliString::from_label(label).unwrap(),
                Angle::param(0),
            ));
            let sa = run_circuit(&a, &[theta], &Statevector::zero_state(1));
            let sb = run_circuit(&b, &[theta], &Statevector::zero_state(1));
            assert!(close(sa.overlap(&sb), 1.0), "mismatch for R{label}");
        }
    }

    #[test]
    fn cz_phases_the_11_component() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::H(1));
        circ.push(Gate::Cz(0, 1));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(2));
        assert!(close(out.amplitude(0b11).re, -0.5));
        assert!(close(out.amplitude(0b01).re, 0.5));
    }

    #[test]
    fn s_and_sdg_cancel() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        circ.push(Gate::S(0));
        circ.push(Gate::Sdg(0));
        circ.push(Gate::H(0));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(1));
        assert!(close(out.probability(0), 1.0));
    }

    #[test]
    fn unitarity_preserves_norm_for_random_ansatz() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular);
        let circ = ansatz.build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let out = run_circuit(&circ, &params, &Statevector::zero_state(4));
        assert!(close(out.norm(), 1.0));
    }

    #[test]
    fn run_circuit_into_reuses_scratch_and_matches() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let circ = HardwareEfficientAnsatz::new(5, 2, Entanglement::Circular).build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64).cos())
            .collect();
        let initial = Statevector::zero_state(5);
        let expected = run_circuit(&circ, &params, &initial);
        let mut scratch = Statevector::zero_state(5);
        let buffer_before = scratch.amplitudes().as_ptr();
        run_circuit_into(&circ, &params, &initial, &mut scratch);
        assert_eq!(
            buffer_before,
            scratch.amplitudes().as_ptr(),
            "scratch reallocated"
        );
        assert!(close(expected.overlap(&scratch), 1.0));
    }

    #[test]
    fn fast_kernels_match_reference_on_dense_states() {
        // A state with every amplitude distinct, so index mix-ups cannot cancel.
        let n = 6;
        let dim = 1usize << n;
        let raw: Vec<Complex64> = (0..dim)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let base = {
            let mut v = Statevector::from_amplitudes(raw);
            v.normalize();
            v
        };
        for q in 0..n {
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_single_qubit(&mut fast, q, &rx_matrix(0.7));
            reference::apply_single_qubit(&mut naive, q, &rx_matrix(0.7));
            assert!(close(fast.overlap(&naive), 1.0), "1q mismatch on qubit {q}");
        }
        for (cq, tq) in [(0, 1), (1, 0), (2, 5), (5, 2), (4, 3)] {
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_cx(&mut fast, cq, tq);
            reference::apply_cx(&mut naive, cq, tq);
            assert!(close(fast.overlap(&naive), 1.0), "CX mismatch {cq}->{tq}");
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_cz(&mut fast, cq, tq);
            reference::apply_cz(&mut naive, cq, tq);
            assert!(close(fast.overlap(&naive), 1.0), "CZ mismatch {cq}->{tq}");
        }
        for label in ["ZZIIZZ", "XIYIZX", "YYYYYY", "IIXXII", "ZIIIII", "IIIIIX"] {
            let string = PauliString::from_label(label).unwrap();
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_pauli_rotation(&mut fast, &string, 1.234);
            reference::apply_pauli_rotation(&mut naive, &string, 1.234);
            assert!(
                close(fast.overlap(&naive), 1.0),
                "rotation mismatch on {label}"
            );
            let mut fast = base.clone();
            let mut naive = base.clone();
            apply_pauli_string(&mut fast, &string);
            reference::apply_pauli_string(&mut naive, &string);
            let diff = fast
                .amplitudes()
                .iter()
                .zip(naive.amplitudes())
                .map(|(x, y)| (*x - *y).norm())
                .fold(0.0, f64::max);
            assert!(diff < 1e-14, "pauli-string mismatch on {label}: {diff}");
        }
    }

    #[test]
    fn pauli_string_application_is_phase_exact_involution() {
        // Applying P twice is the exact identity (P² = I), amplitude for amplitude.
        let n = 5;
        let base = {
            let dim = 1usize << n;
            let mut v = Statevector::from_amplitudes(
                (0..dim)
                    .map(|i| Complex64::new((i as f64 * 0.19).cos(), (i as f64 * 0.41).sin()))
                    .collect(),
            );
            v.normalize();
            v
        };
        for label in ["XYZIX", "IIZZI", "YIIIY", "XXXXX"] {
            let string = PauliString::from_label(label).unwrap();
            let mut twice = base.clone();
            apply_pauli_string(&mut twice, &string);
            apply_pauli_string(&mut twice, &string);
            let diff = twice
                .amplitudes()
                .iter()
                .zip(base.amplitudes())
                .map(|(x, y)| (*x - *y).norm())
                .fold(0.0, f64::max);
            assert!(diff < 1e-14, "P² ≠ I for {label}: {diff}");
        }
    }
}
