//! Dense statevector circuit simulator.
//!
//! This plays the role of Qiskit Aer's `StatevectorSimulator` in the paper's evaluation:
//! it executes a parameterized [`Circuit`] exactly (no shot noise) and returns the final
//! [`Statevector`].  Shot noise and hardware noise are layered on top by the estimator and
//! noise modules.

use qcircuit::{Circuit, Gate};
use qop::{Complex64, PauliString, Statevector};

/// Executes `circuit` with bound parameter values `params`, starting from `initial`.
///
/// # Examples
///
/// ```
/// use qcircuit::{Circuit, Gate};
/// use qop::Statevector;
/// use qsim::run_circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cx(0, 1));
/// let out = run_circuit(&bell, &[], &Statevector::zero_state(2));
/// assert!((out.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((out.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the circuit and state register sizes differ, or if a parameterized gate
/// references an index beyond `params.len()`.
pub fn run_circuit(circuit: &Circuit, params: &[f64], initial: &Statevector) -> Statevector {
    assert_eq!(
        circuit.num_qubits(),
        initial.num_qubits(),
        "circuit acts on {} qubits but the initial state has {}",
        circuit.num_qubits(),
        initial.num_qubits()
    );
    let mut state = initial.clone();
    for gate in circuit.gates() {
        apply_gate(&mut state, gate, params);
    }
    state
}

/// Applies a single gate in place.
pub fn apply_gate(state: &mut Statevector, gate: &Gate, params: &[f64]) {
    match gate {
        Gate::H(q) => apply_single_qubit(state, *q, &H_MATRIX),
        Gate::X(q) => apply_single_qubit(state, *q, &X_MATRIX),
        Gate::Y(q) => apply_single_qubit(state, *q, &Y_MATRIX),
        Gate::Z(q) => apply_single_qubit(state, *q, &Z_MATRIX),
        Gate::S(q) => apply_single_qubit(state, *q, &S_MATRIX),
        Gate::Sdg(q) => apply_single_qubit(state, *q, &SDG_MATRIX),
        Gate::Cx(c, t) => apply_cx(state, *c, *t),
        Gate::Cz(c, t) => apply_cz(state, *c, *t),
        Gate::Rx(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &rx_matrix(theta));
        }
        Gate::Ry(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &ry_matrix(theta));
        }
        Gate::Rz(q, a) => {
            let theta = a.resolve(params);
            apply_single_qubit(state, *q, &rz_matrix(theta));
        }
        Gate::PauliRotation(string, a) => {
            let theta = a.resolve(params);
            apply_pauli_rotation(state, string, theta);
        }
    }
}

type Matrix2 = [[Complex64; 2]; 2];

const fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

static H_MATRIX: Matrix2 = [
    [c(FRAC_1_SQRT_2, 0.0), c(FRAC_1_SQRT_2, 0.0)],
    [c(FRAC_1_SQRT_2, 0.0), c(-FRAC_1_SQRT_2, 0.0)],
];
static X_MATRIX: Matrix2 = [[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]];
static Y_MATRIX: Matrix2 = [[c(0.0, 0.0), c(0.0, -1.0)], [c(0.0, 1.0), c(0.0, 0.0)]];
static Z_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(-1.0, 0.0)]];
static S_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, 1.0)]];
static SDG_MATRIX: Matrix2 = [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, -1.0)]];

/// `RX(θ) = exp(-i θ/2 X)`.
fn rx_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [
        [c(co, 0.0), c(0.0, -s)],
        [c(0.0, -s), c(co, 0.0)],
    ]
}

/// `RY(θ) = exp(-i θ/2 Y)`.
fn ry_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(-s, 0.0)], [c(s, 0.0), c(co, 0.0)]]
}

/// `RZ(θ) = exp(-i θ/2 Z)`.
fn rz_matrix(theta: f64) -> Matrix2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [
        [c(co, -s), c(0.0, 0.0)],
        [c(0.0, 0.0), c(co, s)],
    ]
}

/// Applies an arbitrary 2×2 unitary to qubit `q`.
fn apply_single_qubit(state: &mut Statevector, q: usize, m: &Matrix2) {
    let dim = state.dim();
    let bit = 1usize << q;
    let amps = state.amplitudes_mut();
    let mut base = 0usize;
    while base < dim {
        if base & bit == 0 {
            let i0 = base;
            let i1 = base | bit;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
        base += 1;
    }
}

/// Applies CX with the given control and target.
fn apply_cx(state: &mut Statevector, control: usize, target: usize) {
    assert_ne!(control, target, "CX control and target must differ");
    let dim = state.dim();
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let amps = state.amplitudes_mut();
    for i in 0..dim {
        if i & cbit != 0 && i & tbit == 0 {
            amps.swap(i, i | tbit);
        }
    }
}

/// Applies CZ with the given control and target (symmetric).
fn apply_cz(state: &mut Statevector, control: usize, target: usize) {
    assert_ne!(control, target, "CZ control and target must differ");
    let dim = state.dim();
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let amps = state.amplitudes_mut();
    for (i, a) in amps.iter_mut().enumerate().take(dim) {
        if i & cbit != 0 && i & tbit != 0 {
            *a = -*a;
        }
    }
}

/// Applies `exp(-i θ/2 P)` for a Pauli string `P`, using `P² = I`:
/// `exp(-iθ/2 P)|ψ⟩ = cos(θ/2)|ψ⟩ − i·sin(θ/2)·P|ψ⟩`.
fn apply_pauli_rotation(state: &mut Statevector, string: &PauliString, theta: f64) {
    if string.is_identity() {
        // Global phase only; expectation values are unaffected, so skip it.
        return;
    }
    let (s, co) = (theta / 2.0).sin_cos();
    let dim = state.dim();
    let old = state.clone();
    let old_amps = old.amplitudes();
    let amps = state.amplitudes_mut();
    for a in amps.iter_mut() {
        *a = a.scale(co);
    }
    let minus_i_sin = Complex64::new(0.0, -s);
    for b in 0..dim as u64 {
        let a = old_amps[b as usize];
        if a == Complex64::ZERO {
            continue;
        }
        let (b2, phase) = string.apply_to_basis(b);
        amps[b2 as usize] += minus_i_sin * phase * a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Angle;
    use qop::PauliOp;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(1));
        assert!(close(out.probability(0), 0.5));
        assert!(close(out.probability(1), 0.5));
    }

    #[test]
    fn bell_state_and_ghz() {
        let mut ghz = Circuit::new(3);
        ghz.push(Gate::H(0));
        ghz.push(Gate::Cx(0, 1));
        ghz.push(Gate::Cx(1, 2));
        let out = run_circuit(&ghz, &[], &Statevector::zero_state(3));
        assert!(close(out.probability(0b000), 0.5));
        assert!(close(out.probability(0b111), 0.5));
        assert!(close(out.norm(), 1.0));
    }

    #[test]
    fn rx_rotates_z_expectation() {
        let z = PauliOp::from_labels(1, &[("Z", 1.0)]);
        for &theta in &[0.0, 0.3, 1.2, std::f64::consts::PI] {
            let mut circ = Circuit::new(1);
            circ.push(Gate::Rx(0, Angle::param(0)));
            let out = run_circuit(&circ, &[theta], &Statevector::zero_state(1));
            assert!(
                close(z.expectation(&out), theta.cos()),
                "theta={theta}: {} vs {}",
                z.expectation(&out),
                theta.cos()
            );
        }
    }

    #[test]
    fn ry_rotates_between_basis_states() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::Ry(0, Angle::param(0)));
        let out = run_circuit(&circ, &[std::f64::consts::PI], &Statevector::zero_state(1));
        assert!(close(out.probability(1), 1.0));
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        circ.push(Gate::Rz(0, Angle::param(0)));
        circ.push(Gate::H(0));
        // H Rz(θ) H |0> gives P(0) = cos²(θ/2).
        let theta = 0.8f64;
        let out = run_circuit(&circ, &[theta], &Statevector::zero_state(1));
        assert!(close(out.probability(0), (theta / 2.0).cos().powi(2)));
    }

    #[test]
    fn pauli_rotation_matches_dedicated_rotations() {
        // exp(-iθ/2 Z0Z1) acting on |++> must equal the textbook CX-RZ-CX construction.
        let theta = 0.9;
        let zz = PauliString::from_label("ZZ").unwrap();
        let mut a = Circuit::new(2);
        a.push(Gate::H(0));
        a.push(Gate::H(1));
        a.push(Gate::PauliRotation(zz, Angle::param(0)));

        let mut b = Circuit::new(2);
        b.push(Gate::H(0));
        b.push(Gate::H(1));
        b.push(Gate::Cx(0, 1));
        b.push(Gate::Rz(1, Angle::param(0)));
        b.push(Gate::Cx(0, 1));

        let sa = run_circuit(&a, &[theta], &Statevector::zero_state(2));
        let sb = run_circuit(&b, &[theta], &Statevector::zero_state(2));
        assert!(close(sa.overlap(&sb), 1.0));
    }

    #[test]
    fn single_qubit_rotation_gates_match_pauli_rotation_path() {
        for (gate_ctor, label) in [
            (Gate::Rx as fn(usize, Angle) -> Gate, "X"),
            (Gate::Ry as fn(usize, Angle) -> Gate, "Y"),
            (Gate::Rz as fn(usize, Angle) -> Gate, "Z"),
        ] {
            let theta = 1.1;
            let mut a = Circuit::new(1);
            a.push(Gate::H(0));
            a.push(gate_ctor(0, Angle::param(0)));
            let mut b = Circuit::new(1);
            b.push(Gate::H(0));
            b.push(Gate::PauliRotation(
                PauliString::from_label(label).unwrap(),
                Angle::param(0),
            ));
            let sa = run_circuit(&a, &[theta], &Statevector::zero_state(1));
            let sb = run_circuit(&b, &[theta], &Statevector::zero_state(1));
            assert!(close(sa.overlap(&sb), 1.0), "mismatch for R{label}");
        }
    }

    #[test]
    fn cz_phases_the_11_component() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::H(1));
        circ.push(Gate::Cz(0, 1));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(2));
        assert!(close(out.amplitude(0b11).re, -0.5));
        assert!(close(out.amplitude(0b01).re, 0.5));
    }

    #[test]
    fn s_and_sdg_cancel() {
        let mut circ = Circuit::new(1);
        circ.push(Gate::H(0));
        circ.push(Gate::S(0));
        circ.push(Gate::Sdg(0));
        circ.push(Gate::H(0));
        let out = run_circuit(&circ, &[], &Statevector::zero_state(1));
        assert!(close(out.probability(0), 1.0));
    }

    #[test]
    fn unitarity_preserves_norm_for_random_ansatz() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular);
        let circ = ansatz.build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let out = run_circuit(&circ, &params, &Statevector::zero_state(4));
        assert!(close(out.norm(), 1.0));
    }
}
