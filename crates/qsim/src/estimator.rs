//! Finite-shot expectation-value estimation.
//!
//! Given the exact output state of the simulator, these estimators produce the *noisy*
//! expectation value an experimentalist would obtain from a finite number of measurement
//! shots.  Two sampling models are provided:
//!
//! * [`SamplingMethod::Exact`] — no sampling noise (the paper's noiseless statevector
//!   runs, which still *charge* shots for cost accounting).
//! * [`SamplingMethod::Analytic`] — per-term Gaussian sampling noise with the exact
//!   binomial variance `(1 − ⟨P⟩²)/s`.  Statistically equivalent to measuring each term
//!   with `s` shots, at a fraction of the simulation cost.
//! * [`SamplingMethod::Multinomial`] — true bitstring sampling per qubit-wise-commuting
//!   group (slower; used in tests to validate the analytic model).

use crate::shots::ShotLedger;
use qop::{group_qwc, PauliOp, PauliString, Statevector};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How measurement sampling noise is generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMethod {
    /// Exact expectation values (no sampling noise).
    Exact,
    /// Gaussian noise with the exact per-term binomial variance.
    Analytic,
    /// True multinomial bitstring sampling per qubit-wise-commuting group.
    Multinomial,
}

/// Configuration of the shot estimator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Shots allocated to each Pauli term of the measured Hamiltonian.
    pub shots_per_pauli: u64,
    /// Sampling model.
    pub method: SamplingMethod,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            shots_per_pauli: crate::shots::DEFAULT_SHOTS_PER_PAULI,
            method: SamplingMethod::Exact,
        }
    }
}

/// Estimates `⟨ψ|H|ψ⟩` under the configured sampling model, charging the ledger.
///
/// The shot charge is always `shots_per_pauli × num_terms`, independent of the sampling
/// model, because the paper's cost accounting is defined that way (Section 7.3).
pub fn estimate_expectation<R: Rng>(
    op: &PauliOp,
    state: &Statevector,
    config: &EstimatorConfig,
    ledger: &mut ShotLedger,
    rng: &mut R,
) -> f64 {
    ledger.charge_evaluation(config.shots_per_pauli, op.num_terms());
    match config.method {
        SamplingMethod::Exact => op.expectation(state),
        SamplingMethod::Analytic => {
            analytic_sampled_expectation(op, state, config.shots_per_pauli, rng)
        }
        SamplingMethod::Multinomial => {
            multinomial_sampled_expectation(op, state, config.shots_per_pauli, rng)
        }
    }
}

/// Per-term Gaussian model: each Pauli expectation `⟨P⟩` is replaced by the sample mean of
/// `s` ±1 outcomes, approximated by `N(⟨P⟩, (1 − ⟨P⟩²)/s)` and clamped to `[-1, 1]`.
pub fn analytic_sampled_expectation<R: Rng>(
    op: &PauliOp,
    state: &Statevector,
    shots_per_pauli: u64,
    rng: &mut R,
) -> f64 {
    let exact = exact_term_expectations(op, state);
    analytic_sampled_from_expectations(op, &exact, shots_per_pauli, rng)
}

/// The exact per-term expectations the analytic sampler perturbs (identity terms are
/// exactly 1).  Split out so batched backends can compute this — the expensive,
/// state-sized stage — inside a parallel region and draw the noise serially afterwards.
pub fn exact_term_expectations(op: &PauliOp, state: &Statevector) -> Vec<f64> {
    op.terms()
        .iter()
        .map(|term| {
            if term.string.is_identity() {
                1.0
            } else {
                PauliOp::string_expectation(&term.string, state)
            }
        })
        .collect()
}

/// The noise stage of [`analytic_sampled_expectation`], consuming per-term exact values
/// from [`exact_term_expectations`].  Draws from `rng` in term order, so
/// `analytic_sampled_from_expectations(op, &exact_term_expectations(op, state), s, rng)`
/// consumes the RNG stream identically to the one-shot form.
///
/// # Panics
///
/// Panics if `exact.len()` differs from the operator's term count.
pub fn analytic_sampled_from_expectations<R: Rng>(
    op: &PauliOp,
    exact: &[f64],
    shots_per_pauli: u64,
    rng: &mut R,
) -> f64 {
    assert_eq!(
        exact.len(),
        op.num_terms(),
        "one exact expectation per Pauli term required"
    );
    let mut total = 0.0;
    for (term, &exact) in op.terms().iter().zip(exact) {
        let sampled = if term.string.is_identity() || shots_per_pauli == 0 {
            exact
        } else {
            let variance = ((1.0 - exact * exact) / shots_per_pauli as f64).max(0.0);
            let noisy = exact + gaussian(rng) * variance.sqrt();
            noisy.clamp(-1.0, 1.0)
        };
        total += term.coefficient * sampled;
    }
    total
}

/// True sampling: rotate each qubit-wise-commuting group to its measurement basis,
/// sample bitstrings from the exact distribution, and average the ±1 eigenvalues.
pub fn multinomial_sampled_expectation<R: Rng>(
    op: &PauliOp,
    state: &Statevector,
    shots_per_pauli: u64,
    rng: &mut R,
) -> f64 {
    let groups = group_qwc(op);
    let mut total = 0.0;
    // Scratch buffers shared across groups: the rotated state, its probability vector and
    // the outcome histogram are each allocated once per call, not once per group.
    let mut rotated = state.clone();
    let mut rotated_probs: Vec<f64> = Vec::with_capacity(state.dim());
    let mut counts = vec![0u64; state.dim()];
    for group in &groups {
        // Basis-rotated probabilities: we measure each qubit in the Pauli basis demanded by
        // the group's measurement basis. Rotating the state is equivalent to rotating each
        // term; for simplicity we rotate the state once per group.
        rotate_to_measurement_basis_into(state, &group.measurement_basis, &mut rotated);
        rotated.probabilities_into(&mut rotated_probs);
        // Draw shots_per_pauli samples for the whole group.
        let shots = shots_per_pauli.max(1);
        counts.fill(0);
        for _ in 0..shots {
            let outcome = sample_index(&rotated_probs, rng);
            counts[outcome] += 1;
        }
        for &idx in &group.term_indices {
            let term = &op.terms()[idx];
            if term.string.is_identity() {
                total += term.coefficient;
                continue;
            }
            // After rotation, the term is diagonal: its eigenvalue on bitstring b is
            // (-1)^{popcount(b & support)}.
            let support: u64 = term
                .string
                .iter_non_identity()
                .fold(0u64, |acc, (q, _)| acc | (1u64 << q));
            let mut mean = 0.0;
            for (b, &cnt) in counts.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let parity = ((b as u64) & support).count_ones() % 2;
                let eig = if parity == 0 { 1.0 } else { -1.0 };
                mean += eig * cnt as f64;
            }
            mean /= shots as f64;
            total += term.coefficient * mean;
        }
    }
    total
}

/// Rotates `state` into `out` so that measuring in the computational basis realizes
/// measurement of the Paulis in `basis` (X → H, Y → S†·H applied before measurement).
/// Applies the rotation gates directly to the reused `out` buffer — no circuit object and
/// no statevector allocation per group.
fn rotate_to_measurement_basis_into(
    state: &Statevector,
    basis: &PauliString,
    out: &mut Statevector,
) {
    use qcircuit::Gate;
    out.clone_from(state);
    for q in 0..state.num_qubits() {
        match basis.pauli_at(q) {
            qop::Pauli::X => crate::simulator::apply_gate(out, &Gate::H(q), &[]),
            qop::Pauli::Y => {
                crate::simulator::apply_gate(out, &Gate::Sdg(q), &[]);
                crate::simulator::apply_gate(out, &Gate::H(q), &[]);
            }
            _ => {}
        }
    }
}

/// Samples an index from a discrete probability distribution.
fn sample_index<R: Rng>(probs: &[f64], rng: &mut R) -> usize {
    let r: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn exact_method_matches_operator_expectation() {
        let op = PauliOp::from_labels(2, &[("ZZ", 0.7), ("XI", -0.3)]);
        let psi = Statevector::uniform_superposition(2);
        let mut ledger = ShotLedger::new();
        let cfg = EstimatorConfig {
            shots_per_pauli: 4096,
            method: SamplingMethod::Exact,
        };
        let e = estimate_expectation(&op, &psi, &cfg, &mut ledger, &mut rng());
        assert!((e - op.expectation(&psi)).abs() < 1e-12);
        assert_eq!(ledger.total(), 4096 * 2);
    }

    #[test]
    fn analytic_sampling_converges_with_shots() {
        let op = PauliOp::from_labels(2, &[("ZZ", 1.0), ("XX", 0.5)]);
        let psi = Statevector::uniform_superposition(2);
        let exact = op.expectation(&psi);
        let mut r = rng();
        let noisy_small: f64 = (0..64)
            .map(|_| analytic_sampled_expectation(&op, &psi, 16, &mut r))
            .map(|e| (e - exact).abs())
            .sum::<f64>()
            / 64.0;
        let noisy_large: f64 = (0..64)
            .map(|_| analytic_sampled_expectation(&op, &psi, 16384, &mut r))
            .map(|e| (e - exact).abs())
            .sum::<f64>()
            / 64.0;
        assert!(
            noisy_large < noisy_small,
            "error should shrink with more shots: {noisy_large} vs {noisy_small}"
        );
    }

    #[test]
    fn multinomial_sampling_is_unbiased_on_z_terms() {
        let op = PauliOp::from_labels(1, &[("Z", 1.0)]);
        // A state with <Z> = cos(0.8).
        let mut circ = qcircuit::Circuit::new(1);
        circ.push(qcircuit::Gate::Ry(0, qcircuit::Angle::Fixed(0.8)));
        let psi = crate::simulator::run_circuit(&circ, &[], &Statevector::zero_state(1));
        let exact = op.expectation(&psi);
        let mut r = rng();
        let mean: f64 = (0..32)
            .map(|_| multinomial_sampled_expectation(&op, &psi, 2048, &mut r))
            .sum::<f64>()
            / 32.0;
        assert!((mean - exact).abs() < 0.02, "{mean} vs {exact}");
    }

    #[test]
    fn multinomial_handles_x_and_y_bases() {
        let op = PauliOp::from_labels(1, &[("X", 1.0), ("Y", 0.5)]);
        let psi = Statevector::uniform_superposition(1); // <X> = 1, <Y> = 0
        let mut r = rng();
        let mean: f64 = (0..32)
            .map(|_| multinomial_sampled_expectation(&op, &psi, 2048, &mut r))
            .sum::<f64>()
            / 32.0;
        assert!((mean - 1.0).abs() < 0.03, "{mean}");
    }

    #[test]
    fn identity_terms_are_noise_free() {
        let op = PauliOp::from_labels(2, &[("II", -3.0)]);
        let psi = Statevector::uniform_superposition(2);
        let mut r = rng();
        let e = analytic_sampled_expectation(&op, &psi, 8, &mut r);
        assert!((e + 3.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_and_multinomial_agree_statistically() {
        let op = PauliOp::from_labels(2, &[("ZZ", 0.6), ("XI", 0.4), ("IY", -0.2)]);
        let mut circ = qcircuit::Circuit::new(2);
        circ.push(qcircuit::Gate::Ry(0, qcircuit::Angle::Fixed(0.7)));
        circ.push(qcircuit::Gate::Cx(0, 1));
        let psi = crate::simulator::run_circuit(&circ, &[], &Statevector::zero_state(2));
        let mut r = rng();
        let trials = 48;
        let a: f64 = (0..trials)
            .map(|_| analytic_sampled_expectation(&op, &psi, 1024, &mut r))
            .sum::<f64>()
            / trials as f64;
        let m: f64 = (0..trials)
            .map(|_| multinomial_sampled_expectation(&op, &psi, 1024, &mut r))
            .sum::<f64>()
            / trials as f64;
        assert!((a - m).abs() < 0.05, "analytic {a} vs multinomial {m}");
    }
}
