//! Shot accounting.
//!
//! The paper's headline metric is the total number of execution shots.  Its cost model
//! (Section 7.3) charges `4096` shots per Pauli term per evaluation, so one evaluation of
//! a Hamiltonian with `M` terms costs `4096·M` shots and a full run costs
//! `iterations × evals_per_iteration × 4096 × M`.  [`ShotLedger`] accumulates exactly that
//! quantity; every backend charges it on each expectation-value evaluation.

use serde::{Deserialize, Serialize};

/// Default shots per Pauli term per evaluation, matching the paper (Section 7.3).
pub const DEFAULT_SHOTS_PER_PAULI: u64 = 4096;

/// Accumulates the execution shots charged by a VQA run.
///
/// # Examples
///
/// ```
/// use qsim::ShotLedger;
///
/// let mut ledger = ShotLedger::new();
/// ledger.charge_evaluation(4096, 15); // one evaluation of a 15-term Hamiltonian
/// assert_eq!(ledger.total(), 4096 * 15);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShotLedger {
    total: u64,
    evaluations: u64,
}

impl ShotLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ShotLedger::default()
    }

    /// Charges one expectation-value evaluation of a Hamiltonian with `num_terms` Pauli
    /// terms at `shots_per_pauli` shots per term.
    pub fn charge_evaluation(&mut self, shots_per_pauli: u64, num_terms: usize) {
        self.total += shots_per_pauli * num_terms as u64;
        self.evaluations += 1;
    }

    /// Charges an explicit number of shots (used by the noise-trajectory estimator).
    pub fn charge_raw(&mut self, shots: u64) {
        self.total += shots;
    }

    /// Total shots charged so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of expectation evaluations charged so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &ShotLedger) {
        self.total += other.total;
        self.evaluations += other.evaluations;
    }

    /// Resets the ledger to zero.
    pub fn reset(&mut self) {
        self.total = 0;
        self.evaluations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = ShotLedger::new();
        l.charge_evaluation(4096, 10);
        l.charge_evaluation(4096, 10);
        assert_eq!(l.total(), 2 * 4096 * 10);
        assert_eq!(l.evaluations(), 2);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = ShotLedger::new();
        a.charge_evaluation(100, 3);
        let mut b = ShotLedger::new();
        b.charge_evaluation(100, 7);
        b.charge_raw(5);
        a.merge(&b);
        assert_eq!(a.total(), 300 + 700 + 5);
        assert_eq!(a.evaluations(), 2);
        a.reset();
        assert_eq!(a.total(), 0);
        assert_eq!(a.evaluations(), 0);
    }

    #[test]
    fn default_constant_matches_paper() {
        assert_eq!(DEFAULT_SHOTS_PER_PAULI, 4096);
    }
}
