//! # qsim — quantum-execution simulators for the TreeVQA reproduction
//!
//! Three execution paths, mirroring the paper's simulation framework (Section 7.4):
//!
//! * [`run_circuit`] — exact dense statevector simulation (Qiskit Aer's
//!   `StatevectorSimulator` role).
//! * [`estimate_expectation`] — finite-shot estimation layered on the exact state, with
//!   a [`ShotLedger`] that implements the paper's shot-cost accounting.
//! * [`PauliPropagator`] — Heisenberg-picture Pauli propagation with weight truncation
//!   for large systems (the `PauliPropagation` role).
//!
//! Analytic hardware-noise models ([`NoiseModel`]) stand in for density-matrix noise
//! simulation; see DESIGN.md for the substitution rationale.
//!
//! ## The compile/execute split
//!
//! Since PR 2, circuit execution is two-phase: [`CompiledCircuit::compile`] lowers a
//! [`qcircuit::Circuit`] once — fusing runs of single-qubit gates into single 2×2
//! unitaries (parameterized rotations included) and batching runs of diagonal gates
//! (CZ, Z-string Pauli rotations — e.g. an entire QAOA cost layer) into one phase pass —
//! and records *parameter slots* instead of resolved angles.  Executing the compiled form
//! with a new parameter vector ([`CompiledCircuit::execute_in_place`] /
//! [`CompiledCircuit::execute_into`]) re-binds those slots in O(ops) without re-walking
//! the gate list, which is what lets one compiled circuit be amortized over a whole batch
//! of parameter vectors (see the `vqa` crate's batched backends).  [`run_circuit`] /
//! [`run_circuit_in_place`] are thin wrappers that compile on the fly; the pre-fusion
//! per-gate interpreter survives as [`interpret_circuit_in_place`] for benches and
//! equivalence tests.
//!
//! ## Performance and the parallelism threshold knob
//!
//! The dense gate kernels are branch-free, allocation-free and data-parallel (see the
//! design notes on [`run_circuit`]'s module).  Parallelism is gated on register size:
//! statevectors with at least [`parallel_threshold`] amplitudes (default `2^14`, i.e.
//! 14 qubits) are processed by multiple threads via `rayon`-style chunked iteration, while
//! smaller registers stay serial because thread fan-out would cost more than the kernel.
//! Tune or disable this with the `QSIM_PAR_THRESHOLD` environment variable (an amplitude
//! count; `0` forces serial execution, useful for profiling and determinism studies), and
//! cap the worker count with `RAYON_NUM_THREADS`.  The same threshold steers the `vqa`
//! batch runner: registers *below* it are data-parallelized **across** the scratch-pool
//! states of a batch instead of within one state.  Optimizer inner loops should compile
//! once and drive [`CompiledCircuit::execute_into`] with a reused scratch state (the
//! `run_circuit*` wrappers compile on *every* call and allocate, so they are for
//! one-shot use); the original unoptimized kernels are kept in [`mod@reference`] as the
//! correctness and speedup baseline.
//!
//! ## Execution profiling
//!
//! With process-wide observability on (`QOBS=1`, see [`qobs::enabled`]), every
//! [`CompiledCircuit::compile`] registers the circuit's op-kind *pattern signature* in
//! the process-wide [`profile`] table and every execution bumps the pattern's shared
//! counter — one relaxed atomic add per execution, zero cost when off.
//! [`profile::snapshot`] reports patterns hottest-first with per-op-kind execution
//! counts, the data feed for profile-guided superop compilation (see ROADMAP).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod compiled;
mod estimator;
mod noise;
mod pauliprop;
pub mod profile;
mod shots;
mod simulator;

pub use compiled::{BatchTables, CompileStats, CompiledCircuit, NoiseSite, PauliInsertion};
pub use estimator::{
    analytic_sampled_expectation, analytic_sampled_from_expectations, estimate_expectation,
    exact_term_expectations, multinomial_sampled_expectation, EstimatorConfig, SamplingMethod,
};
pub use noise::{attenuation_factor, noisy_expectation, CircuitNoiseProfile, NoiseModel};
pub use pauliprop::{PauliPropagator, PauliPropagatorConfig};
pub use shots::{ShotLedger, DEFAULT_SHOTS_PER_PAULI};
pub use simulator::{
    apply_cx, apply_cz, apply_gate, apply_pauli_rotation, apply_pauli_string, apply_single_qubit,
    interpret_circuit_in_place, parallel_threshold, reference, run_circuit, run_circuit_in_place,
    run_circuit_into, rx_matrix, ry_matrix, rz_matrix, Matrix2,
};
