//! # qsim — quantum-execution simulators for the TreeVQA reproduction
//!
//! Three execution paths, mirroring the paper's simulation framework (Section 7.4):
//!
//! * [`run_circuit`] — exact dense statevector simulation (Qiskit Aer's
//!   `StatevectorSimulator` role).
//! * [`estimate_expectation`] — finite-shot estimation layered on the exact state, with
//!   a [`ShotLedger`] that implements the paper's shot-cost accounting.
//! * [`PauliPropagator`] — Heisenberg-picture Pauli propagation with weight truncation
//!   for large systems (the `PauliPropagation` role).
//!
//! Analytic hardware-noise models ([`NoiseModel`]) stand in for density-matrix noise
//! simulation; see DESIGN.md for the substitution rationale.
//!
//! ## Performance and the parallelism threshold knob
//!
//! The dense gate kernels are branch-free, allocation-free and data-parallel (see the
//! design notes on [`run_circuit`]'s module).  Parallelism is gated on register size:
//! statevectors with at least [`parallel_threshold`] amplitudes (default `2^14`, i.e.
//! 14 qubits) are processed by multiple threads via `rayon`-style chunked iteration, while
//! smaller registers stay serial because thread fan-out would cost more than the kernel.
//! Tune or disable this with the `QSIM_PAR_THRESHOLD` environment variable (an amplitude
//! count; `0` forces serial execution, useful for profiling and determinism studies), and
//! cap the worker count with `RAYON_NUM_THREADS`.  Optimizer inner loops should prefer
//! [`run_circuit_into`]/[`run_circuit_in_place`] over [`run_circuit`] to avoid per-call
//! state allocation; the original unoptimized kernels are kept in [`reference`] as the
//! correctness and speedup baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod estimator;
mod noise;
mod pauliprop;
mod shots;
mod simulator;

pub use estimator::{
    analytic_sampled_expectation, estimate_expectation, multinomial_sampled_expectation,
    EstimatorConfig, SamplingMethod,
};
pub use noise::{attenuation_factor, noisy_expectation, CircuitNoiseProfile, NoiseModel};
pub use pauliprop::{PauliPropagator, PauliPropagatorConfig};
pub use shots::{ShotLedger, DEFAULT_SHOTS_PER_PAULI};
pub use simulator::{
    apply_cx, apply_cz, apply_gate, apply_pauli_rotation, apply_single_qubit, parallel_threshold,
    reference, run_circuit, run_circuit_in_place, run_circuit_into, rx_matrix, ry_matrix,
    rz_matrix, Matrix2,
};
