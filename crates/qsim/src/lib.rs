//! # qsim — quantum-execution simulators for the TreeVQA reproduction
//!
//! Three execution paths, mirroring the paper's simulation framework (Section 7.4):
//!
//! * [`run_circuit`] — exact dense statevector simulation (Qiskit Aer's
//!   `StatevectorSimulator` role).
//! * [`estimate_expectation`] — finite-shot estimation layered on the exact state, with
//!   a [`ShotLedger`] that implements the paper's shot-cost accounting.
//! * [`PauliPropagator`] — Heisenberg-picture Pauli propagation with weight truncation
//!   for large systems (the `PauliPropagation` role).
//!
//! Analytic hardware-noise models ([`NoiseModel`]) stand in for density-matrix noise
//! simulation; see DESIGN.md for the substitution rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod estimator;
mod noise;
mod pauliprop;
mod shots;
mod simulator;

pub use estimator::{
    analytic_sampled_expectation, estimate_expectation, multinomial_sampled_expectation,
    EstimatorConfig, SamplingMethod,
};
pub use noise::{attenuation_factor, noisy_expectation, CircuitNoiseProfile, NoiseModel};
pub use pauliprop::{PauliPropagator, PauliPropagatorConfig};
pub use shots::{ShotLedger, DEFAULT_SHOTS_PER_PAULI};
pub use simulator::{apply_gate, run_circuit};
