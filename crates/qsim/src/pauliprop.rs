//! Heisenberg-picture Pauli propagation with weight truncation.
//!
//! This is the reproduction of the `PauliPropagation` method the paper uses for its
//! large-scale benchmarks (Section 7.4 and 8.4): instead of evolving the `2^n`-amplitude
//! state, the *observable* is propagated backwards through the circuit as a sum of Pauli
//! strings.  Clifford gates permute Pauli strings (with a sign); each rotation gate splits
//! every anticommuting string into a `cos`/`sin` pair.  Truncating strings whose weight
//! exceeds a cap (the paper truncates above weight 8) or whose coefficient is negligible
//! keeps the term count bounded, enabling 25–50-qubit simulations with controlled error.

use qcircuit::{Circuit, Gate};
use qop::{Complex64, PauliOp, PauliString, PauliTerm};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Configuration of the Pauli-propagation simulator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PauliPropagatorConfig {
    /// Strings with Pauli weight above this cap are discarded (paper default: 8).
    pub max_weight: u32,
    /// Strings whose absolute coefficient drops below this threshold are discarded.
    pub coefficient_threshold: f64,
    /// Hard cap on the number of retained strings (keeps memory bounded); the smallest
    /// coefficients are dropped first when the cap is exceeded.
    pub max_terms: usize,
}

impl Default for PauliPropagatorConfig {
    fn default() -> Self {
        PauliPropagatorConfig {
            max_weight: 8,
            coefficient_threshold: 1e-10,
            max_terms: 200_000,
        }
    }
}

/// Heisenberg-picture simulator: computes `⟨b|U†(θ) H U(θ)|b⟩` without a statevector.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PauliPropagator {
    config: PauliPropagatorConfig,
}

impl PauliPropagator {
    /// Creates a propagator with the given configuration.
    pub fn new(config: PauliPropagatorConfig) -> Self {
        PauliPropagator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PauliPropagatorConfig {
        &self.config
    }

    /// Computes the expectation value of `observable` after running `circuit` (with bound
    /// `params`) on the computational basis state `|initial_basis⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit and observable register sizes differ.
    pub fn expectation(
        &self,
        circuit: &Circuit,
        params: &[f64],
        observable: &PauliOp,
        initial_basis: u64,
    ) -> f64 {
        assert_eq!(
            circuit.num_qubits(),
            observable.num_qubits(),
            "circuit/observable register mismatch"
        );
        let propagated = self.propagate(circuit, params, observable);
        // Evaluate on the product state |initial_basis⟩: only X/Y-free strings survive.
        propagated
            .iter()
            .filter(|(string, _)| string.x_mask() == 0)
            .map(|(string, coeff)| {
                let parity = (initial_basis & string.z_mask()).count_ones() % 2;
                if parity == 0 {
                    *coeff
                } else {
                    -coeff
                }
            })
            .sum()
    }

    /// Propagates the observable backwards through the circuit and returns the resulting
    /// Pauli sum (before projection onto an initial state).
    pub fn propagate(
        &self,
        circuit: &Circuit,
        params: &[f64],
        observable: &PauliOp,
    ) -> Vec<(PauliString, f64)> {
        let n = circuit.num_qubits();
        let mut terms: HashMap<(u64, u64), f64> = HashMap::new();
        for t in observable.terms() {
            *terms
                .entry((t.string.x_mask(), t.string.z_mask()))
                .or_insert(0.0) += t.coefficient;
        }

        // Heisenberg evolution processes gates in reverse order: H ← G† H G for the last
        // gate first.
        for gate in circuit.gates().iter().rev() {
            terms = self.apply_gate_heisenberg(terms, gate, params, n);
        }

        terms
            .into_iter()
            .filter(|(_, c)| c.abs() > self.config.coefficient_threshold)
            .map(|((x, z), c)| (PauliString::from_masks(x, z, n), c))
            .collect()
    }

    /// Returns the propagated observable repackaged as a [`PauliOp`] (convenience for
    /// diagnostics and tests).
    pub fn propagated_operator(
        &self,
        circuit: &Circuit,
        params: &[f64],
        observable: &PauliOp,
    ) -> PauliOp {
        let n = circuit.num_qubits();
        let terms = self
            .propagate(circuit, params, observable)
            .into_iter()
            .map(|(s, c)| PauliTerm::new(s, c))
            .collect();
        PauliOp::from_terms(n, terms)
    }

    fn apply_gate_heisenberg(
        &self,
        terms: HashMap<(u64, u64), f64>,
        gate: &Gate,
        params: &[f64],
        n: usize,
    ) -> HashMap<(u64, u64), f64> {
        let mut out: HashMap<(u64, u64), f64> = HashMap::with_capacity(terms.len() * 2);
        let mut insert = |x: u64, z: u64, c: f64| {
            if c != 0.0 {
                *out.entry((x, z)).or_insert(0.0) += c;
            }
        };

        match gate {
            Gate::H(q) | Gate::X(q) | Gate::Y(q) | Gate::Z(q) | Gate::S(q) | Gate::Sdg(q) => {
                for ((x, z), c) in terms {
                    let p = PauliString::from_masks(x, z, n);
                    let (p2, sign) = conjugate_single_clifford(gate, *q, &p);
                    insert(p2.x_mask(), p2.z_mask(), c * sign);
                }
            }
            Gate::Cx(a, b) | Gate::Cz(a, b) => {
                for ((x, z), c) in terms {
                    let p = PauliString::from_masks(x, z, n);
                    let (p2, sign) = conjugate_two_qubit_clifford(gate, *a, *b, &p);
                    insert(p2.x_mask(), p2.z_mask(), c * sign);
                }
            }
            Gate::Rx(q, angle) => {
                let axis = PauliString::single(n, *q, qop::Pauli::X);
                return self.apply_rotation(terms, &axis, angle.resolve(params), n);
            }
            Gate::Ry(q, angle) => {
                let axis = PauliString::single(n, *q, qop::Pauli::Y);
                return self.apply_rotation(terms, &axis, angle.resolve(params), n);
            }
            Gate::Rz(q, angle) => {
                let axis = PauliString::single(n, *q, qop::Pauli::Z);
                return self.apply_rotation(terms, &axis, angle.resolve(params), n);
            }
            Gate::PauliRotation(axis, angle) => {
                return self.apply_rotation(terms, axis, angle.resolve(params), n);
            }
        }
        self.truncate(out)
    }

    /// Applies the Heisenberg image of `exp(-iθ/2 Q)`:
    /// `P → P` if `[P, Q] = 0`, else `P → cos(θ)·P + sin(θ)·(-i·P·Q)`.
    fn apply_rotation(
        &self,
        terms: HashMap<(u64, u64), f64>,
        axis: &PauliString,
        theta: f64,
        n: usize,
    ) -> HashMap<(u64, u64), f64> {
        let (sin, cos) = theta.sin_cos();
        let mut out: HashMap<(u64, u64), f64> = HashMap::with_capacity(terms.len() * 2);
        for ((x, z), c) in terms {
            let p = PauliString::from_masks(x, z, n);
            if p.commutes_with(axis) {
                *out.entry((x, z)).or_insert(0.0) += c;
            } else {
                *out.entry((x, z)).or_insert(0.0) += c * cos;
                // -i · P · Q is Hermitian with a real ±1 sign when P and Q anticommute.
                let (prod, phase) = p.mul(axis);
                let coeff = Complex64::new(0.0, -1.0) * phase;
                debug_assert!(coeff.im.abs() < 1e-12);
                *out.entry((prod.x_mask(), prod.z_mask())).or_insert(0.0) += c * sin * coeff.re;
            }
        }
        self.truncate(out)
    }

    fn truncate(&self, mut terms: HashMap<(u64, u64), f64>) -> HashMap<(u64, u64), f64> {
        terms.retain(|(x, z), c| {
            c.abs() > self.config.coefficient_threshold
                && (x | z).count_ones() <= self.config.max_weight
        });
        if terms.len() > self.config.max_terms {
            let mut entries: Vec<((u64, u64), f64)> = terms.into_iter().collect();
            entries.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
            entries.truncate(self.config.max_terms);
            terms = entries.into_iter().collect();
        }
        terms
    }
}

/// Conjugates a Pauli string by a single-qubit Clifford gate on qubit `q`:
/// returns `(G† P G, sign)`.
fn conjugate_single_clifford(gate: &Gate, q: usize, p: &PauliString) -> (PauliString, f64) {
    use qop::Pauli::*;
    let local = p.pauli_at(q);
    if local == I {
        return (*p, 1.0);
    }
    let (new_local, sign) = match gate {
        Gate::H(_) => match local {
            X => (Z, 1.0),
            Z => (X, 1.0),
            Y => (Y, -1.0),
            I => unreachable!(),
        },
        Gate::X(_) => match local {
            X => (X, 1.0),
            Y => (Y, -1.0),
            Z => (Z, -1.0),
            I => unreachable!(),
        },
        Gate::Y(_) => match local {
            X => (X, -1.0),
            Y => (Y, 1.0),
            Z => (Z, -1.0),
            I => unreachable!(),
        },
        Gate::Z(_) => match local {
            X => (X, -1.0),
            Y => (Y, -1.0),
            Z => (Z, 1.0),
            I => unreachable!(),
        },
        // S† X S = -Y, S† Y S = X, S† Z S = Z.
        Gate::S(_) => match local {
            X => (Y, -1.0),
            Y => (X, 1.0),
            Z => (Z, 1.0),
            I => unreachable!(),
        },
        Gate::Sdg(_) => match local {
            X => (Y, 1.0),
            Y => (X, -1.0),
            Z => (Z, 1.0),
            I => unreachable!(),
        },
        _ => unreachable!("not a single-qubit Clifford gate"),
    };
    let mut out = *p;
    out.set_pauli(q, new_local);
    (out, sign)
}

/// Lookup table for two-qubit Clifford conjugation, computed once by brute force from the
/// dense 4×4 matrices (avoiding hand-derived sign rules).
fn two_qubit_table(kind: TwoQubitKind) -> &'static [(usize, f64); 16] {
    static CX_TABLE: OnceLock<[(usize, f64); 16]> = OnceLock::new();
    static CZ_TABLE: OnceLock<[(usize, f64); 16]> = OnceLock::new();
    let cell = match kind {
        TwoQubitKind::Cx => &CX_TABLE,
        TwoQubitKind::Cz => &CZ_TABLE,
    };
    cell.get_or_init(|| build_two_qubit_table(kind))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TwoQubitKind {
    Cx,
    Cz,
}

/// Index encoding for the table: `idx = pauli_on_control * 4 + pauli_on_target` with
/// `I=0, X=1, Y=2, Z=3`.
fn pauli_code(p: qop::Pauli) -> usize {
    match p {
        qop::Pauli::I => 0,
        qop::Pauli::X => 1,
        qop::Pauli::Y => 2,
        qop::Pauli::Z => 3,
    }
}

fn pauli_from_code(c: usize) -> qop::Pauli {
    match c {
        0 => qop::Pauli::I,
        1 => qop::Pauli::X,
        2 => qop::Pauli::Y,
        _ => qop::Pauli::Z,
    }
}

#[allow(clippy::needless_range_loop)]
fn build_two_qubit_table(kind: TwoQubitKind) -> [(usize, f64); 16] {
    // Dense 4×4 matrices over basis |t c⟩ ordering where bit 0 = control, bit 1 = target
    // (consistent with PauliString::apply_to_basis on a 2-qubit register with control=0,
    // target=1).
    let gate = |row: usize, col: usize| -> Complex64 {
        let control = col & 1;
        let target = (col >> 1) & 1;
        let (new_control, new_target) = match kind {
            TwoQubitKind::Cx => (control, target ^ control),
            TwoQubitKind::Cz => (control, target),
        };
        let expected_row = new_control | (new_target << 1);
        if row != expected_row {
            return Complex64::ZERO;
        }
        match kind {
            TwoQubitKind::Cx => Complex64::ONE,
            TwoQubitKind::Cz => {
                if control == 1 && target == 1 {
                    -Complex64::ONE
                } else {
                    Complex64::ONE
                }
            }
        }
    };

    let pauli_matrix = |code: usize| -> [[Complex64; 4]; 4] {
        let s = PauliString::from_paulis(&[pauli_from_code(code & 3), pauli_from_code(code >> 2)]);
        let mut m = [[Complex64::ZERO; 4]; 4];
        for col in 0..4u64 {
            let (row, phase) = s.apply_to_basis(col);
            m[row as usize][col as usize] = phase;
        }
        m
    };

    let mut table = [(0usize, 0.0f64); 16];
    for code in 0..16 {
        // Compute G† P G (G is real and self-inverse for CX/CZ, so G† = G).
        let p = pauli_matrix(code);
        let mut gp = [[Complex64::ZERO; 4]; 4];
        for r in 0..4 {
            for c2 in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += gate(r, k).conj() * p[k][c2];
                }
                gp[r][c2] = acc;
            }
        }
        let mut gpg = [[Complex64::ZERO; 4]; 4];
        for r in 0..4 {
            for c2 in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += gp[r][k] * gate(k, c2);
                }
                gpg[r][c2] = acc;
            }
        }
        // Match against ± every candidate Pauli pair.
        let mut found = None;
        'outer: for cand in 0..16 {
            let q = pauli_matrix(cand);
            for &sign in &[1.0f64, -1.0] {
                let mut equal = true;
                for r in 0..4 {
                    for c2 in 0..4 {
                        let diff = gpg[r][c2] - q[r][c2].scale(sign);
                        if diff.norm() > 1e-9 {
                            equal = false;
                            break;
                        }
                    }
                    if !equal {
                        break;
                    }
                }
                if equal {
                    found = Some((cand, sign));
                    break 'outer;
                }
            }
        }
        table[code] =
            found.expect("Clifford conjugation must map Pauli pairs to signed Pauli pairs");
    }
    table
}

/// Conjugates a Pauli string by CX or CZ acting on qubits `(a, b)` = (control, target).
fn conjugate_two_qubit_clifford(
    gate: &Gate,
    a: usize,
    b: usize,
    p: &PauliString,
) -> (PauliString, f64) {
    let kind = match gate {
        Gate::Cx(..) => TwoQubitKind::Cx,
        Gate::Cz(..) => TwoQubitKind::Cz,
        _ => unreachable!("not a two-qubit Clifford gate"),
    };
    let pc = p.pauli_at(a);
    let pt = p.pauli_at(b);
    if pc == qop::Pauli::I && pt == qop::Pauli::I {
        return (*p, 1.0);
    }
    let code = pauli_code(pt) * 4 + pauli_code(pc);
    let (new_code, sign) = two_qubit_table(kind)[code];
    let mut out = *p;
    out.set_pauli(a, pauli_from_code(new_code & 3));
    out.set_pauli(b, pauli_from_code(new_code >> 2));
    (out, sign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::run_circuit;
    use qcircuit::{Angle, Entanglement, HardwareEfficientAnsatz};
    use qop::Statevector;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    /// Reference value computed with the dense statevector simulator.
    fn statevector_expectation(circuit: &Circuit, params: &[f64], op: &PauliOp, basis: u64) -> f64 {
        let init = Statevector::basis_state(circuit.num_qubits(), basis);
        let out = run_circuit(circuit, params, &init);
        op.expectation(&out)
    }

    #[test]
    fn clifford_only_circuit_matches_statevector() {
        let mut circ = Circuit::new(3);
        circ.push(Gate::H(0));
        circ.push(Gate::Cx(0, 1));
        circ.push(Gate::S(1));
        circ.push(Gate::Cz(1, 2));
        circ.push(Gate::X(2));
        circ.push(Gate::Sdg(0));
        let op = PauliOp::from_labels(
            3,
            &[("ZZI", 0.7), ("XIX", -0.4), ("IYZ", 0.3), ("III", 1.0)],
        );
        let prop = PauliPropagator::new(PauliPropagatorConfig {
            max_weight: 3,
            ..Default::default()
        });
        for basis in [0u64, 0b101, 0b011] {
            let a = prop.expectation(&circ, &[], &op, basis);
            let b = statevector_expectation(&circ, &[], &op, basis);
            assert!(close(a, b, 1e-9), "basis {basis}: {a} vs {b}");
        }
    }

    #[test]
    fn rotation_circuit_matches_statevector_without_truncation() {
        let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular);
        let circ = ansatz.build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| 0.3 * ((i * 7 % 11) as f64) - 1.0)
            .collect();
        let op = PauliOp::from_labels(
            4,
            &[
                ("ZZII", -1.0),
                ("IZZI", -1.0),
                ("IIZZ", -1.0),
                ("XIII", -0.4),
                ("IIIX", -0.4),
            ],
        );
        // No truncation: max weight = register size, tiny threshold.
        let prop = PauliPropagator::new(PauliPropagatorConfig {
            max_weight: 4,
            coefficient_threshold: 1e-14,
            max_terms: 1_000_000,
        });
        let a = prop.expectation(&circ, &params, &op, 0);
        let b = statevector_expectation(&circ, &params, &op, 0);
        assert!(close(a, b, 1e-8), "{a} vs {b}");
    }

    #[test]
    fn pauli_rotation_gates_match_statevector() {
        let mut circ = Circuit::new(3);
        circ.push(Gate::H(0));
        circ.push(Gate::H(1));
        circ.push(Gate::H(2));
        let zz = PauliString::from_label("ZZI").unwrap();
        let yy = PauliString::from_label("IYY").unwrap();
        circ.push(Gate::PauliRotation(zz, Angle::param(0)));
        circ.push(Gate::PauliRotation(yy, Angle::param(1)));
        circ.push(Gate::Rx(1, Angle::param(2)));
        let op = PauliOp::from_labels(3, &[("ZZZ", 0.5), ("XXI", 0.25), ("IIZ", -0.7)]);
        let prop = PauliPropagator::new(PauliPropagatorConfig {
            max_weight: 3,
            coefficient_threshold: 1e-14,
            max_terms: 1_000_000,
        });
        let params = [0.9, -0.4, 1.3];
        let a = prop.expectation(&circ, &params, &op, 0);
        let b = statevector_expectation(&circ, &params, &op, 0);
        assert!(close(a, b, 1e-9), "{a} vs {b}");
    }

    #[test]
    fn truncation_bounds_term_growth() {
        let ansatz = HardwareEfficientAnsatz::new(10, 3, Entanglement::Circular);
        let circ = ansatz.build();
        let params: Vec<f64> = (0..circ.num_parameters()).map(|i| 0.1 * i as f64).collect();
        let mut op = PauliOp::zero(10);
        for q in 0..9 {
            let mut label = ['I'; 10];
            label[q] = 'Z';
            label[q + 1] = 'Z';
            op.add_term(
                PauliString::from_label(&label.iter().collect::<String>()).unwrap(),
                -1.0,
            );
        }
        let prop = PauliPropagator::new(PauliPropagatorConfig {
            max_weight: 4,
            coefficient_threshold: 1e-8,
            max_terms: 5_000,
        });
        let terms = prop.propagate(&circ, &params, &op);
        assert!(terms.len() <= 5_000);
        assert!(terms.iter().all(|(s, _)| s.weight() <= 4));
    }

    #[test]
    fn identity_observable_is_exact() {
        let ansatz = HardwareEfficientAnsatz::new(5, 2, Entanglement::Circular);
        let circ = ansatz.build();
        let params = vec![0.4; circ.num_parameters()];
        let op = PauliOp::identity(5, -2.5);
        let prop = PauliPropagator::new(PauliPropagatorConfig::default());
        assert!(close(prop.expectation(&circ, &params, &op, 0), -2.5, 1e-12));
    }

    #[test]
    fn larger_truncated_simulation_runs_and_is_finite() {
        // 20 qubits is far beyond the dense simulator's comfortable range in tests but is
        // cheap for truncated propagation.
        let ansatz = HardwareEfficientAnsatz::new(20, 1, Entanglement::Linear);
        let circ = ansatz.build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| 0.05 * i as f64)
            .collect();
        let mut op = PauliOp::zero(20);
        for q in 0..19 {
            let mut label = ['I'; 20];
            label[q] = 'Z';
            label[q + 1] = 'Z';
            op.add_term(
                PauliString::from_label(&label.iter().collect::<String>()).unwrap(),
                -1.0,
            );
        }
        let prop = PauliPropagator::new(PauliPropagatorConfig {
            max_weight: 6,
            coefficient_threshold: 1e-6,
            max_terms: 50_000,
        });
        let e = prop.expectation(&circ, &params, &op, 0);
        assert!(e.is_finite());
        assert!(
            e < 0.0,
            "ferromagnetic chain near |0...0> should have negative energy"
        );
    }
}
