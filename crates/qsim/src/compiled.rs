//! Compiled circuits: a one-time lowering pass that turns a [`Circuit`] into a short
//! list of fused operations, so optimizer inner loops never re-walk (or re-decode) the
//! gate list when only the parameter vector changes.
//!
//! # Why compile?
//!
//! The per-gate interpreter ([`crate::apply_gate`] in a loop) pays one full pass over the
//! `2^n`-amplitude state per gate.  Most ansätze are dominated by two patterns that waste
//! those passes:
//!
//! * **Runs of single-qubit gates on the same qubit** (`Ry·Rz` layers, basis-change
//!   sandwiches like `H·Rz·H`).  Any such run is itself a single 2×2 unitary, so the
//!   compiler fuses each maximal run into one [`apply_single_qubit`] pass — including
//!   runs that *contain parameterized rotations*, whose 2×2 product is re-formed from the
//!   bound parameters in O(1) at execution time.
//! * **Runs of diagonal gates** (`CZ`, Z-string Pauli rotations — a whole QAOA cost layer
//!   is nothing else).  Every diagonal gate multiplies amplitude `b` by
//!   `exp(i·φ·(−1)^popcount(b & mask))` for some `(mask, φ)` pairs, so a run of `k`
//!   diagonal gates collapses into **one** pass that applies all the phase terms at once
//!   instead of `k` passes over the state.
//!
//! Fusion looks *backwards* through the compiled op list and is allowed to commute a gate
//! past earlier ops that touch disjoint qubits (and, for diagonal gates, past other
//! diagonal ops), so interleaved per-qubit layers still fuse.
//!
//! # Parameter slots
//!
//! Compilation never resolves [`Angle::Param`] references: each fused op records which
//! parameter slots it reads, and [`CompiledCircuit::execute_in_place`] resolves them
//! against the caller's parameter vector on every call.  Re-binding `θ` therefore costs a
//! handful of `sin_cos` calls and 2×2 multiplies — never a re-walk of the original gate
//! list — which is what makes one compiled circuit cheap to amortize over a whole batch
//! of parameter vectors (see `vqa`'s batched backends).

use crate::simulator::{
    apply_cx, apply_cz, apply_pauli_rotation, apply_pauli_string, apply_single_qubit, rx_matrix,
    ry_matrix, rz_matrix, Matrix2,
};
use qcircuit::{Angle, Circuit, Gate};
use qop::par::{use_parallel, SendPtr, MIN_PAR_INDICES};
use qop::{Complex64, PauliString, Statevector};
use rayon::prelude::*;

const IDENTITY_2: Matrix2 = [
    [Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)],
    [Complex64::new(0.0, 0.0), Complex64::new(1.0, 0.0)],
];

/// `a · b` for 2×2 complex matrices (so `b` is applied first).
fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

/// Rotation axis of a parameterized single-qubit rotation inside a fused chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RotAxis {
    X,
    Y,
    Z,
}

impl RotAxis {
    fn matrix(self, theta: f64) -> Matrix2 {
        match self {
            RotAxis::X => rx_matrix(theta),
            RotAxis::Y => ry_matrix(theta),
            RotAxis::Z => rz_matrix(theta),
        }
    }
}

/// One element of a fused single-qubit chain, in application order.
#[derive(Clone, Debug)]
enum ChainElem {
    /// A product of constant gates, pre-multiplied at compile time.
    Const(Matrix2),
    /// A parameterized rotation whose matrix is formed at bind time.
    Rot(RotAxis, Angle),
}

/// A maximal run of single-qubit gates on one qubit, applied as one 2×2 unitary.
#[derive(Clone, Debug)]
struct Fused1Q {
    qubit: usize,
    elems: Vec<ChainElem>,
    /// Number of source gates folded into this chain (for [`CompileStats`]).
    gates: usize,
}

impl Fused1Q {
    fn push(&mut self, elem: ChainElem) {
        self.gates += 1;
        if let (Some(ChainElem::Const(last)), ChainElem::Const(m)) = (self.elems.last_mut(), &elem)
        {
            // Adjacent constants fold immediately; the chain only keeps a boundary at
            // parameterized rotations.
            *last = matmul2(m, last);
            return;
        }
        self.elems.push(elem);
    }

    fn bound_matrix(&self, params: &[f64]) -> Matrix2 {
        let mut acc = IDENTITY_2;
        for elem in &self.elems {
            let m = match elem {
                ChainElem::Const(m) => *m,
                ChainElem::Rot(axis, angle) => axis.matrix(angle.resolve(params)),
            };
            acc = matmul2(&m, &acc);
        }
        acc
    }
}

/// The phase exponent of one diagonal term, resolved at bind time.
#[derive(Clone, Debug)]
enum PhaseAngle {
    Fixed(f64),
    /// `φ = scale · angle.resolve(params)`.
    Param {
        angle: Angle,
        scale: f64,
    },
}

impl PhaseAngle {
    fn resolve(&self, params: &[f64]) -> f64 {
        match self {
            PhaseAngle::Fixed(phi) => *phi,
            PhaseAngle::Param { angle, scale } => scale * angle.resolve(params),
        }
    }
}

/// One term of a batched diagonal pass: multiplies amplitude `b` by
/// `exp(i·φ·(−1)^popcount(b & mask))`.
#[derive(Clone, Debug)]
struct PhaseTerm {
    mask: u64,
    angle: PhaseAngle,
}

/// A batched run of diagonal gates, applied as a single pass over the state.
#[derive(Clone, Debug)]
struct DiagonalPass {
    terms: Vec<PhaseTerm>,
    /// Accumulated global phase of the constituent gates (kept so compiled execution is
    /// amplitude-exact against the per-gate interpreter, not just up to global phase).
    global: Complex64,
    /// Number of source gates folded into this pass.
    gates: usize,
}

/// Bound per-term data: the two phase factors indexed by the parity of `b & mask`.
type BoundPhase = (u64, [Complex64; 2]);

/// Terms per pass kept on the stack at execution time; passes beyond this spill to a
/// heap buffer (only reachable for >64-term diagonal runs).
const DIAG_STACK_TERMS: usize = 64;

/// A diagonal pass bound to concrete phase values, reusable across executions whose
/// resolved diagonal angles are identical (see [`CompiledCircuit::prepare_batch_tables`]).
#[derive(Clone, Debug)]
enum BoundDiagonal {
    /// Short term lists / tiny registers: the bound per-term phase factors.
    Direct(Vec<BoundPhase>),
    /// The factored low/high phase tables of the tabulated path.
    Tabulated(TabulatedTables),
}

/// The low/high-table factorization of a bound diagonal pass (see
/// [`DiagonalPass::build_tables`] for the math).
///
/// Tables are stored as split re/im lanes to match the statevector layout: the main
/// loop multiplies the amplitude lanes by a *contiguous* low-table phase stream with the
/// high-table phase hoisted per `2^s` block, so it autovectorizes like the gate kernels.
#[derive(Clone, Debug)]
struct TabulatedTables {
    /// Split position: low table indexes `b & (2^s − 1)`, high table indexes `b >> s`.
    s: usize,
    low_re: Vec<f64>,
    low_im: Vec<f64>,
    high_re: Vec<f64>,
    high_im: Vec<f64>,
    /// Terms whose mask spans the split; applied per amplitude on top of the tables.
    span_terms: Vec<BoundPhase>,
}

impl DiagonalPass {
    fn push_term(&mut self, mask: u64, angle: PhaseAngle) {
        // Constant terms on the same mask merge by summing exponents.
        if let PhaseAngle::Fixed(phi) = angle {
            for term in &mut self.terms {
                if term.mask == mask {
                    if let PhaseAngle::Fixed(existing) = &mut term.angle {
                        *existing += phi;
                        return;
                    }
                }
            }
        }
        self.terms.push(PhaseTerm { mask, angle });
    }

    fn absorb(&mut self, atom: DiagonalAtom) {
        for term in atom.terms {
            self.push_term(term.mask, term.angle);
        }
        self.global *= atom.global;
        self.gates += 1;
    }

    fn execute(&self, params: &[f64], state: &mut Statevector) {
        let mut stack = [(0u64, [Complex64::ZERO; 2]); DIAG_STACK_TERMS];
        let mut heap: Vec<BoundPhase> = Vec::new();
        let bound: &[BoundPhase] = if self.terms.len() <= DIAG_STACK_TERMS {
            for (slot, term) in stack.iter_mut().zip(&self.terms) {
                *slot = Self::bind_term(term, params);
            }
            &stack[..self.terms.len()]
        } else {
            heap.extend(self.terms.iter().map(|t| Self::bind_term(t, params)));
            &heap
        };
        let num_qubits = state.num_qubits();
        if Self::use_tabulated(bound.len(), num_qubits) {
            let tables = self.build_tables(bound, num_qubits);
            self.apply_tables(&tables, state);
        } else {
            self.execute_direct(bound, state);
        }
    }

    /// Same path choice as [`DiagonalPass::execute`], so binding once and reusing is
    /// arithmetic-identical to binding per execution.
    fn use_tabulated(num_terms: usize, num_qubits: usize) -> bool {
        num_terms >= 4 && num_qubits >= 8
    }

    /// Binds every term (and, on the tabulated path, builds the phase tables) once, for
    /// reuse across a batch of executions that resolve the same diagonal angles.
    fn bind_full(&self, params: &[f64], num_qubits: usize) -> BoundDiagonal {
        let bound: Vec<BoundPhase> = self
            .terms
            .iter()
            .map(|t| Self::bind_term(t, params))
            .collect();
        if Self::use_tabulated(bound.len(), num_qubits) {
            BoundDiagonal::Tabulated(self.build_tables(&bound, num_qubits))
        } else {
            BoundDiagonal::Direct(bound)
        }
    }

    /// Executes from pre-bound data (the reuse counterpart of [`DiagonalPass::execute`]).
    fn execute_bound(&self, bound: &BoundDiagonal, state: &mut Statevector) {
        match bound {
            BoundDiagonal::Direct(terms) => self.execute_direct(terms, state),
            BoundDiagonal::Tabulated(tables) => self.apply_tables(tables, state),
        }
    }

    /// Direct evaluation: every amplitude multiplies through all bound terms.  Used for
    /// short term lists and tiny registers, where the tabulated path's setup would
    /// dominate.
    fn execute_direct(&self, bound: &[BoundPhase], state: &mut Statevector) {
        let global = self.global;
        let dim = state.dim();
        let (re, im) = state.lanes_mut();
        // Four independent accumulators: a single product chain of K dependent complex
        // multiplies is latency-bound (each multiply waits on the last); interleaving
        // four chains restores instruction-level parallelism.
        let phase_of = |b: usize| -> Complex64 {
            let pick = |t: &BoundPhase| t.1[((b as u64 & t.0).count_ones() & 1) as usize];
            let mut acc0 = global;
            let mut acc1 = Complex64::ONE;
            let mut acc2 = Complex64::ONE;
            let mut acc3 = Complex64::ONE;
            let mut chunks = bound.chunks_exact(4);
            for ch in &mut chunks {
                acc0 *= pick(&ch[0]);
                acc1 *= pick(&ch[1]);
                acc2 *= pick(&ch[2]);
                acc3 *= pick(&ch[3]);
            }
            for t in chunks.remainder() {
                acc0 *= pick(t);
            }
            (acc0 * acc1) * (acc2 * acc3)
        };
        if use_parallel(dim) {
            let rp = SendPtr(re.as_mut_ptr());
            let ip = SendPtr(im.as_mut_ptr());
            (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .for_each(|b| {
                    let p = phase_of(b);
                    // SAFETY: each b is visited exactly once.
                    unsafe {
                        let (r, i) = (*rp.add(b), *ip.add(b));
                        *rp.add(b) = p.re * r - p.im * i;
                        *ip.add(b) = p.re * i + p.im * r;
                    }
                });
        } else {
            for (b, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
                let p = phase_of(b);
                let (x, y) = (*r, *i);
                *r = p.re * x - p.im * y;
                *i = p.re * y + p.im * x;
            }
        }
    }

    /// Tabulated evaluation: split the register at `s = ⌈n/2⌉` and factor the phase into
    /// `low_table[b & (2^s−1)] · high_table[b >> s] · (boundary-spanning terms)`.
    ///
    /// Each table costs `O(√dim · K)` to fill — negligible against the `dim`-sized main
    /// loop — and afterwards an amplitude pays two sequential-access table loads plus one
    /// multiply per *spanning* term (a mask with bits on both sides of the split; for
    /// the geometrically local Hamiltonian layers that dominate real ansätze this is
    /// O(1) terms, not O(K)).  This is what makes one batched pass decisively cheaper
    /// than K well-pipelined per-gate passes.
    fn build_tables(&self, bound: &[BoundPhase], num_qubits: usize) -> TabulatedTables {
        let s = num_qubits.div_ceil(2);
        let low_mask = (1u64 << s) - 1;

        let mut low_terms: Vec<&BoundPhase> = Vec::new();
        let mut high_terms: Vec<&BoundPhase> = Vec::new();
        let mut span_terms: Vec<BoundPhase> = Vec::new();
        for term in bound {
            if term.0 & !low_mask == 0 {
                low_terms.push(term);
            } else if term.0 & low_mask == 0 {
                high_terms.push(term);
            } else {
                span_terms.push(*term);
            }
        }

        let product_at = |terms: &[&BoundPhase], bits: u64| -> Complex64 {
            let mut acc = Complex64::ONE;
            for t in terms {
                acc *= t.1[((bits & t.0).count_ones() & 1) as usize];
            }
            acc
        };
        let low: Vec<Complex64> = (0..1usize << s)
            .map(|v| product_at(&low_terms, v as u64))
            .collect();
        // The global phase rides on the (smaller) high table.
        let high: Vec<Complex64> = (0..1usize << (num_qubits - s))
            .map(|h| self.global * product_at(&high_terms, (h as u64) << s))
            .collect();
        TabulatedTables {
            s,
            low_re: low.iter().map(|p| p.re).collect(),
            low_im: low.iter().map(|p| p.im).collect(),
            high_re: high.iter().map(|p| p.re).collect(),
            high_im: high.iter().map(|p| p.im).collect(),
            span_terms,
        }
    }

    /// Applies the tabulated phase pass: amplitude `b` is multiplied by
    /// `low[b & low_mask] · high[b >> s]` (· spanning terms).  Because `b` sweeps the
    /// low table **sequentially** within each `2^s` block, the split-lane main loop is a
    /// contiguous four-stream product — amplitude lanes × low-table lanes with the block's
    /// high phase hoisted — which vectorizes; the per-amplitude popcount path survives
    /// only for the (rare, short) spanning terms.
    fn apply_tables(&self, tables: &TabulatedTables, state: &mut Statevector) {
        let TabulatedTables {
            s,
            low_re,
            low_im,
            high_re,
            high_im,
            span_terms,
        } = tables;
        let s = *s;
        let block = 1usize << s;
        let (re, im) = state.lanes_mut();
        // One contiguous 2^s block of amplitudes per high-table entry; blocks are
        // disjoint, so the parallel path splits over them.
        let apply_block = |h: usize, r_block: &mut [f64], i_block: &mut [f64]| {
            apply_tabulated_block(
                r_block,
                i_block,
                low_re,
                low_im,
                high_re[h],
                high_im[h],
                span_terms,
                h << s,
            );
        };
        if use_parallel(re.len()) {
            let rp = SendPtr(re.as_mut_ptr());
            let ip = SendPtr(im.as_mut_ptr());
            (0..high_re.len())
                .into_par_iter()
                .with_min_len((MIN_PAR_INDICES >> s).max(1))
                .for_each(|h| {
                    // SAFETY: block h covers indices [h·2^s, (h+1)·2^s), disjoint across
                    // workers and in bounds (dim = high_len · 2^s).
                    unsafe {
                        let r_block = std::slice::from_raw_parts_mut(rp.add(h << s), block);
                        let i_block = std::slice::from_raw_parts_mut(ip.add(h << s), block);
                        apply_block(h, r_block, i_block);
                    }
                });
        } else {
            for (h, (r_block, i_block)) in re
                .chunks_exact_mut(block)
                .zip(im.chunks_exact_mut(block))
                .enumerate()
            {
                apply_block(h, r_block, i_block);
            }
        }
    }

    fn bind_term(term: &PhaseTerm, params: &[f64]) -> BoundPhase {
        let phi = term.angle.resolve(params);
        let (s, c) = phi.sin_cos();
        (term.mask, [Complex64::new(c, s), Complex64::new(c, -s)])
    }
}

/// One `2^s` amplitude block of the tabulated diagonal pass: multiplies each amplitude
/// by `high · low[j]` (· spanning terms).  A free function so the lane and table slices
/// arrive as `noalias` parameters and the span-free four-stream zip autovectorizes.
#[allow(clippy::too_many_arguments)]
fn apply_tabulated_block(
    r_block: &mut [f64],
    i_block: &mut [f64],
    low_re: &[f64],
    low_im: &[f64],
    hr: f64,
    hi: f64,
    span_terms: &[BoundPhase],
    base: usize,
) {
    if span_terms.is_empty() {
        for ((r, i), (lr, li)) in r_block
            .iter_mut()
            .zip(i_block.iter_mut())
            .zip(low_re.iter().zip(low_im))
        {
            // p = high · low, then a *= p — two complex multiplies kept in the same
            // operation order as the unfactored path.
            let (pr, pi) = (lr * hr - li * hi, lr * hi + li * hr);
            let (x, y) = (*r, *i);
            *r = x * pr - y * pi;
            *i = x * pi + y * pr;
        }
    } else {
        for (j, ((r, i), (lr, li))) in r_block
            .iter_mut()
            .zip(i_block.iter_mut())
            .zip(low_re.iter().zip(low_im))
            .enumerate()
        {
            let b = base + j;
            let mut p = Complex64::new(lr * hr - li * hi, lr * hi + li * hr);
            for t in span_terms {
                p *= t.1[((b as u64 & t.0).count_ones() & 1) as usize];
            }
            let (x, y) = (*r, *i);
            *r = x * p.re - y * p.im;
            *i = x * p.im + y * p.re;
        }
    }
}

/// A diagonal gate lowered to phase terms, before it is merged into (or becomes) a pass.
struct DiagonalAtom {
    terms: Vec<PhaseTerm>,
    global: Complex64,
    /// The op to emit if no neighbouring diagonal work exists (dedicated kernels beat a
    /// one-gate phase pass).
    single: CompiledOp,
}

/// One compiled operation.
#[derive(Clone, Debug)]
enum CompiledOp {
    Fused1Q(Fused1Q),
    Cx(usize, usize),
    Cz(usize, usize),
    /// A (possibly non-diagonal) Pauli rotation on the dedicated involution-pair kernel.
    Rotation(PauliString, Angle),
    Diagonal(DiagonalPass),
}

impl CompiledOp {
    fn is_diagonal(&self) -> bool {
        match self {
            CompiledOp::Cz(..) | CompiledOp::Diagonal(_) => true,
            CompiledOp::Rotation(string, _) => string.x_mask() == 0,
            _ => false,
        }
    }
}

struct OpEntry {
    op: CompiledOp,
    /// Bitmask of touched qubits (used for commutation-by-disjointness during fusion).
    mask: u64,
}

/// One potential error location of a compiled circuit: a source gate, the compiled op it
/// was folded into, and the qubits it touches.
///
/// Stochastic Pauli-trajectory noise simulation (`qnoise`) attaches a per-gate error
/// channel to every site and pre-samples, per trajectory, the list of
/// [`PauliInsertion`]s to replay through
/// [`CompiledCircuit::execute_in_place_with_insertions`] — the compiled gate list itself
/// is never re-walked.  An error attached to a fused op fires when that op *completes*;
/// for gates that were commuted backwards during fusion this coarse-grains the error
/// location to the op they merged into (exact for depolarizing channels, which commute
/// with the single-qubit chain they ride on, and first-order-exact otherwise).
#[derive(Clone, Debug)]
pub struct NoiseSite {
    /// Index of the compiled op this gate was folded into; the error fires after it.
    pub op_index: usize,
    /// The qubits the source gate touches.
    pub qubits: Vec<usize>,
    /// Whether the source gate was entangling (two-or-more-qubit) — noise models charge
    /// entangling gates a different (usually much larger) error rate.
    pub entangling: bool,
}

/// One pre-sampled Pauli error of a noise trajectory: apply `string` after compiled op
/// `after_op` executes.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliInsertion {
    /// Compiled-op index this error fires after (an [`NoiseSite::op_index`]).
    pub after_op: usize,
    /// The error to apply, as a full-register Pauli string.
    pub string: PauliString,
}

/// One bound diagonal pass of a [`BatchTables`], plus the resolved first-term phase it
/// was bound for (the staleness fingerprint checked on every cached execution in debug
/// builds).
#[derive(Clone, Debug)]
struct BoundTableEntry {
    bound: BoundDiagonal,
    first_phi_bits: u64,
}

/// Pre-bound diagonal-pass data shared across a batch of executions.
///
/// Built by [`CompiledCircuit::prepare_batch_tables`] when every parameter vector of a
/// batch resolves a diagonal pass to the same phase values — the common case for noise
/// trajectories (K executions of one binding) and calibration batches.  Passes whose
/// angles differ across the batch simply stay unbound and re-bind per execution.
///
/// Tables are only valid for the circuit and the parameter bindings they were prepared
/// from: executing them against a different circuit is rejected (op-count check), and
/// executing against parameters that resolve different diagonal angles is caught by a
/// per-pass fingerprint in debug builds.
#[derive(Clone, Debug, Default)]
pub struct BatchTables {
    /// One slot per compiled op; `Some` only for diagonal passes bound once.
    per_op: Vec<Option<BoundTableEntry>>,
}

impl BatchTables {
    /// Number of diagonal passes that were bound once for the whole batch.
    pub fn num_bound(&self) -> usize {
        self.per_op.iter().filter(|b| b.is_some()).count()
    }
}

/// Summary of what compilation achieved (surfaced by examples and benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileStats {
    /// Gates in the source circuit (identity rotations excluded).
    pub source_gates: usize,
    /// Compiled operations (state passes) after fusion.
    pub compiled_ops: usize,
    /// Fused single-qubit chains that absorbed at least two gates.
    pub fused_chains: usize,
    /// Batched diagonal passes.
    pub diagonal_passes: usize,
    /// Source gates folded into diagonal passes.
    pub diagonal_gates_batched: usize,
}

/// A circuit lowered into fused operations; see the module docs for the pass design.
///
/// # Examples
///
/// ```
/// use qcircuit::{Angle, Circuit, Gate};
/// use qop::{PauliString, Statevector};
/// use qsim::CompiledCircuit;
///
/// // H·Rz(θ)·H on one qubit compiles to a single fused 2×2 op.
/// let mut c = Circuit::new(1);
/// c.push(Gate::H(0));
/// c.push(Gate::Rz(0, Angle::param(0)));
/// c.push(Gate::H(0));
/// let compiled = CompiledCircuit::compile(&c);
/// assert_eq!(compiled.stats().compiled_ops, 1);
///
/// let mut state = Statevector::zero_state(1);
/// compiled.execute_in_place(&[0.8], &mut state);
/// // H Rz(θ) H |0⟩ has P(0) = cos²(θ/2).
/// assert!((state.probability(0) - (0.8f64 / 2.0).cos().powi(2)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    num_qubits: usize,
    ops: Vec<OpEntry>,
    stats: CompileStats,
    /// One entry per source gate (identity rotations excluded), in source order.
    noise_sites: Vec<NoiseSite>,
    /// Shared pattern-profiler entry (`None` when profiling is off, so the
    /// per-execution cost is one branch; clones share the entry, so executions of a
    /// cached compiled circuit aggregate under one pattern).
    profile: Option<std::sync::Arc<crate::profile::PatternEntry>>,
}

impl Clone for OpEntry {
    fn clone(&self) -> Self {
        OpEntry {
            op: self.op.clone(),
            mask: self.mask,
        }
    }
}

impl std::fmt::Debug for OpEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.op.fmt(f)
    }
}

/// Touched-qubit mask of a gate; qubits ≥ 64 saturate to "touches everything", which
/// only disables fusion (never correctness).
fn qubit_mask(qubits: impl IntoIterator<Item = usize>) -> u64 {
    qubits.into_iter().fold(0u64, |acc, q| {
        acc | 1u64.checked_shl(q as u32).unwrap_or(u64::MAX)
    })
}

impl CompiledCircuit {
    /// Lowers `circuit` into fused operations.  Identity Pauli rotations (global phase
    /// only) are dropped, matching the interpreter.
    pub fn compile(circuit: &Circuit) -> Self {
        let mut ops: Vec<OpEntry> = Vec::new();
        let mut source_gates = 0usize;
        let mut noise_sites: Vec<NoiseSite> = Vec::new();
        for gate in circuit.gates() {
            let op_index = match Self::classify(gate) {
                Lowered::Skip => continue,
                Lowered::Single(q, elem, diagonal) => {
                    source_gates += 1;
                    Self::merge_single(&mut ops, q, elem, diagonal)
                }
                Lowered::Diagonal(atom) => {
                    source_gates += 1;
                    Self::merge_diagonal(&mut ops, atom)
                }
                Lowered::Other(op, mask) => {
                    source_gates += 1;
                    ops.push(OpEntry { op, mask });
                    ops.len() - 1
                }
            };
            noise_sites.push(NoiseSite {
                op_index,
                qubits: gate.qubits(),
                entangling: gate.is_entangling(),
            });
        }
        let mut stats = CompileStats {
            source_gates,
            compiled_ops: ops.len(),
            fused_chains: 0,
            diagonal_passes: 0,
            diagonal_gates_batched: 0,
        };
        let mut kinds = crate::profile::OpKindCounts::default();
        for entry in &ops {
            match &entry.op {
                CompiledOp::Fused1Q(f) => {
                    kinds.fused_1q += 1;
                    if f.gates >= 2 {
                        stats.fused_chains += 1;
                    }
                }
                CompiledOp::Cx(..) => kinds.cx += 1,
                CompiledOp::Cz(..) => kinds.cz += 1,
                CompiledOp::Rotation(..) => kinds.rotation += 1,
                CompiledOp::Diagonal(d) => {
                    kinds.diagonal += 1;
                    stats.diagonal_passes += 1;
                    stats.diagonal_gates_batched += d.gates;
                }
            }
        }
        let profile = crate::profile::register(
            ops.iter().map(|entry| match &entry.op {
                CompiledOp::Fused1Q(_) => 'u',
                CompiledOp::Cx(..) => 'x',
                CompiledOp::Cz(..) => 'z',
                CompiledOp::Rotation(..) => 'r',
                CompiledOp::Diagonal(_) => 'd',
            }),
            circuit.num_qubits(),
            source_gates,
            kinds,
        );
        CompiledCircuit {
            num_qubits: circuit.num_qubits(),
            ops,
            stats,
            noise_sites,
            profile,
        }
    }

    /// Register size of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of compiled operations (full state passes per execution).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Compilation summary.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Executes the compiled circuit on `state`, resolving parameter slots against
    /// `params`.  Allocation-free for circuits whose diagonal passes hold at most 64
    /// phase terms.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ or a parameter slot is out of range for
    /// `params`.
    pub fn execute_in_place(&self, params: &[f64], state: &mut Statevector) {
        self.execute_full(params, state, None, &[]);
    }

    /// Executes starting from `initial`, writing into `scratch` (the zero-allocation
    /// batch building block: `scratch`'s buffer is reused when dimensions match).
    pub fn execute_into(&self, params: &[f64], initial: &Statevector, scratch: &mut Statevector) {
        scratch.clone_from(initial);
        self.execute_in_place(params, scratch);
    }

    /// The noise sites of the source circuit, in source-gate order (see [`NoiseSite`]).
    pub fn noise_sites(&self) -> &[NoiseSite] {
        &self.noise_sites
    }

    /// Binds the diagonal passes once for a whole batch of parameter vectors.
    ///
    /// For every diagonal pass whose phase angles resolve to **bit-identical** values
    /// under all of `params_list` (always true for fixed-angle gates, for batches that
    /// only vary non-diagonal parameters, and for the K-trajectories-of-one-binding
    /// batches of noise simulation), the pass's bound terms — and on the tabulated path
    /// its `O(√dim)` low/high phase tables — are computed once here instead of once per
    /// execution.  Executing with the returned tables via
    /// [`CompiledCircuit::execute_in_place_cached`] is arithmetic-identical to
    /// [`CompiledCircuit::execute_in_place`]: the same binding and table-construction
    /// code runs, just once.
    pub fn prepare_batch_tables(&self, params_list: &[&[f64]]) -> BatchTables {
        let mut per_op: Vec<Option<BoundTableEntry>> = vec![None; self.ops.len()];
        let Some((first, rest)) = params_list.split_first() else {
            return BatchTables { per_op };
        };
        for (slot, entry) in per_op.iter_mut().zip(&self.ops) {
            let CompiledOp::Diagonal(pass) = &entry.op else {
                continue;
            };
            let uniform = pass.terms.iter().all(|t| {
                let phi = t.angle.resolve(first).to_bits();
                rest.iter().all(|p| t.angle.resolve(p).to_bits() == phi)
            });
            if uniform {
                *slot = Some(BoundTableEntry {
                    bound: pass.bind_full(first, self.num_qubits),
                    first_phi_bits: pass.terms[0].angle.resolve(first).to_bits(),
                });
            }
        }
        BatchTables { per_op }
    }

    /// [`CompiledCircuit::execute_in_place`] with pre-bound diagonal tables from
    /// [`CompiledCircuit::prepare_batch_tables`].
    pub fn execute_in_place_cached(
        &self,
        params: &[f64],
        state: &mut Statevector,
        tables: &BatchTables,
    ) {
        self.execute_full(params, state, Some(tables), &[]);
    }

    /// Executes the compiled circuit while replaying a pre-sampled Pauli error stream:
    /// each [`PauliInsertion`] is applied immediately after its `after_op` op executes.
    ///
    /// This is the noise-trajectory hot path (`qnoise`): the insertion schedule is
    /// sampled once per trajectory from the [`CompiledCircuit::noise_sites`] table, and
    /// replaying it costs one [`apply_pauli_string`] pass per *fired* error — the
    /// compiled op list is never re-walked or re-lowered.  With an empty schedule this
    /// is exactly [`CompiledCircuit::execute_in_place`] (bit-identical, same code path),
    /// which is what pins the noise-rate-0 equivalence property.
    ///
    /// # Panics
    ///
    /// Panics if `insertions` is not sorted by `after_op` or references an op index out
    /// of range, in addition to the register/parameter panics of
    /// [`CompiledCircuit::execute_in_place`].
    pub fn execute_in_place_with_insertions(
        &self,
        params: &[f64],
        state: &mut Statevector,
        insertions: &[PauliInsertion],
        tables: Option<&BatchTables>,
    ) {
        self.execute_full(params, state, tables, insertions);
    }

    fn execute_full(
        &self,
        params: &[f64],
        state: &mut Statevector,
        tables: Option<&BatchTables>,
        insertions: &[PauliInsertion],
    ) {
        if let Some(profile) = &self.profile {
            profile.record_execution();
        }
        assert_eq!(
            self.num_qubits,
            state.num_qubits(),
            "compiled circuit acts on {} qubits but the state has {}",
            self.num_qubits,
            state.num_qubits()
        );
        assert!(
            insertions
                .windows(2)
                .all(|w| w[0].after_op <= w[1].after_op),
            "Pauli insertions must be sorted by after_op"
        );
        if let Some(t) = tables {
            assert_eq!(
                t.per_op.len(),
                self.ops.len(),
                "batch tables were prepared for a different compiled circuit"
            );
        }
        let mut cursor = 0usize;
        for (i, entry) in self.ops.iter().enumerate() {
            let bound = tables.and_then(|t| t.per_op.get(i).and_then(Option::as_ref));
            match &entry.op {
                CompiledOp::Fused1Q(f) => {
                    apply_single_qubit(state, f.qubit, &f.bound_matrix(params));
                }
                CompiledOp::Cx(c, t) => apply_cx(state, *c, *t),
                CompiledOp::Cz(c, t) => apply_cz(state, *c, *t),
                CompiledOp::Rotation(string, angle) => {
                    apply_pauli_rotation(state, string, angle.resolve(params));
                }
                CompiledOp::Diagonal(pass) => match bound {
                    Some(entry) => {
                        // Stale-table misuse (tables prepared for a binding whose
                        // diagonal angles differ from `params`) corrupts amplitudes
                        // silently; the fingerprint catches it in debug builds.
                        debug_assert_eq!(
                            pass.terms[0].angle.resolve(params).to_bits(),
                            entry.first_phi_bits,
                            "batch tables are stale: diagonal angles changed since \
                             prepare_batch_tables"
                        );
                        pass.execute_bound(&entry.bound, state);
                    }
                    None => pass.execute(params, state),
                },
            }
            while cursor < insertions.len() && insertions[cursor].after_op == i {
                apply_pauli_string(state, &insertions[cursor].string);
                cursor += 1;
            }
        }
        assert_eq!(
            cursor,
            insertions.len(),
            "Pauli insertion references op index {} but the circuit has {} ops",
            insertions.get(cursor).map(|p| p.after_op).unwrap_or(0),
            self.ops.len()
        );
    }

    fn classify(gate: &Gate) -> Lowered {
        use std::f64::consts::FRAC_PI_4;
        match gate {
            Gate::H(q) => Lowered::single_const(*q, h_matrix(), false),
            Gate::X(q) => Lowered::single_const(*q, x_matrix(), false),
            Gate::Y(q) => Lowered::single_const(*q, y_matrix(), false),
            Gate::Z(q) => Lowered::single_const(*q, z_matrix(), true),
            Gate::S(q) => Lowered::single_const(*q, s_matrix(), true),
            Gate::Sdg(q) => Lowered::single_const(*q, sdg_matrix(), true),
            Gate::Rx(q, a) => Lowered::Single(*q, ChainElem::Rot(RotAxis::X, *a), false),
            Gate::Ry(q, a) => Lowered::Single(*q, ChainElem::Rot(RotAxis::Y, *a), false),
            Gate::Rz(q, a) => Lowered::Single(*q, ChainElem::Rot(RotAxis::Z, *a), true),
            Gate::Cx(c, t) => Lowered::Other(CompiledOp::Cx(*c, *t), qubit_mask([*c, *t])),
            Gate::Cz(c, t) => {
                // CZ = e^{iπ/4} · exp(−iπ/4·(−1)^{b_c}) · exp(−iπ/4·(−1)^{b_t})
                //               · exp(+iπ/4·(−1)^{b_c⊕b_t}).
                let (cm, tm) = (qubit_mask([*c]), qubit_mask([*t]));
                let (s, co) = FRAC_PI_4.sin_cos();
                Lowered::Diagonal(DiagonalAtom {
                    terms: vec![
                        PhaseTerm {
                            mask: cm,
                            angle: PhaseAngle::Fixed(-FRAC_PI_4),
                        },
                        PhaseTerm {
                            mask: tm,
                            angle: PhaseAngle::Fixed(-FRAC_PI_4),
                        },
                        PhaseTerm {
                            mask: cm | tm,
                            angle: PhaseAngle::Fixed(FRAC_PI_4),
                        },
                    ],
                    global: Complex64::new(co, s),
                    single: CompiledOp::Cz(*c, *t),
                })
            }
            Gate::PauliRotation(string, a) => {
                if string.is_identity() {
                    // Global phase only; skipped by interpreter and reference alike.
                    return Lowered::Skip;
                }
                if string.x_mask() == 0 {
                    // exp(−iθ/2·(−1)^{popcount(b & z)}): one phase term, no global phase.
                    let angle = match *a {
                        Angle::Fixed(theta) => PhaseAngle::Fixed(-theta / 2.0),
                        Angle::Param { .. } => PhaseAngle::Param {
                            angle: *a,
                            scale: -0.5,
                        },
                    };
                    Lowered::Diagonal(DiagonalAtom {
                        terms: vec![PhaseTerm {
                            mask: string.z_mask(),
                            angle,
                        }],
                        global: Complex64::ONE,
                        single: CompiledOp::Rotation(*string, *a),
                    })
                } else {
                    let mask = qubit_mask(string.iter_non_identity().map(|(q, _)| q));
                    Lowered::Other(CompiledOp::Rotation(*string, *a), mask)
                }
            }
        }
    }

    /// Merges a single-qubit gate into an existing chain on the same qubit, commuting it
    /// past earlier ops on disjoint qubits (and, for diagonal gates, past diagonal ops).
    /// Returns the op index the gate landed in.
    fn merge_single(
        ops: &mut Vec<OpEntry>,
        q: usize,
        elem: ChainElem,
        elem_diagonal: bool,
    ) -> usize {
        let qmask = qubit_mask([q]);
        let mut target = None;
        let mut i = ops.len();
        while i > 0 {
            let entry = &ops[i - 1];
            if let CompiledOp::Fused1Q(f) = &entry.op {
                if f.qubit == q {
                    target = Some(i - 1);
                    break;
                }
            }
            let commutes = entry.mask & qmask == 0 || (elem_diagonal && entry.op.is_diagonal());
            if !commutes {
                break;
            }
            i -= 1;
        }
        if let Some(j) = target {
            if let CompiledOp::Fused1Q(f) = &mut ops[j].op {
                f.push(elem);
                return j;
            }
        }
        ops.push(OpEntry {
            op: CompiledOp::Fused1Q(Fused1Q {
                qubit: q,
                elems: vec![elem],
                gates: 1,
            }),
            mask: qmask,
        });
        ops.len() - 1
    }

    /// Merges a diagonal gate into an earlier diagonal op (pass, CZ, or diagonal
    /// rotation), commuting it past disjoint or diagonal ops; otherwise emits its
    /// dedicated-kernel form.  Returns the op index the gate landed in.
    fn merge_diagonal(ops: &mut Vec<OpEntry>, atom: DiagonalAtom) -> usize {
        let mask = atom.terms.iter().fold(0u64, |acc, t| acc | t.mask);
        let mut target = None;
        let mut i = ops.len();
        while i > 0 {
            let entry = &ops[i - 1];
            if entry.op.is_diagonal() {
                target = Some(i - 1);
                break;
            }
            if entry.mask & mask != 0 {
                break;
            }
            i -= 1;
        }
        if let Some(j) = target {
            let entry = &mut ops[j];
            // Convert the earlier op to a pass if needed, then absorb the new gate.
            if !matches!(entry.op, CompiledOp::Diagonal(_)) {
                let prior = std::mem::replace(&mut entry.op, CompiledOp::Cx(0, 0));
                let prior_atom = Self::reclassify_diagonal(prior)
                    .expect("every op reported diagonal lowers back to phase terms");
                let mut pass = DiagonalPass {
                    terms: Vec::new(),
                    global: Complex64::ONE,
                    gates: 0,
                };
                pass.absorb(prior_atom);
                entry.op = CompiledOp::Diagonal(pass);
            }
            if let CompiledOp::Diagonal(pass) = &mut entry.op {
                pass.absorb(atom);
            }
            entry.mask |= mask;
            return j;
        }
        ops.push(OpEntry {
            op: atom.single,
            mask,
        });
        ops.len() - 1
    }

    /// Re-lowers an already-emitted diagonal op back into phase terms so it can seed a
    /// pass once a second diagonal gate shows up.
    fn reclassify_diagonal(op: CompiledOp) -> Option<DiagonalAtom> {
        let gate = match op {
            CompiledOp::Cz(c, t) => Gate::Cz(c, t),
            CompiledOp::Rotation(string, angle) => Gate::PauliRotation(string, angle),
            _ => return None,
        };
        match Self::classify(&gate) {
            Lowered::Diagonal(atom) => Some(atom),
            _ => None,
        }
    }
}

enum Lowered {
    Skip,
    /// `(qubit, element, element is diagonal)`.
    Single(usize, ChainElem, bool),
    Diagonal(DiagonalAtom),
    Other(CompiledOp, u64),
}

impl Lowered {
    fn single_const(q: usize, m: Matrix2, diagonal: bool) -> Lowered {
        Lowered::Single(q, ChainElem::Const(m), diagonal)
    }
}

fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

fn h_matrix() -> Matrix2 {
    let f = std::f64::consts::FRAC_1_SQRT_2;
    [[c(f, 0.0), c(f, 0.0)], [c(f, 0.0), c(-f, 0.0)]]
}
fn x_matrix() -> Matrix2 {
    [[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]]
}
fn y_matrix() -> Matrix2 {
    [[c(0.0, 0.0), c(0.0, -1.0)], [c(0.0, 1.0), c(0.0, 0.0)]]
}
fn z_matrix() -> Matrix2 {
    [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(-1.0, 0.0)]]
}
fn s_matrix() -> Matrix2 {
    [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, 1.0)]]
}
fn sdg_matrix() -> Matrix2 {
    [[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, -1.0)]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::reference;
    use qop::PauliOp;

    fn dense_state(n: usize) -> Statevector {
        let dim = 1usize << n;
        let mut psi = Statevector::from_amplitudes(
            (0..dim)
                .map(|i| Complex64::new((i as f64 * 0.137).sin() + 0.3, (i as f64 * 0.291).cos()))
                .collect(),
        );
        psi.normalize();
        psi
    }

    fn max_diff(a: &Statevector, b: &Statevector) -> f64 {
        a.to_amplitudes()
            .iter()
            .zip(b.to_amplitudes())
            .map(|(x, y)| (*x - y).norm())
            .fold(0.0, f64::max)
    }

    /// Asserts two states are equal to the last bit, lane for lane.
    fn assert_bit_identical(a: &Statevector, b: &Statevector, context: &str) {
        for (x, y) in a.re().iter().zip(b.re()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context} (re)");
        }
        for (x, y) in a.im().iter().zip(b.im()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context} (im)");
        }
    }

    fn assert_compiled_matches_reference(circuit: &Circuit, params: &[f64]) {
        let initial = dense_state(circuit.num_qubits());
        let compiled = CompiledCircuit::compile(circuit);
        let mut fast = initial.clone();
        compiled.execute_in_place(params, &mut fast);
        let naive = reference::run_circuit(circuit, params, &initial);
        let diff = max_diff(&fast, &naive);
        assert!(diff < 1e-12, "compiled/reference mismatch: {diff}");
    }

    #[test]
    fn constant_single_qubit_runs_fuse_to_one_op() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::X(0));
        circ.push(Gate::S(0));
        circ.push(Gate::H(1));
        circ.push(Gate::Sdg(0));
        let compiled = CompiledCircuit::compile(&circ);
        // Chain on qubit 0 (4 gates, crossing the disjoint H(1)) plus the H(1) chain.
        assert_eq!(compiled.num_ops(), 2);
        assert_eq!(compiled.stats().fused_chains, 1);
        assert_compiled_matches_reference(&circ, &[]);
    }

    #[test]
    fn parameterized_rotations_fuse_into_chains() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::Ry(0, Angle::param(0)));
        circ.push(Gate::Ry(1, Angle::param(1)));
        circ.push(Gate::Rz(0, Angle::param(2)));
        circ.push(Gate::Rz(1, Angle::param(3)));
        let compiled = CompiledCircuit::compile(&circ);
        // One Ry·Rz chain per qubit, interleaved in the source order.
        assert_eq!(compiled.num_ops(), 2);
        assert_compiled_matches_reference(&circ, &[0.3, -0.7, 1.1, 0.4]);
        // Re-binding executes against new parameters without recompiling.
        assert_compiled_matches_reference(&circ, &[-1.0, 0.2, 0.0, 2.2]);
    }

    #[test]
    fn cx_blocks_fusion_across_it() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::Cx(0, 1));
        circ.push(Gate::H(0));
        let compiled = CompiledCircuit::compile(&circ);
        assert_eq!(compiled.num_ops(), 3);
        assert_compiled_matches_reference(&circ, &[]);
    }

    #[test]
    fn qaoa_cost_layer_batches_into_one_diagonal_pass() {
        let n = 4;
        let mut circ = Circuit::new(n);
        for q in 0..n {
            circ.push(Gate::H(q));
        }
        for q in 0..n {
            let mut label = vec!['I'; n];
            label[q] = 'Z';
            label[(q + 1) % n] = 'Z';
            let string = PauliString::from_label(&label.iter().collect::<String>()).unwrap();
            circ.push(Gate::PauliRotation(string, Angle::param(q)));
        }
        circ.push(Gate::Cz(0, 2));
        let compiled = CompiledCircuit::compile(&circ);
        let stats = compiled.stats();
        assert_eq!(stats.diagonal_passes, 1);
        assert_eq!(stats.diagonal_gates_batched, n + 1);
        // n Hadamard chains + 1 diagonal pass.
        assert_eq!(compiled.num_ops(), n + 1);
        assert_compiled_matches_reference(&circ, &[0.3, 0.9, -0.4, 1.7]);
    }

    #[test]
    fn lone_diagonal_gates_stay_on_dedicated_kernels() {
        let mut circ = Circuit::new(3);
        circ.push(Gate::H(0));
        circ.push(Gate::Cz(0, 1));
        circ.push(Gate::H(1));
        let compiled = CompiledCircuit::compile(&circ);
        assert_eq!(compiled.stats().diagonal_passes, 0);
        assert_compiled_matches_reference(&circ, &[]);
    }

    #[test]
    fn diagonal_gates_commute_past_each_other_into_one_pass() {
        // CZ · Rz-rotation(ZZ) with a non-diagonal Rx in between on a disjoint qubit.
        let mut circ = Circuit::new(3);
        circ.push(Gate::Cz(0, 1));
        circ.push(Gate::Rx(2, Angle::Fixed(0.4)));
        circ.push(Gate::PauliRotation(
            PauliString::from_label("ZZI").unwrap(),
            Angle::Fixed(0.9),
        ));
        let compiled = CompiledCircuit::compile(&circ);
        assert_eq!(compiled.stats().diagonal_passes, 1);
        assert_compiled_matches_reference(&circ, &[]);
    }

    #[test]
    fn identity_rotation_is_skipped() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::PauliRotation(
            PauliString::identity(2),
            Angle::Fixed(1.0),
        ));
        let compiled = CompiledCircuit::compile(&circ);
        assert_eq!(compiled.num_ops(), 1);
        assert_compiled_matches_reference(&circ, &[]);
    }

    #[test]
    fn hea_ansatz_matches_reference_and_shrinks() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let circ = HardwareEfficientAnsatz::new(5, 3, Entanglement::Circular).build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let compiled = CompiledCircuit::compile(&circ);
        assert!(
            compiled.num_ops() < circ.num_gates(),
            "fusion should shrink the op list: {} vs {}",
            compiled.num_ops(),
            circ.num_gates()
        );
        assert_compiled_matches_reference(&circ, &params);
    }

    #[test]
    fn execute_into_reuses_scratch() {
        let mut circ = Circuit::new(3);
        circ.push(Gate::H(0));
        circ.push(Gate::Cx(0, 1));
        circ.push(Gate::Ry(2, Angle::param(0)));
        let compiled = CompiledCircuit::compile(&circ);
        let initial = Statevector::zero_state(3);
        let mut scratch = Statevector::zero_state(3);
        let buffer = scratch.re().as_ptr();
        compiled.execute_into(&[0.7], &initial, &mut scratch);
        assert_eq!(buffer, scratch.re().as_ptr(), "scratch reallocated");
        let expected = reference::run_circuit(&circ, &[0.7], &initial);
        assert!(max_diff(&expected, &scratch) < 1e-12);
    }

    #[test]
    fn noise_sites_track_fused_gates() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::Rz(0, Angle::param(0)));
        circ.push(Gate::Cx(0, 1));
        circ.push(Gate::H(1));
        let compiled = CompiledCircuit::compile(&circ);
        let sites = compiled.noise_sites();
        assert_eq!(sites.len(), 4, "one site per source gate");
        // H and Rz fuse into op 0; CX is op 1; the trailing H is op 2.
        assert_eq!(sites[0].op_index, sites[1].op_index);
        assert_eq!(sites[2].qubits, vec![0, 1]);
        assert!(sites[2].entangling);
        assert!(!sites[0].entangling);
        assert!(sites.iter().all(|s| s.op_index < compiled.num_ops()));
        // Identity rotations contribute no site.
        let mut with_id = Circuit::new(2);
        with_id.push(Gate::H(0));
        with_id.push(Gate::PauliRotation(
            PauliString::identity(2),
            Angle::Fixed(0.4),
        ));
        assert_eq!(CompiledCircuit::compile(&with_id).noise_sites().len(), 1);
    }

    #[test]
    fn insertions_fire_after_their_op() {
        // X inserted after the (single) H op flips the state exactly like appending an
        // X gate to the circuit.
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        let compiled = CompiledCircuit::compile(&circ);
        let mut noisy = Statevector::zero_state(2);
        let insertions = [super::PauliInsertion {
            after_op: 0,
            string: PauliString::from_label("IX").unwrap(),
        }];
        compiled.execute_in_place_with_insertions(&[], &mut noisy, &insertions, None);

        let mut with_gate = Circuit::new(2);
        with_gate.push(Gate::H(0));
        with_gate.push(Gate::X(1));
        let expected = reference::run_circuit(&with_gate, &[], &Statevector::zero_state(2));
        assert!(max_diff(&noisy, &expected) < 1e-12);
    }

    #[test]
    fn empty_insertion_schedule_is_bit_identical_to_plain_execution() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let circ = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular).build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| (i as f64 * 0.29).sin())
            .collect();
        let compiled = CompiledCircuit::compile(&circ);
        let mut plain = dense_state(4);
        let mut noisy = plain.clone();
        compiled.execute_in_place(&params, &mut plain);
        compiled.execute_in_place_with_insertions(&params, &mut noisy, &[], None);
        assert_bit_identical(&plain, &noisy, "empty insertion schedule");
    }

    #[test]
    fn batch_tables_bind_uniform_diagonal_passes_and_match_exactly() {
        // A 9-qubit QAOA-style circuit: the diagonal pass takes the tabulated path
        // (≥4 terms, ≥8 qubits), so the cached execution reuses real low/high tables.
        let n = 9;
        let mut circ = Circuit::new(n);
        for q in 0..n {
            circ.push(Gate::H(q));
        }
        for q in 0..n {
            let mut label = vec!['I'; n];
            label[q] = 'Z';
            label[(q + 1) % n] = 'Z';
            let string = PauliString::from_label(&label.iter().collect::<String>()).unwrap();
            circ.push(Gate::PauliRotation(string, Angle::param(0)));
        }
        for q in 0..n {
            circ.push(Gate::Rx(q, Angle::param(1)));
        }
        let compiled = CompiledCircuit::compile(&circ);
        assert_eq!(compiled.stats().diagonal_passes, 1);

        // Two bindings that share the diagonal parameter but vary the mixer.
        let a = [0.7, 0.3];
        let b = [0.7, -1.1];
        let tables = compiled.prepare_batch_tables(&[&a, &b]);
        assert_eq!(tables.num_bound(), 1);
        for (params, label) in [(&a, "a"), (&b, "b")] {
            let mut cached = Statevector::zero_state(n);
            let mut fresh = Statevector::zero_state(n);
            compiled.execute_in_place_cached(params.as_slice(), &mut cached, &tables);
            compiled.execute_in_place(params.as_slice(), &mut fresh);
            assert_bit_identical(&cached, &fresh, &format!("binding {label}"));
        }

        // A binding that changes the diagonal parameter disables the reuse.
        let c = [0.9, 0.3];
        let tables = compiled.prepare_batch_tables(&[&a, &c]);
        assert_eq!(tables.num_bound(), 0);
    }

    #[test]
    fn expectations_survive_compilation() {
        // End-to-end sanity: energy of a compiled HEA state equals the interpreter's.
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let circ = HardwareEfficientAnsatz::new(4, 2, Entanglement::Linear).build();
        let params: Vec<f64> = (0..circ.num_parameters())
            .map(|i| 0.21 * i as f64)
            .collect();
        let op = PauliOp::from_labels(4, &[("ZZII", -1.0), ("IXXI", 0.4), ("IIZZ", -0.6)]);
        let compiled = CompiledCircuit::compile(&circ);
        let mut state = Statevector::zero_state(4);
        compiled.execute_in_place(&params, &mut state);
        let expected = reference::run_circuit(&circ, &params, &Statevector::zero_state(4));
        assert!((op.expectation(&state) - op.expectation(&expected)).abs() < 1e-12);
    }
}
