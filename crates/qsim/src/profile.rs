//! Gate-sequence pattern profiling across compiled circuits.
//!
//! The ROADMAP's profile-guided superop item needs one piece of data nothing
//! recorded before this module: *which lowered op sequences are actually hot* —
//! across every compiled-circuit cache in the process, weighted by how many times
//! each compiled form executes (one ansatz compiled once can be re-bound for
//! thousands of parameter vectors).  The profiler answers that with a process-wide
//! table keyed by a circuit's *pattern signature*: the run-length-encoded sequence
//! of its compiled op kinds plus its register size (e.g. `q4|u4x3u4d1` — four
//! fused 1q ops, three CNOTs, four more fused 1q ops, one diagonal pass on four
//! qubits).  Identical ansatz *shapes* share an entry even when their angles,
//! parameters, or owning caches differ — exactly the aggregation a superop
//! compiler wants, since a superop is specialized on the op sequence, not on the
//! binding.
//!
//! Cost model: when process-wide observability is off ([`qobs::enabled`]),
//! compilation skips registration entirely and a compiled circuit carries `None` —
//! execution pays one branch on an absent `Option`, nothing else.  When on,
//! compilation does one signature build + map insert (compilation is already the
//! cold path), and each execution is a single relaxed `fetch_add` on the shared
//! entry — per-kind execution counts are derived at snapshot time as
//! `executions × per-circuit kind counts` instead of bumping an atomic per op in
//! the hot loop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How many compiled ops of each kind one circuit (pattern) contains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpKindCounts {
    /// Fused single-qubit chains (`u` in signatures).
    pub fused_1q: u64,
    /// CNOTs (`x`).
    pub cx: u64,
    /// CZs (`z`).
    pub cz: u64,
    /// Pauli rotations on the involution-pair kernel (`r`).
    pub rotation: u64,
    /// Batched diagonal phase passes (`d`).
    pub diagonal: u64,
}

impl OpKindCounts {
    fn scaled(&self, by: u64) -> OpKindCounts {
        OpKindCounts {
            fused_1q: self.fused_1q * by,
            cx: self.cx * by,
            cz: self.cz * by,
            rotation: self.rotation * by,
            diagonal: self.diagonal * by,
        }
    }

    /// Total ops across all kinds.
    pub fn total(&self) -> u64 {
        self.fused_1q + self.cx + self.cz + self.rotation + self.diagonal
    }
}

/// A live profile entry shared by every compiled circuit with the same signature.
#[derive(Debug)]
pub struct PatternEntry {
    signature: String,
    num_qubits: usize,
    source_gates: usize,
    op_counts: OpKindCounts,
    compiles: AtomicU64,
    executions: AtomicU64,
}

impl PatternEntry {
    /// Bump the execution count (called once per [`crate::CompiledCircuit`]
    /// execution; relaxed — this is a statistic, not synchronization).
    #[inline]
    pub(crate) fn record_execution(&self) {
        self.executions.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of one pattern, for reporting.
#[derive(Clone, Debug)]
pub struct PatternStats {
    /// Run-length-encoded op-kind sequence, e.g. `q4|u4x3u4d1`.
    pub signature: String,
    /// Register size.
    pub num_qubits: usize,
    /// Source gates the pattern compiled from.
    pub source_gates: usize,
    /// Compiled ops of each kind in one execution of the pattern.
    pub op_counts: OpKindCounts,
    /// Distinct compilations that produced this pattern.
    pub compiles: u64,
    /// Executions across every compiled instance of the pattern.
    pub executions: u64,
    /// Per-kind op executions: `op_counts × executions` — the per-fused-op
    /// execution counts the superop cost model consumes.
    pub op_executions: OpKindCounts,
}

fn table() -> &'static Mutex<HashMap<String, Arc<PatternEntry>>> {
    static TABLE: OnceLock<Mutex<HashMap<String, Arc<PatternEntry>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Called by `CompiledCircuit::compile`: registers (or re-finds) the pattern and
/// returns the shared entry, or `None` when profiling is off.
pub(crate) fn register(
    signature_ops: impl Iterator<Item = char>,
    num_qubits: usize,
    source_gates: usize,
    op_counts: OpKindCounts,
) -> Option<Arc<PatternEntry>> {
    if !qobs::enabled() {
        return None;
    }
    // Run-length encode the op-kind letters.
    let mut sig = format!("q{num_qubits}|");
    let mut pending: Option<(char, u64)> = None;
    for kind in signature_ops {
        match pending {
            Some((k, n)) if k == kind => pending = Some((k, n + 1)),
            Some((k, n)) => {
                sig.push(k);
                sig.push_str(&n.to_string());
                pending = Some((kind, 1));
            }
            None => pending = Some((kind, 1)),
        }
    }
    if let Some((k, n)) = pending {
        sig.push(k);
        sig.push_str(&n.to_string());
    }
    let mut map = table().lock().unwrap();
    let entry = map
        .entry(sig.clone())
        .or_insert_with(|| {
            Arc::new(PatternEntry {
                signature: sig,
                num_qubits,
                source_gates,
                op_counts,
                compiles: AtomicU64::new(0),
                executions: AtomicU64::new(0),
            })
        })
        .clone();
    entry.compiles.fetch_add(1, Ordering::Relaxed);
    Some(entry)
}

/// Snapshot every pattern seen so far, hottest (most op executions) first.
pub fn snapshot() -> Vec<PatternStats> {
    let map = table().lock().unwrap();
    let mut stats: Vec<PatternStats> = map
        .values()
        .map(|e| {
            let executions = e.executions.load(Ordering::Relaxed);
            PatternStats {
                signature: e.signature.clone(),
                num_qubits: e.num_qubits,
                source_gates: e.source_gates,
                op_counts: e.op_counts,
                compiles: e.compiles.load(Ordering::Relaxed),
                executions,
                op_executions: e.op_counts.scaled(executions),
            }
        })
        .collect();
    stats.sort_by(|a, b| {
        b.op_executions
            .total()
            .cmp(&a.op_executions.total())
            .then_with(|| a.signature.cmp(&b.signature))
    });
    stats
}

/// Render the pattern table as indented human-readable lines (top `limit`
/// patterns), or a placeholder note when nothing was profiled.
pub fn render_table(limit: usize) -> String {
    use std::fmt::Write as _;
    let stats = snapshot();
    if stats.is_empty() {
        return "  compiled-circuit patterns: (none profiled — set QOBS=1)\n".to_string();
    }
    let mut out = String::from(
        "  compiled-circuit patterns (hottest first: executions × ops = op executions):\n",
    );
    for s in stats.iter().take(limit) {
        let _ = writeln!(
            out,
            "    {:<28} {:>4} gates -> {:>3} ops   {:>3} compiles   {:>8} execs   {:>10} op-execs",
            s.signature,
            s.source_gates,
            s.op_counts.total(),
            s.compiles,
            s.executions,
            s.op_executions.total()
        );
    }
    if stats.len() > limit {
        let _ = writeln!(out, "    ... and {} more patterns", stats.len() - limit);
    }
    out
}

/// Clear the table (test isolation; patterns re-register on the next compile).
pub fn reset() {
    table().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiling_registers_nothing() {
        // QOBS is unset in the test environment and this test never forces it on,
        // so registration is a no-op.  (Tests that force-enable live in the
        // workspace-level `tests` crate to avoid cross-test interference on the
        // process-wide flag.)
        assert!(register("uxu".chars(), 3, 5, OpKindCounts::default()).is_none());
    }
}
