//! Analytic hardware-noise models.
//!
//! The paper's noisy study (Section 8.7, Table 2) uses Qiskit's density-matrix simulator
//! with calibration data from five IBM backends, and the large-scale study (Section 8.4)
//! inserts a 1 % depolarizing layer after each circuit repetition.  Reproducing a full
//! density-matrix simulator would dominate runtime without changing the comparison, so we
//! model the dominant effect analytically:
//!
//! * a depolarizing channel of strength `p` applied to a qubit multiplies the expectation
//!   value of any non-identity Pauli on that qubit by `(1 − p)`;
//! * readout error `r` on a measured qubit multiplies `⟨Z⟩`-type expectations by
//!   `(1 − 2r)` per measured qubit.
//!
//! The per-term attenuation therefore depends on the gate counts of the executed circuit
//! and on the weight of the measured Pauli term.  This deforms and flattens the
//! optimization landscape for TreeVQA and the baseline alike — exactly the mechanism the
//! paper identifies for the (slight) reduction of TreeVQA's advantage under noise.

use qcircuit::Circuit;
use qop::{PauliOp, Statevector};
use serde::{Deserialize, Serialize};

/// Per-backend noise parameters (synthetic calibrations in the ballpark of the paper's
/// IBM devices).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Human-readable backend name.
    pub name: String,
    /// Depolarizing error probability per single-qubit gate.
    pub single_qubit_error: f64,
    /// Depolarizing error probability per two-qubit gate.
    pub two_qubit_error: f64,
    /// Readout (measurement) error probability per qubit.
    pub readout_error: f64,
    /// Additional depolarizing error applied per qubit per ansatz repetition
    /// (the "noise layer after each circuit repetition" of Section 8.4); usually 0.
    pub per_layer_error: f64,
}

impl NoiseModel {
    /// A noiseless model (all error rates zero).
    pub fn noiseless() -> Self {
        NoiseModel {
            name: "noiseless".to_string(),
            single_qubit_error: 0.0,
            two_qubit_error: 0.0,
            readout_error: 0.0,
            per_layer_error: 0.0,
        }
    }

    /// The depolarizing-layer model of the large-scale study: `rate` per qubit per circuit
    /// repetition, no gate or readout errors.
    pub fn depolarizing_layer(rate: f64) -> Self {
        NoiseModel {
            name: format!("depolarizing-layer-{rate}"),
            single_qubit_error: 0.0,
            two_qubit_error: 0.0,
            readout_error: 0.0,
            per_layer_error: rate,
        }
    }

    /// Synthetic calibration tables standing in for the paper's five IBM backends.
    ///
    /// The relative ordering (Cairo/Hanoi better than Kolkata/Auckland/Mumbai) follows the
    /// publicly reported calibration ballpark for those devices; exact numbers are not
    /// reproducible without IBM's historical calibration data, which is the documented
    /// substitution in DESIGN.md.
    pub fn synthetic_backends() -> Vec<NoiseModel> {
        let mk = |name: &str, p1: f64, p2: f64, ro: f64| NoiseModel {
            name: name.to_string(),
            single_qubit_error: p1,
            two_qubit_error: p2,
            readout_error: ro,
            per_layer_error: 0.0,
        };
        vec![
            mk("hanoi", 2.3e-4, 6.5e-3, 1.4e-2),
            mk("cairo", 2.0e-4, 6.0e-3, 1.2e-2),
            mk("mumbai", 3.5e-4, 9.0e-3, 2.3e-2),
            mk("kolkata", 3.0e-4, 8.5e-3, 1.8e-2),
            mk("auckland", 3.2e-4, 8.0e-3, 2.0e-2),
        ]
    }

    /// Looks up a synthetic backend by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<NoiseModel> {
        Self::synthetic_backends()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Returns `true` if every error rate is zero.
    pub fn is_noiseless(&self) -> bool {
        self.single_qubit_error == 0.0
            && self.two_qubit_error == 0.0
            && self.readout_error == 0.0
            && self.per_layer_error == 0.0
    }
}

/// Gate-count profile of a circuit, used to evaluate the analytic attenuation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CircuitNoiseProfile {
    /// Number of single-qubit gates.
    pub single_qubit_gates: usize,
    /// Number of two-or-more-qubit gates.
    pub two_qubit_gates: usize,
    /// Number of ansatz repetitions ("layers") for the per-layer depolarizing channel.
    pub layers: usize,
    /// Register size.
    pub num_qubits: usize,
}

impl CircuitNoiseProfile {
    /// Derives the gate counts from a circuit; `layers` must be supplied by the caller
    /// because the ansatz repetition count is not recoverable from the flat gate list.
    pub fn from_circuit(circuit: &Circuit, layers: usize) -> Self {
        let two = circuit.num_entangling_gates();
        CircuitNoiseProfile {
            single_qubit_gates: circuit.num_gates() - two,
            two_qubit_gates: two,
            layers,
            num_qubits: circuit.num_qubits(),
        }
    }
}

/// The attenuation factor applied to a Pauli term of weight `term_weight`.
///
/// Gate depolarization acts on the whole register, so it is charged per gate; readout and
/// per-layer depolarization act per measured/affected qubit, so they are charged per unit
/// of term weight.
pub fn attenuation_factor(
    model: &NoiseModel,
    profile: &CircuitNoiseProfile,
    term_weight: u32,
) -> f64 {
    if model.is_noiseless() || term_weight == 0 {
        return 1.0;
    }
    // Gate errors: each erroneous gate scrambles the propagated Pauli with probability ~p.
    // Distribute the damage over the register so that wider registers are (correctly) less
    // sensitive per term: effective exponent = gates * weight / n.
    let n = profile.num_qubits.max(1) as f64;
    let w = term_weight as f64;
    let single = (1.0 - model.single_qubit_error).powf(profile.single_qubit_gates as f64 * w / n);
    let double = (1.0 - model.two_qubit_error).powf(profile.two_qubit_gates as f64 * 2.0 * w / n);
    let readout = (1.0 - 2.0 * model.readout_error).max(0.0).powf(w);
    let layer = (1.0 - model.per_layer_error).powf(profile.layers as f64 * w);
    single * double * readout * layer
}

/// Exact (shot-noise-free) expectation value of `op` under the analytic noise model.
///
/// Each term's ideal expectation is attenuated by [`attenuation_factor`]; identity terms
/// are untouched.
pub fn noisy_expectation(
    op: &PauliOp,
    state: &Statevector,
    model: &NoiseModel,
    profile: &CircuitNoiseProfile,
) -> f64 {
    op.terms()
        .iter()
        .map(|t| {
            let exact = if t.string.is_identity() {
                1.0
            } else {
                PauliOp::string_expectation(&t.string, state)
            };
            t.coefficient * exact * attenuation_factor(model, profile, t.string.weight())
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_model_is_identity() {
        let model = NoiseModel::noiseless();
        let profile = CircuitNoiseProfile {
            single_qubit_gates: 100,
            two_qubit_gates: 40,
            layers: 5,
            num_qubits: 4,
        };
        assert_eq!(attenuation_factor(&model, &profile, 3), 1.0);
    }

    #[test]
    fn attenuation_decreases_with_gates_and_weight() {
        let model = NoiseModel::by_name("mumbai").unwrap();
        let small = CircuitNoiseProfile {
            single_qubit_gates: 10,
            two_qubit_gates: 4,
            layers: 2,
            num_qubits: 4,
        };
        let big = CircuitNoiseProfile {
            single_qubit_gates: 100,
            two_qubit_gates: 40,
            layers: 5,
            num_qubits: 4,
        };
        let a_small = attenuation_factor(&model, &small, 2);
        let a_big = attenuation_factor(&model, &big, 2);
        assert!(a_big < a_small);
        assert!(a_small <= 1.0 && a_big > 0.0);
        assert!(attenuation_factor(&model, &small, 4) < attenuation_factor(&model, &small, 1));
    }

    #[test]
    fn noisy_expectation_shrinks_toward_identity_offset() {
        let op = PauliOp::from_labels(2, &[("II", -1.0), ("ZZ", 0.8)]);
        let psi = Statevector::zero_state(2); // <ZZ> = 1 exactly
        let model = NoiseModel::by_name("kolkata").unwrap();
        let profile = CircuitNoiseProfile {
            single_qubit_gates: 30,
            two_qubit_gates: 10,
            layers: 2,
            num_qubits: 2,
        };
        let ideal = op.expectation(&psi); // -1.0 + 0.8 = -0.2
        let noisy = noisy_expectation(&op, &psi, &model, &profile);
        assert!(
            noisy < ideal,
            "attenuating the ZZ term pulls the value toward the identity offset (-1.0)"
        );
        assert!(noisy > -1.0, "but never past the identity offset");
    }

    #[test]
    fn synthetic_backend_roster_matches_table2() {
        let names: Vec<String> = NoiseModel::synthetic_backends()
            .into_iter()
            .map(|m| m.name)
            .collect();
        for expected in ["hanoi", "cairo", "mumbai", "kolkata", "auckland"] {
            assert!(names.contains(&expected.to_string()));
        }
        assert!(NoiseModel::by_name("HANOI").is_some());
        assert!(NoiseModel::by_name("unknown").is_none());
    }

    #[test]
    fn depolarizing_layer_model_only_uses_layers() {
        let model = NoiseModel::depolarizing_layer(0.01);
        let profile = CircuitNoiseProfile {
            single_qubit_gates: 1000,
            two_qubit_gates: 1000,
            layers: 3,
            num_qubits: 10,
        };
        let a = attenuation_factor(&model, &profile, 2);
        assert!((a - 0.99f64.powi(6)).abs() < 1e-12);
    }

    #[test]
    fn profile_from_circuit_counts_gates() {
        use qcircuit::{Entanglement, HardwareEfficientAnsatz};
        let circ = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular).build();
        let p = CircuitNoiseProfile::from_circuit(&circ, 2);
        assert_eq!(p.two_qubit_gates, 8);
        assert_eq!(p.single_qubit_gates, circ.num_gates() - 8);
        assert_eq!(p.num_qubits, 4);
    }
}
