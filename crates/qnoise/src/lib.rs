//! # qnoise — stochastic Pauli-channel noise simulation and error mitigation
//!
//! The reproduction's original noise story was purely analytic (`qsim::NoiseModel`
//! attenuates expectation values term by term).  This crate adds the *trajectory* story:
//! per-gate Pauli error channels simulated by **stochastic trajectory sampling on the
//! statevector** — never a density matrix.  Each trajectory is a seeded random Pauli
//! insertion stream replayed through a [`qsim::CompiledCircuit`], so the
//! compile-once/bind-many split is reused verbatim and K trajectories of one parameter
//! binding become one `vqa::Backend::evaluate_batch`-shaped workload that
//! data-parallelizes across scratch states (see `vqa::NoisyStatevectorBackend`).
//!
//! ## The pieces
//!
//! * [`PauliNoiseModel`] / [`PauliChannel`] — per-gate channels: depolarizing (1q and
//!   k-qubit uniform for entangling gates), dephasing, Pauli-twirled amplitude damping,
//!   plus a readout bit-flip model applied as per-term expectation attenuation.
//! * [`TrajectorySampler`] — binds a model to a compiled circuit's
//!   [`qsim::NoiseSite`] table once, then samples per-trajectory
//!   [`qsim::PauliInsertion`] schedules with no re-walk of the gate list.
//! * [`fold_gates`] / [`richardson_extrapolate`] — zero-noise extrapolation building
//!   blocks: local gate folding (`g ↦ g·g†·g`, odd scale factors) amplifies every noise
//!   site by exactly the scale factor, and a Richardson (Lagrange-at-zero) fit
//!   extrapolates measured expectations back to the zero-noise limit (see
//!   `vqa::ZneBackend` for the backend wrapper).
//!
//! ## Seeding contract
//!
//! Trajectory `i` of stream seed `s` is fully determined by `(s, i)` — independent of
//! batch size, chunk size (the `vqa` crate's `VQA_BATCH_CHUNK`), worker count, and of which other
//! trajectories are sampled: every trajectory draws from its own RNG seeded with
//! [`trajectory_seed`]`(s, i)`.  The draw stream *within* a trajectory consumes one
//! uniform per nonzero channel per noise site, in site order, so a schedule is also
//! independent of how many errors actually fire.  Changing the noise model (adding or
//! zeroing channels) changes the stream; changing only the parameter vector does not,
//! because insertion schedules never depend on `θ`.
//!
//! ## Knobs
//!
//! The trajectory count defaults to the `QNOISE_TRAJECTORIES` environment variable
//! (read once per process, default [`DEFAULT_TRAJECTORIES`]); see the workspace README's
//! "Tuning" section for how it interacts with `QSIM_PAR_THRESHOLD` and
//! `VQA_BATCH_CHUNK`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod model;
mod trajectory;
mod zne;

pub use model::{
    readout_attenuation, uniform_depolarizing_attenuation, PauliChannel, PauliNoiseModel,
};
pub use trajectory::{trajectory_seed, TrajectorySampler};
pub use zne::{fold_gates, fold_global, richardson_extrapolate, DEFAULT_ZNE_SCALES};

/// Default trajectory count when `QNOISE_TRAJECTORIES` is unset.
pub const DEFAULT_TRAJECTORIES: usize = 64;

/// The process-wide default trajectory count: the `QNOISE_TRAJECTORIES` environment
/// variable (read once, minimum 1), falling back to [`DEFAULT_TRAJECTORIES`].
pub fn default_trajectories() -> usize {
    use std::sync::OnceLock;
    static TRAJ: OnceLock<usize> = OnceLock::new();
    *TRAJ.get_or_init(|| {
        std::env::var("QNOISE_TRAJECTORIES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_TRAJECTORIES)
    })
}
