//! Seeded trajectory sampling over a compiled circuit's noise sites.
//!
//! A [`TrajectorySampler`] is built once per (compiled circuit, noise model) pair: it
//! flattens the model's channels over the circuit's [`qsim::NoiseSite`] table into a
//! list of elementary draws.  Sampling one trajectory then walks that list with a
//! trajectory-private RNG and emits the (sorted) [`qsim::PauliInsertion`] schedule to
//! replay through [`qsim::CompiledCircuit::execute_in_place_with_insertions`] — the
//! compiled gate list is never re-walked, and sampling cost is proportional to the gate
//! count, not the state dimension.

use crate::model::PauliNoiseModel;
use qop::{Pauli, PauliString};
use qsim::{CompiledCircuit, PauliInsertion};
use rand::Rng;

/// The RNG seed of trajectory `trajectory` under stream seed `seed`.
///
/// This is the crate's **seeding contract**: a trajectory's insertion schedule depends
/// only on `(seed, trajectory)` (plus the circuit and model it is sampled for) — never
/// on batch size, chunk size, worker count, or which other trajectories run.  Since the
/// workspace-wide counter-based RNG landed, this is exactly [`qrng::mix`] — the same
/// SplitMix64-finalizer block function every stochastic consumer keys its streams with —
/// so trajectory seeds recorded under the original contract are unchanged.
pub fn trajectory_seed(seed: u64, trajectory: u64) -> u64 {
    qrng::mix(seed, trajectory)
}

/// One elementary random draw of a trajectory, pre-resolved to its insertion point.
#[derive(Clone, Debug)]
enum ElemDraw {
    /// A single-qubit channel: cumulative thresholds over `[X, Y, Z]` (an error fires
    /// when the uniform draw lands below `cum[2]`).
    Single {
        after_op: usize,
        qubit: usize,
        cum: [f64; 3],
    },
    /// A `k`-qubit uniform depolarizing draw: with probability `p`, a uniformly random
    /// non-identity Pauli pattern over `qubits`.
    Uniform {
        after_op: usize,
        qubits: Vec<usize>,
        p: f64,
    },
}

/// A noise model bound to one compiled circuit, ready to sample insertion schedules.
#[derive(Clone, Debug)]
pub struct TrajectorySampler {
    draws: Vec<ElemDraw>,
    num_qubits: usize,
    /// Expected number of fired errors per trajectory (for diagnostics and benches).
    mean_errors: f64,
}

impl TrajectorySampler {
    /// Flattens `model`'s channels over `compiled`'s noise sites.
    ///
    /// Channels with zero total error probability are dropped here, so they neither
    /// consume RNG draws nor cost sampling time; consequently the draw stream (and the
    /// seeding contract) is defined over the model's *nonzero* channels in site order.
    ///
    /// # Panics
    ///
    /// Panics if any channel strength is outside `[0, 1]`.
    pub fn new(compiled: &CompiledCircuit, model: &PauliNoiseModel) -> Self {
        let mut draws = Vec::new();
        let mut mean_errors = 0.0;
        let push_single = |draws: &mut Vec<ElemDraw>,
                           mean_errors: &mut f64,
                           after_op: usize,
                           qubit: usize,
                           probs: [f64; 3]| {
            let total: f64 = probs.iter().sum();
            if total <= 0.0 {
                return;
            }
            let cum = [probs[0], probs[0] + probs[1], total];
            *mean_errors += total;
            draws.push(ElemDraw::Single {
                after_op,
                qubit,
                cum,
            });
        };
        // Validate up front (and once), so an invalid model is rejected even when the
        // circuit happens to contain no entangling gate.
        assert!(
            (0.0..=1.0).contains(&model.two_qubit_depolarizing),
            "two-qubit depolarizing strength outside [0, 1]"
        );
        for site in compiled.noise_sites() {
            if site.entangling {
                if model.two_qubit_depolarizing > 0.0 {
                    mean_errors += model.two_qubit_depolarizing;
                    draws.push(ElemDraw::Uniform {
                        after_op: site.op_index,
                        qubits: site.qubits.clone(),
                        p: model.two_qubit_depolarizing,
                    });
                }
                for channel in &model.two_qubit_local {
                    let probs = channel.probabilities();
                    for &q in &site.qubits {
                        push_single(&mut draws, &mut mean_errors, site.op_index, q, probs);
                    }
                }
            } else {
                for channel in &model.single_qubit {
                    let probs = channel.probabilities();
                    push_single(
                        &mut draws,
                        &mut mean_errors,
                        site.op_index,
                        site.qubits[0],
                        probs,
                    );
                }
            }
        }
        TrajectorySampler {
            draws,
            num_qubits: compiled.num_qubits(),
            mean_errors,
        }
    }

    /// Returns `true` if no draw can ever fire (every sampled schedule is empty).
    pub fn is_trivial(&self) -> bool {
        self.draws.is_empty()
    }

    /// Expected number of fired Pauli errors per trajectory.
    pub fn mean_errors_per_trajectory(&self) -> f64 {
        self.mean_errors
    }

    /// Samples the insertion schedule of trajectory `trajectory` under stream seed
    /// `seed` into `out` (cleared first), sorted by insertion point.
    pub fn sample_into(&self, seed: u64, trajectory: u64, out: &mut Vec<PauliInsertion>) {
        out.clear();
        if self.draws.is_empty() {
            return;
        }
        let mut rng = qrng::CounterRng::new(trajectory_seed(seed, trajectory));
        for draw in &self.draws {
            match draw {
                ElemDraw::Single {
                    after_op,
                    qubit,
                    cum,
                } => {
                    let u: f64 = rng.random();
                    if u < cum[2] {
                        let pauli = if u < cum[0] {
                            Pauli::X
                        } else if u < cum[1] {
                            Pauli::Y
                        } else {
                            Pauli::Z
                        };
                        out.push(PauliInsertion {
                            after_op: *after_op,
                            string: PauliString::single(self.num_qubits, *qubit, pauli),
                        });
                    }
                }
                ElemDraw::Uniform {
                    after_op,
                    qubits,
                    p,
                } => {
                    let u: f64 = rng.random();
                    if u < *p {
                        // Uniform over the 4^k − 1 non-identity patterns: indices
                        // 1..4^k, base-4 digits mapped to [I, X, Y, Z] per qubit.
                        let patterns = 1u64 << (2 * qubits.len() as u32);
                        let mut index = rng.random_range(1..patterns);
                        let mut string = PauliString::identity(self.num_qubits);
                        for &q in qubits {
                            let digit = index & 3;
                            index >>= 2;
                            let pauli = match digit {
                                0 => Pauli::I,
                                1 => Pauli::X,
                                2 => Pauli::Y,
                                _ => Pauli::Z,
                            };
                            string.set_pauli(q, pauli);
                        }
                        out.push(PauliInsertion {
                            after_op: *after_op,
                            string,
                        });
                    }
                }
            }
        }
        // Fusion can fold a later source gate into an earlier compiled op, so site op
        // indices are not necessarily monotonic; the executor requires sorted order.
        // The sort is stable: same-op errors keep their source-gate firing order.
        out.sort_by_key(|ins| ins.after_op);
    }

    /// Allocating convenience form of [`TrajectorySampler::sample_into`].
    pub fn sample(&self, seed: u64, trajectory: u64) -> Vec<PauliInsertion> {
        let mut out = Vec::new();
        self.sample_into(seed, trajectory, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PauliChannel;
    use qcircuit::{Angle, Circuit, Gate};

    fn demo_compiled() -> CompiledCircuit {
        let mut circ = Circuit::new(3);
        circ.push(Gate::H(0));
        circ.push(Gate::Rz(0, Angle::param(0)));
        circ.push(Gate::Cx(0, 1));
        circ.push(Gate::H(2));
        CompiledCircuit::compile(&circ)
    }

    #[test]
    fn zero_rate_model_samples_empty_schedules() {
        let compiled = demo_compiled();
        let sampler = TrajectorySampler::new(&compiled, &PauliNoiseModel::noiseless());
        assert!(sampler.is_trivial());
        assert_eq!(sampler.mean_errors_per_trajectory(), 0.0);
        for t in 0..16 {
            assert!(sampler.sample(42, t).is_empty());
        }
        // Explicit zero-strength channels are dropped identically.
        let zero = PauliNoiseModel::depolarizing(0.0, 0.0)
            .with_single_qubit_channel(PauliChannel::Dephasing(0.0));
        assert!(TrajectorySampler::new(&compiled, &zero).is_trivial());
    }

    #[test]
    fn schedules_are_reproducible_and_independent_of_order() {
        let compiled = demo_compiled();
        let model = PauliNoiseModel::ibm_like("t", 0.2, 0.4, 0.1, 0.0);
        let sampler = TrajectorySampler::new(&compiled, &model);
        assert!(!sampler.is_trivial());
        // Sample trajectories out of order and compare against in-order sampling.
        let backwards: Vec<_> = (0..8).rev().map(|t| sampler.sample(7, t)).collect();
        for (t, expected) in backwards.into_iter().rev().enumerate() {
            assert_eq!(sampler.sample(7, t as u64), expected, "trajectory {t}");
        }
        // Different stream seeds give different schedules somewhere.
        let differs = (0..8).any(|t| sampler.sample(7, t) != sampler.sample(8, t));
        assert!(differs);
    }

    #[test]
    fn schedules_are_sorted_and_reference_valid_ops() {
        let compiled = demo_compiled();
        let model = PauliNoiseModel::depolarizing(0.5, 0.9);
        let sampler = TrajectorySampler::new(&compiled, &model);
        for t in 0..32 {
            let schedule = sampler.sample(3, t);
            assert!(schedule.windows(2).all(|w| w[0].after_op <= w[1].after_op));
            assert!(schedule
                .iter()
                .all(|ins| ins.after_op < compiled.num_ops() && !ins.string.is_identity()));
        }
    }

    #[test]
    fn two_qubit_draws_cover_all_fifteen_patterns() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::Cx(0, 1));
        let compiled = CompiledCircuit::compile(&circ);
        let model = PauliNoiseModel::depolarizing(0.0, 1.0);
        let sampler = TrajectorySampler::new(&compiled, &model);
        let mut seen = std::collections::HashSet::new();
        for t in 0..4096 {
            let schedule = sampler.sample(11, t);
            assert_eq!(schedule.len(), 1, "p = 1 always fires");
            seen.insert(schedule[0].string.label());
        }
        assert_eq!(seen.len(), 15, "saw {seen:?}");
    }
}
