//! Zero-noise extrapolation building blocks: local gate folding and Richardson
//! extrapolation.
//!
//! ZNE runs the *same* circuit at artificially amplified noise levels and extrapolates
//! the measured expectation back to the zero-noise limit.  With per-gate noise channels
//! (this crate's model), **local folding** — replacing each gate `g` by
//! `g·(g†·g)^((c−1)/2)` for an odd scale factor `c` — multiplies every noise site's
//! error count by exactly `c` while leaving the ideal unitary unchanged, so the measured
//! expectation becomes a smooth function `E(c)` with `E(0)` the noiseless value.
//! Richardson extrapolation fits the unique degree-`(n−1)` polynomial through `n`
//! measured `(c, E(c))` points and evaluates it at `c = 0`.

use qcircuit::Circuit;

/// The default ZNE scale factors (the classic 1×/3×/5× folding ladder).
pub const DEFAULT_ZNE_SCALES: [usize; 3] = [1, 3, 5];

/// Locally folds every gate of `circuit`: `g ↦ g·(g†·g)^((scale−1)/2)`.
///
/// The result implements the same unitary (for every parameter binding — inverses negate
/// angle multipliers, so parameter slots are preserved), with `scale`× the gate count
/// and therefore `scale`× the noise sites under any per-gate channel model.  `scale = 1`
/// returns a plain clone.
///
/// # Panics
///
/// Panics if `scale` is even or zero (even factors cannot preserve the unitary).
pub fn fold_gates(circuit: &Circuit, scale: usize) -> Circuit {
    assert!(
        scale % 2 == 1,
        "gate-folding scale must be odd, got {scale}"
    );
    let mut folded = Circuit::new(circuit.num_qubits());
    for gate in circuit.gates() {
        folded.push(gate.clone());
        for _ in 0..scale / 2 {
            folded.push(gate.inverse());
            folded.push(gate.clone());
        }
    }
    folded
}

/// Globally folds the whole circuit: `C ↦ C·(C†·C)^((scale−1)/2)` via
/// [`Circuit::inverse`].
///
/// The standard alternative to [`fold_gates`]: same ideal unitary and same `scale`×
/// total noise-site count, but errors are amplified at the *circuit* level rather than
/// per gate, which changes how coherent (non-Pauli) error components scale.  For the
/// pure Pauli channels of this crate the two foldings have identical first-order
/// statistics; [`fold_gates`] is the default in `vqa::ZneBackend` because it keeps each
/// site's amplification exactly local.
///
/// # Panics
///
/// Panics if `scale` is even or zero.
pub fn fold_global(circuit: &Circuit, scale: usize) -> Circuit {
    assert!(
        scale % 2 == 1,
        "global-folding scale must be odd, got {scale}"
    );
    let mut folded = circuit.clone();
    let inverse = circuit.inverse();
    for _ in 0..scale / 2 {
        folded.extend(&inverse);
        folded.extend(circuit);
    }
    folded
}

/// Richardson extrapolation to zero: evaluates at `x = 0` the unique polynomial through
/// the `(scale, value)` points, via Lagrange weights `wᵢ = Π_{j≠i} xⱼ/(xⱼ − xᵢ)`.
///
/// With one point this degenerates to returning its value; with the default `[1, 3, 5]`
/// ladder it cancels the linear and quadratic noise terms.
///
/// # Panics
///
/// Panics if `points` is empty or two points share a scale.
pub fn richardson_extrapolate(points: &[(f64, f64)]) -> f64 {
    assert!(!points.is_empty(), "extrapolation needs at least one point");
    let mut total = 0.0;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(
                xi != xj,
                "duplicate extrapolation scale {xi} makes the fit singular"
            );
            weight *= xj / (xj - xi);
        }
        total += weight * yi;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Angle, Gate};
    use qop::Statevector;

    #[test]
    fn folding_preserves_the_unitary() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::Ry(0, Angle::param(0)));
        circ.push(Gate::Cx(0, 1));
        circ.push(Gate::S(1));
        let params = [0.83];
        let base = qsim::run_circuit(&circ, &params, &Statevector::zero_state(2));
        for scale in [1usize, 3, 5] {
            let folded = fold_gates(&circ, scale);
            assert_eq!(folded.num_gates(), scale * circ.num_gates());
            let out = qsim::run_circuit(&folded, &params, &Statevector::zero_state(2));
            let diff = out
                .to_amplitudes()
                .iter()
                .zip(base.to_amplitudes())
                .map(|(a, b)| (*a - b).norm())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "scale {scale}: {diff}");
        }
    }

    #[test]
    fn folding_multiplies_noise_sites() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::Cx(0, 1));
        let sites = |c: &Circuit| qsim::CompiledCircuit::compile(c).noise_sites().len();
        assert_eq!(sites(&fold_gates(&circ, 3)), 3 * sites(&circ));
        assert_eq!(sites(&fold_gates(&circ, 5)), 5 * sites(&circ));
    }

    #[test]
    #[should_panic]
    fn even_scale_panics() {
        fold_gates(&Circuit::new(1), 2);
    }

    #[test]
    fn global_folding_preserves_the_unitary_and_site_count() {
        let mut circ = Circuit::new(2);
        circ.push(Gate::H(0));
        circ.push(Gate::Rz(0, Angle::param(0)));
        circ.push(Gate::Cx(0, 1));
        let params = [0.61];
        let base = qsim::run_circuit(&circ, &params, &Statevector::zero_state(2));
        for scale in [1usize, 3, 5] {
            let folded = fold_global(&circ, scale);
            assert_eq!(folded.num_gates(), scale * circ.num_gates());
            let out = qsim::run_circuit(&folded, &params, &Statevector::zero_state(2));
            let diff = out
                .to_amplitudes()
                .iter()
                .zip(base.to_amplitudes())
                .map(|(a, b)| (*a - b).norm())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "global scale {scale}: {diff}");
        }
    }

    #[test]
    fn richardson_recovers_polynomials_exactly() {
        // y = 2 − 0.3c + 0.05c²: three points determine it; extrapolation yields y(0).
        let f = |c: f64| 2.0 - 0.3 * c + 0.05 * c * c;
        let points: Vec<(f64, f64)> = [1.0, 3.0, 5.0].iter().map(|&c| (c, f(c))).collect();
        assert!((richardson_extrapolate(&points) - 2.0).abs() < 1e-12);
        // One point: identity.
        assert_eq!(richardson_extrapolate(&[(1.0, 0.7)]), 0.7);
        // Two points: linear extrapolation.
        let lin: Vec<(f64, f64)> = [1.0, 3.0].iter().map(|&c| (c, 1.0 - 0.1 * c)).collect();
        assert!((richardson_extrapolate(&lin) - 1.0).abs() < 1e-12);
    }
}
