//! Per-gate Pauli error channels and the device-level noise model.
//!
//! Every channel here is a *Pauli channel*: with some probability an error drawn from
//! `{X, Y, Z}` (or a multi-qubit Pauli pattern) is applied after a gate.  Pauli channels
//! are exactly the class that stochastic statevector trajectories simulate without bias:
//! averaging trajectory expectations over the insertion distribution reproduces the
//! density-matrix channel exactly, and each channel's effect on a Pauli observable is a
//! closed-form attenuation factor (used by the convergence tests and documented per
//! channel below).

use qop::Pauli;
use serde::{Deserialize, Serialize};

/// One elementary single-qubit Pauli error channel attached to a gate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PauliChannel {
    /// Depolarizing channel of strength `p`: each of `X`, `Y`, `Z` with probability
    /// `p/3`.  Attenuates every non-identity Pauli observable by `1 − 4p/3`.
    Depolarizing(f64),
    /// Pure dephasing of strength `p`: `Z` with probability `p`.  Attenuates `X`/`Y`
    /// observables by `1 − 2p` and leaves `Z` untouched.
    Dephasing(f64),
    /// Pauli-twirled amplitude damping of strength `γ`: twirling the amplitude-damping
    /// channel (Kraus `K₀ = diag(1, √(1−γ))`, `K₁ = √γ·|0⟩⟨1|`) over the Pauli group
    /// yields `pX = pY = γ/4`, `pZ = (1 − √(1−γ))²/4`.  Attenuates `Z` by `1 − γ` (the
    /// damping part, without the non-Pauli `+γ` bias that twirling removes) and `X`/`Y`
    /// by `(1 + √(1−γ))²/4 + γ/4 − ...` — see [`PauliChannel::attenuation`] for the
    /// closed form actually used.
    AmplitudeDampingTwirled(f64),
}

impl PauliChannel {
    /// The `[pX, pY, pZ]` error probabilities of this channel.
    ///
    /// # Panics
    ///
    /// Panics if the channel strength is outside `[0, 1]`.
    pub fn probabilities(&self) -> [f64; 3] {
        let check = |p: f64| {
            assert!(
                (0.0..=1.0).contains(&p),
                "channel strength {p} outside [0, 1]"
            );
            p
        };
        match *self {
            PauliChannel::Depolarizing(p) => {
                let p = check(p);
                [p / 3.0, p / 3.0, p / 3.0]
            }
            PauliChannel::Dephasing(p) => [0.0, 0.0, check(p)],
            PauliChannel::AmplitudeDampingTwirled(gamma) => {
                let gamma = check(gamma);
                let pz = (1.0 - (1.0 - gamma).sqrt()).powi(2) / 4.0;
                [gamma / 4.0, gamma / 4.0, pz]
            }
        }
    }

    /// Total probability that *some* error fires.
    pub fn error_probability(&self) -> f64 {
        self.probabilities().iter().sum()
    }

    /// The exact factor by which this channel multiplies the expectation of a
    /// non-identity Pauli `observable` on the affected qubit:
    /// `1 − 2 · Σ_{E anticommuting with observable} p_E`.
    ///
    /// # Panics
    ///
    /// Panics if `observable` is the identity (identity expectations are never
    /// attenuated; callers special-case them).
    pub fn attenuation(&self, observable: Pauli) -> f64 {
        assert!(
            observable != Pauli::I,
            "identity observables are not attenuated"
        );
        let probs = self.probabilities();
        let mut anti = 0.0;
        for (error, p) in [Pauli::X, Pauli::Y, Pauli::Z].into_iter().zip(probs) {
            if !error.commutes_with(observable) {
                anti += p;
            }
        }
        1.0 - 2.0 * anti
    }
}

/// The attenuation a `k`-qubit uniform depolarizing channel of strength `p` (probability
/// `p` of a uniformly random non-identity Pauli pattern on the `k` qubits) applies to any
/// Pauli observable that is non-identity on at least one of the `k` qubits:
/// `1 − p · 4^k / (4^k − 1)`.
///
/// (Observables acting as identity on all `k` qubits are untouched.)
pub fn uniform_depolarizing_attenuation(p: f64, k: u32) -> f64 {
    let patterns = (4f64).powi(k as i32);
    1.0 - p * patterns / (patterns - 1.0)
}

/// The factor a readout bit-flip probability `r` per measured qubit applies to a Pauli
/// term of the given weight: `(1 − 2r)^weight`.
///
/// Terms with `X`/`Y` components are measured in rotated bases, so every non-identity
/// position of the term is charged one flip, regardless of axis.
pub fn readout_attenuation(r: f64, weight: u32) -> f64 {
    (1.0 - 2.0 * r).powi(weight as i32)
}

/// A device noise model over per-gate Pauli channels plus readout error.
///
/// Channels are charged per [`qsim::NoiseSite`]: every non-entangling source gate pays
/// each `single_qubit` channel on its qubit; every entangling gate pays the
/// `two_qubit_depolarizing` channel on its full qubit set (uniform over the non-identity
/// Pauli patterns) plus each `two_qubit_local` channel on every touched qubit.  Readout
/// error is not a gate channel: it attenuates measured expectations per term weight at
/// readout time ([`readout_attenuation`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PauliNoiseModel {
    /// Human-readable model name.
    pub name: String,
    /// Channels applied on the qubit of every non-entangling gate.
    pub single_qubit: Vec<PauliChannel>,
    /// Uniform depolarizing strength applied over the qubit set of every entangling
    /// gate (probability of a uniformly random non-identity Pauli pattern).
    pub two_qubit_depolarizing: f64,
    /// Channels applied on *each* qubit touched by an entangling gate.
    pub two_qubit_local: Vec<PauliChannel>,
    /// Readout bit-flip probability per measured qubit.
    pub readout_flip: f64,
}

impl PauliNoiseModel {
    /// A model with every rate zero (trajectories are exactly the ideal execution).
    pub fn noiseless() -> Self {
        PauliNoiseModel {
            name: "noiseless".to_string(),
            single_qubit: Vec::new(),
            two_qubit_depolarizing: 0.0,
            two_qubit_local: Vec::new(),
            readout_flip: 0.0,
        }
    }

    /// Plain gate depolarizing: strength `p1` per single-qubit gate, `p2` per entangling
    /// gate, no readout error.
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        PauliNoiseModel {
            name: format!("depolarizing-{p1}-{p2}"),
            single_qubit: vec![PauliChannel::Depolarizing(p1)],
            two_qubit_depolarizing: p2,
            two_qubit_local: Vec::new(),
            readout_flip: 0.0,
        }
    }

    /// A superconducting-device-flavoured model: gate depolarizing plus Pauli-twirled
    /// amplitude damping (`gamma` per gate, charged per touched qubit on entangling
    /// gates) and readout error.
    pub fn ibm_like(name: impl Into<String>, p1: f64, p2: f64, gamma: f64, readout: f64) -> Self {
        PauliNoiseModel {
            name: name.into(),
            single_qubit: vec![
                PauliChannel::Depolarizing(p1),
                PauliChannel::AmplitudeDampingTwirled(gamma),
            ],
            two_qubit_depolarizing: p2,
            two_qubit_local: vec![PauliChannel::AmplitudeDampingTwirled(gamma)],
            readout_flip: readout,
        }
    }

    /// Adds a channel to the single-qubit gate list (builder style).
    pub fn with_single_qubit_channel(mut self, channel: PauliChannel) -> Self {
        self.single_qubit.push(channel);
        self
    }

    /// Adds a per-touched-qubit channel to the entangling gate list (builder style).
    pub fn with_two_qubit_local(mut self, channel: PauliChannel) -> Self {
        self.two_qubit_local.push(channel);
        self
    }

    /// Sets the readout flip probability (builder style).
    pub fn with_readout(mut self, r: f64) -> Self {
        self.readout_flip = r;
        self
    }

    /// Returns `true` if every gate-channel rate is zero (readout may still be nonzero:
    /// it is applied analytically, not by trajectories).
    pub fn has_gate_noise(&self) -> bool {
        self.single_qubit
            .iter()
            .any(|c| c.error_probability() > 0.0)
            || self.two_qubit_depolarizing > 0.0
            || self
                .two_qubit_local
                .iter()
                .any(|c| c.error_probability() > 0.0)
    }

    /// Returns `true` if the model is a complete no-op (no gate noise and no readout
    /// error).
    pub fn is_noiseless(&self) -> bool {
        !self.has_gate_noise() && self.readout_flip == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depolarizing_attenuation_is_one_minus_four_thirds_p() {
        let ch = PauliChannel::Depolarizing(0.3);
        for obs in [Pauli::X, Pauli::Y, Pauli::Z] {
            assert!((ch.attenuation(obs) - (1.0 - 0.4 * 1.0)).abs() < 1e-15);
        }
    }

    #[test]
    fn dephasing_spares_z() {
        let ch = PauliChannel::Dephasing(0.2);
        assert!((ch.attenuation(Pauli::Z) - 1.0).abs() < 1e-15);
        assert!((ch.attenuation(Pauli::X) - 0.6).abs() < 1e-15);
        assert!((ch.attenuation(Pauli::Y) - 0.6).abs() < 1e-15);
    }

    #[test]
    fn twirled_amplitude_damping_probabilities_sum_and_damp_z_by_gamma() {
        let gamma = 0.37;
        let ch = PauliChannel::AmplitudeDampingTwirled(gamma);
        let [px, py, pz] = ch.probabilities();
        assert!((px - gamma / 4.0).abs() < 1e-15);
        assert!((py - gamma / 4.0).abs() < 1e-15);
        assert!(pz > 0.0 && pz < gamma);
        // ⟨Z⟩ is flipped by X and Y errors only: attenuation 1 − 2(γ/4 + γ/4) = 1 − γ.
        assert!((ch.attenuation(Pauli::Z) - (1.0 - gamma)).abs() < 1e-15);
    }

    #[test]
    fn uniform_depolarizing_matches_hand_count() {
        // For k = 2 and observable ZZ: of the 15 error patterns, 7 commute and 8
        // anticommute, so the factor is (1−p) + p(7−8)/15 = 1 − 16p/15.
        let p = 0.15;
        assert!((uniform_depolarizing_attenuation(p, 2) - (1.0 - 16.0 * p / 15.0)).abs() < 1e-15);
        assert!((uniform_depolarizing_attenuation(p, 1) - (1.0 - 4.0 * p / 3.0)).abs() < 1e-15);
    }

    #[test]
    fn readout_attenuation_per_weight() {
        assert!((readout_attenuation(0.02, 3) - 0.96f64.powi(3)).abs() < 1e-15);
        assert_eq!(readout_attenuation(0.0, 5), 1.0);
    }

    #[test]
    fn noiseless_and_flags() {
        assert!(PauliNoiseModel::noiseless().is_noiseless());
        assert!(!PauliNoiseModel::depolarizing(0.01, 0.05).is_noiseless());
        let readout_only = PauliNoiseModel::noiseless().with_readout(0.01);
        assert!(!readout_only.is_noiseless());
        assert!(!readout_only.has_gate_noise());
        assert!(PauliNoiseModel::ibm_like("x", 1e-4, 1e-3, 1e-3, 1e-2).has_gate_noise());
    }

    #[test]
    #[should_panic]
    fn out_of_range_strength_panics() {
        PauliChannel::Depolarizing(1.5).probabilities();
    }
}
