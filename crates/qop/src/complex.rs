//! Minimal complex-number arithmetic used throughout the workspace.
//!
//! The workspace deliberately avoids external numerics crates, so this module provides a
//! small, well-tested `Complex64` type with exactly the operations the simulators and the
//! Lanczos solver need: arithmetic, conjugation, magnitude, and polar construction.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use qop::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// let c = a * b;
/// assert!((c.re - 5.0).abs() < 1e-12);
/// assert!((c.im - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the squared magnitude `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `e^{i theta}` (a unit-modulus phase).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(0.5, 3.0);
        let s = a + b;
        assert!(close(s.re, 2.0) && close(s.im, 1.0));
        let d = a - b;
        assert!(close(d.re, 1.0) && close(d.im, -5.0));
    }

    #[test]
    fn multiplication_matches_manual_expansion() {
        let a = Complex64::new(2.0, 1.0);
        let b = Complex64::new(-1.0, 4.0);
        let p = a * b;
        // (2+i)(-1+4i) = -2 + 8i - i + 4i^2 = -6 + 7i
        assert!(close(p.re, -6.0) && close(p.im, 7.0));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex64::new(3.0, -2.5);
        let b = Complex64::new(1.25, 0.75);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert!(close(a.norm(), 5.0));
        assert!(close(a.norm_sqr(), 25.0));
        let c = a.conj();
        assert!(close(c.re, 3.0) && close(c.im, -4.0));
        let p = a * c;
        assert!(close(p.re, 25.0) && close(p.im, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!(close(z.norm(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            assert!(close(Complex64::cis(theta).norm(), 1.0));
        }
    }

    #[test]
    fn identities() {
        let z = Complex64::new(0.3, -0.9);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        let iz = z * Complex64::I;
        assert!(close(iz.re, 0.9) && close(iz.im, 0.3));
    }

    #[test]
    fn scalar_ops_and_sum() {
        let z = Complex64::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, -2.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, -2.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, -0.5));
        let total: Complex64 = vec![z, z, z].into_iter().sum();
        assert_eq!(total, Complex64::new(3.0, -3.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
