//! Weighted Pauli-sum operators (qubit Hamiltonians).
//!
//! [`PauliOp`] is the workspace's Hamiltonian representation: a real-weighted sum of
//! [`PauliString`]s, `H = Σ_k c_k P_k`.  All coefficients are real, which is sufficient
//! for Hermitian observables (every Hamiltonian in the paper).  Operations are
//! matrix-free: expectation values and operator application iterate over terms and basis
//! states rather than materializing the `2^n × 2^n` matrix.

use crate::complex::Complex64;
use crate::lanes::{i_power, parity_sign, SignTable, LANES, SIGN_BLOCK};
use crate::par::{self, SendPtr, MIN_PAR_INDICES};
use crate::pauli::PauliString;
use crate::statevector::Statevector;
use crate::with_lane_perm;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One term of a [`PauliOp`]: a real coefficient times a Pauli string.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PauliTerm {
    /// The Pauli string.
    pub string: PauliString,
    /// The real coefficient.
    pub coefficient: f64,
}

impl PauliTerm {
    /// Creates a new term.
    pub fn new(string: PauliString, coefficient: f64) -> Self {
        PauliTerm {
            string,
            coefficient,
        }
    }
}

/// A Hermitian operator expressed as a real-weighted sum of Pauli strings.
///
/// # Examples
///
/// Build the single-qubit Hamiltonian `H = 0.5·Z + 0.25·X` and evaluate it on `|0⟩`:
///
/// ```
/// use qop::{Pauli, PauliOp, PauliString, Statevector};
///
/// let mut h = PauliOp::zero(1);
/// h.add_term(PauliString::single(1, 0, Pauli::Z), 0.5);
/// h.add_term(PauliString::single(1, 0, Pauli::X), 0.25);
/// let psi = Statevector::zero_state(1);
/// assert!((h.expectation(&psi) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PauliOp {
    num_qubits: usize,
    terms: Vec<PauliTerm>,
}

impl PauliOp {
    /// Creates the zero operator on `num_qubits` qubits.
    pub fn zero(num_qubits: usize) -> Self {
        PauliOp {
            num_qubits,
            terms: Vec::new(),
        }
    }

    /// Creates `coefficient * Identity` on `num_qubits` qubits.
    pub fn identity(num_qubits: usize, coefficient: f64) -> Self {
        let mut op = Self::zero(num_qubits);
        op.add_term(PauliString::identity(num_qubits), coefficient);
        op
    }

    /// Creates an operator from `(label, coefficient)` pairs.
    ///
    /// Labels are dense Pauli labels with qubit 0 first, e.g. `"ZZI"`.
    ///
    /// # Panics
    ///
    /// Panics if any label fails to parse or has a length different from `num_qubits`.
    pub fn from_labels(num_qubits: usize, terms: &[(&str, f64)]) -> Self {
        let mut op = Self::zero(num_qubits);
        for (label, coeff) in terms {
            let s = PauliString::from_label(label)
                .unwrap_or_else(|| panic!("invalid Pauli label: {label}"));
            assert_eq!(
                s.num_qubits(),
                num_qubits,
                "label {label} does not match register size {num_qubits}"
            );
            op.add_term(s, *coeff);
        }
        op
    }

    /// Creates an operator from explicit terms (merging duplicates).
    pub fn from_terms(num_qubits: usize, terms: Vec<PauliTerm>) -> Self {
        let mut op = PauliOp { num_qubits, terms };
        op.simplify(0.0);
        op
    }

    /// Number of qubits this operator acts on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of stored terms.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Immutable view of the terms.
    #[inline]
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// Adds a term (duplicates are merged lazily by [`PauliOp::simplify`]).
    ///
    /// # Panics
    ///
    /// Panics if the string's register size differs from the operator's.
    pub fn add_term(&mut self, string: PauliString, coefficient: f64) {
        assert_eq!(
            string.num_qubits(),
            self.num_qubits,
            "term register size mismatch"
        );
        self.terms.push(PauliTerm::new(string, coefficient));
    }

    /// Merges duplicate strings and removes terms with `|coefficient| <= tolerance`.
    pub fn simplify(&mut self, tolerance: f64) {
        let mut merged: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for t in &self.terms {
            *merged
                .entry((t.string.x_mask(), t.string.z_mask()))
                .or_insert(0.0) += t.coefficient;
        }
        self.terms = merged
            .into_iter()
            .filter(|(_, c)| c.abs() > tolerance)
            .map(|((x, z), c)| PauliTerm::new(PauliString::from_masks(x, z, self.num_qubits), c))
            .collect();
    }

    /// Returns a simplified copy.
    pub fn simplified(&self, tolerance: f64) -> PauliOp {
        let mut c = self.clone();
        c.simplify(tolerance);
        c
    }

    /// The coefficient of the identity term (0.0 if absent).
    pub fn identity_coefficient(&self) -> f64 {
        self.terms
            .iter()
            .filter(|t| t.string.is_identity())
            .map(|t| t.coefficient)
            .sum()
    }

    /// The ℓ1 norm of the coefficient vector, `Σ_k |c_k|`.
    ///
    /// The paper uses this to bound the per-evaluation shot requirement
    /// (`N ≈ (Σ|c_k|)² / ε²`).
    pub fn l1_norm(&self) -> f64 {
        self.terms.iter().map(|t| t.coefficient.abs()).sum()
    }

    /// The ℓ2 norm of the coefficient vector.
    pub fn l2_norm(&self) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coefficient * t.coefficient)
            .sum::<f64>()
            .sqrt()
    }

    /// The ℓ1 distance between the coefficient vectors of two operators, after aligning
    /// their term sets (missing terms count as zero coefficients).
    ///
    /// This is the Hamiltonian-similarity metric of the paper (Section 5.2.4): it upper
    /// bounds the operator-norm difference `‖H_i − H_j‖_op`.
    ///
    /// # Panics
    ///
    /// Panics if the operators act on different register sizes.
    pub fn l1_distance(&self, other: &PauliOp) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "register size mismatch");
        let mut coeffs: BTreeMap<(u64, u64), (f64, f64)> = BTreeMap::new();
        for t in &self.terms {
            coeffs
                .entry((t.string.x_mask(), t.string.z_mask()))
                .or_insert((0.0, 0.0))
                .0 += t.coefficient;
        }
        for t in &other.terms {
            coeffs
                .entry((t.string.x_mask(), t.string.z_mask()))
                .or_insert((0.0, 0.0))
                .1 += t.coefficient;
        }
        coeffs.values().map(|(a, b)| (a - b).abs()).sum()
    }

    /// Scales every coefficient by `s`, in place.
    pub fn scale(&mut self, s: f64) {
        for t in &mut self.terms {
            t.coefficient *= s;
        }
    }

    /// Returns `self + other` (terms merged).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn add(&self, other: &PauliOp) -> PauliOp {
        assert_eq!(self.num_qubits, other.num_qubits, "register size mismatch");
        let mut terms = self.terms.clone();
        terms.extend_from_slice(&other.terms);
        PauliOp::from_terms(self.num_qubits, terms)
    }

    /// Returns the uniform mixture `(Σ_i ops[i]) / N` of a non-empty set of operators —
    /// the paper's *mixed Hamiltonian* (Section 5.2.1).  Terms missing from individual
    /// operators are implicitly padded with zero coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or the register sizes differ.
    pub fn mixed(ops: &[&PauliOp]) -> PauliOp {
        assert!(!ops.is_empty(), "cannot mix zero Hamiltonians");
        let n = ops[0].num_qubits;
        let mut acc = PauliOp::zero(n);
        for op in ops {
            acc = acc.add(op);
        }
        acc.scale(1.0 / ops.len() as f64);
        acc.simplify(0.0);
        acc
    }

    /// Returns the superset of Pauli strings appearing in any of `ops`, in a canonical
    /// (sorted) order.  This is the *term padding* step of Section 5.2.1: every member
    /// Hamiltonian of a cluster is expressed over this superset, padding missing
    /// coefficients with zero.
    pub fn term_superset(ops: &[&PauliOp]) -> Vec<PauliString> {
        let mut set: BTreeMap<(u64, u64), PauliString> = BTreeMap::new();
        for op in ops {
            for t in &op.terms {
                set.insert((t.string.x_mask(), t.string.z_mask()), t.string);
            }
        }
        set.into_values().collect()
    }

    /// Returns this operator's coefficient vector over an explicit term ordering
    /// (typically produced by [`PauliOp::term_superset`]); missing terms give zero.
    pub fn coefficients_over(&self, superset: &[PauliString]) -> Vec<f64> {
        let mut map: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for t in &self.terms {
            *map.entry((t.string.x_mask(), t.string.z_mask()))
                .or_insert(0.0) += t.coefficient;
        }
        superset
            .iter()
            .map(|s| *map.get(&(s.x_mask(), s.z_mask())).unwrap_or(&0.0))
            .collect()
    }

    /// Applies the operator to a statevector: returns `H|ψ⟩`.
    ///
    /// Matrix-free: cost is `O(num_terms × 2^n)`.
    ///
    /// # Panics
    ///
    /// Panics if the statevector register size differs.
    pub fn apply(&self, psi: &Statevector) -> Statevector {
        let mut out = psi.zeros_like();
        self.apply_into(psi, &mut out);
        out
    }

    /// Writes `H|ψ⟩` into `out`, reusing its allocation (any previous contents are
    /// overwritten).
    ///
    /// The kernel runs in *gather* form: `out[b] = Σ_k c_k · phase_k(b ^ x_k) · ψ[b ^ x_k]`,
    /// so every output amplitude is owned by exactly one loop iteration.  That makes each
    /// output index independent — the loop is branch-free and parallelizes over output
    /// chunks for registers at or above [`crate::parallel_threshold`] amplitudes — and all
    /// terms are accumulated in one pass over the state, instead of one scatter pass per
    /// term.  Per-term phases are hoisted as `coeff · i^num_y`, leaving only a parity
    /// sign per (term, index) in the split-lane inner loop.
    ///
    /// # Panics
    ///
    /// Panics if either register size differs from the operator's.
    pub fn apply_into(&self, psi: &Statevector, out: &mut Statevector) {
        assert_eq!(psi.num_qubits(), self.num_qubits, "register size mismatch");
        assert_eq!(
            out.num_qubits(),
            self.num_qubits,
            "output register size mismatch"
        );
        let dim = psi.dim();
        // Per-term constants, hoisted out of the amplitude loop: `(x, z, cg)` with
        // `cg = coeff · i^num_y` (the index-independent part of the phase).
        let prepared: Vec<(usize, u64, Complex64)> = self
            .terms
            .iter()
            .map(|t| {
                let x = t.string.x_mask();
                let z = t.string.z_mask();
                let g = i_power((x & z).count_ones());
                (x as usize, z, g.scale(t.coefficient))
            })
            .collect();
        let (pre, pim) = psi.lanes();
        let gather = |b: usize| -> Complex64 {
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            for &(x, z, cg) in &prepared {
                let src = b ^ x;
                // P|src⟩ = i^num_y · (-1)^popcount(src & z) · |b⟩.
                let s = parity_sign(src as u64 & z);
                let (r, i) = (pre[src], pim[src]);
                acc_re += s * (cg.re * r - cg.im * i);
                acc_im += s * (cg.re * i + cg.im * r);
            }
            Complex64::new(acc_re, acc_im)
        };
        let (ore, oim) = out.lanes_mut();
        if par::use_parallel(dim * self.terms.len().max(1)) {
            let rptr = SendPtr(ore.as_mut_ptr());
            let iptr = SendPtr(oim.as_mut_ptr());
            (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .for_each(|b| {
                    let v = gather(b);
                    // SAFETY: each output index is written by exactly one worker.
                    unsafe {
                        *rptr.add(b) = v.re;
                        *iptr.add(b) = v.im;
                    }
                });
        } else {
            for (b, (r, i)) in ore.iter_mut().zip(oim.iter_mut()).enumerate() {
                let v = gather(b);
                *r = v.re;
                *i = v.im;
            }
        }
    }

    /// The expectation value `⟨ψ|H|ψ⟩` (exact, no shot noise).
    ///
    /// Parallelizes over Hamiltonian terms when `num_terms × 2^n` crosses
    /// [`crate::parallel_threshold`]; each term uses the branch-free single-string kernel
    /// with a diagonal fast path (see [`PauliOp::string_expectation`]).
    ///
    /// # Panics
    ///
    /// Panics if the statevector register size differs.
    pub fn expectation(&self, psi: &Statevector) -> f64 {
        let nterms = self.terms.len();
        if nterms == 0 {
            return 0.0;
        }
        if nterms == 1 {
            // Single term: parallelize over amplitudes instead of terms.
            let t = &self.terms[0];
            return t.coefficient * Self::string_expectation(&t.string, psi);
        }
        if par::use_parallel(nterms * psi.dim()) {
            return (0..nterms)
                .into_par_iter()
                .map(|i| {
                    let t = &self.terms[i];
                    t.coefficient * string_expectation_serial(&t.string, psi)
                })
                .sum();
        }
        self.terms
            .iter()
            .map(|t| t.coefficient * string_expectation_serial(&t.string, psi))
            .sum()
    }

    /// The exact expectation value `⟨ψ|P|ψ⟩` of a single Pauli string.
    ///
    /// Two branch-free paths: diagonal strings (`x_mask == 0`) reduce to
    /// `Σ_b |ψ_b|² · (-1)^popcount(b & z_mask)`, and general strings accumulate
    /// `Re⟨ψ_{b⊕x}| i^{n_Y} (-1)^popcount(b & z) |ψ_b⟩` pairwise.  Large registers are
    /// split into per-thread chunks (deterministic reduction order for a fixed thread
    /// count).
    pub fn string_expectation(string: &PauliString, psi: &Statevector) -> f64 {
        let dim = psi.dim();
        if par::use_parallel(dim) {
            let x = string.x_mask() as usize;
            let z = string.z_mask();
            let (re, im) = psi.lanes();
            if x == 0 {
                return (0..dim)
                    .into_par_iter()
                    .with_min_len(MIN_PAR_INDICES)
                    .map(|b| parity_sign(b as u64 & z) * (re[b] * re[b] + im[b] * im[b]))
                    .sum();
            }
            let g = i_power((string.x_mask() & z).count_ones());
            return (0..dim)
                .into_par_iter()
                .with_min_len(MIN_PAR_INDICES)
                .map(|b| {
                    // Re(conj(ψ_{b⊕x}) · i^num_y · sgn · ψ_b), with the pair walked from
                    // both sides (each pair contributes twice, matching the serial 2×).
                    let s = parity_sign(b as u64 & z);
                    let p = b ^ x;
                    let d = re[p] * re[b] + im[p] * im[b];
                    let e = re[p] * im[b] - im[p] * re[b];
                    s * (g.re * d - g.im * e)
                })
                .sum();
        }
        string_expectation_serial(string, psi)
    }

    /// The original scalar expectation kernel (scan + `apply_to_basis` + zero-amplitude
    /// test) on interleaved amplitudes, retained as the correctness baseline for property
    /// tests and benches.  Converts out of the split-lane storage at entry; benches that
    /// time the naive algorithm itself should pre-convert and call
    /// [`PauliOp::string_expectation_naive_amps`].
    pub fn string_expectation_naive(string: &PauliString, psi: &Statevector) -> f64 {
        Self::string_expectation_naive_amps(string, &psi.to_amplitudes())
    }

    /// [`PauliOp::string_expectation_naive`] on a raw interleaved amplitude buffer.
    pub fn string_expectation_naive_amps(string: &PauliString, amps: &[Complex64]) -> f64 {
        let mut acc = Complex64::ZERO;
        for b in 0..amps.len() as u64 {
            let a = amps[b as usize];
            if a == Complex64::ZERO {
                continue;
            }
            let (b2, phase) = string.apply_to_basis(b);
            acc += amps[b2 as usize].conj() * phase * a;
        }
        acc.re
    }

    /// Returns the expectation value of every term individually (used by the
    /// post-processing step, which recombines logged per-term expectations with
    /// different coefficient vectors at zero quantum cost).
    pub fn term_expectations(&self, psi: &Statevector) -> Vec<f64> {
        let nterms = self.terms.len();
        if nterms == 1 {
            // Single term: parallelize over amplitudes instead of terms.
            return vec![Self::string_expectation(&self.terms[0].string, psi)];
        }
        if par::use_parallel(nterms * psi.dim()) {
            return (0..nterms)
                .into_par_iter()
                .map(|i| string_expectation_serial(&self.terms[i].string, psi))
                .collect();
        }
        self.terms
            .iter()
            .map(|t| string_expectation_serial(&t.string, psi))
            .collect()
    }

    /// Builds the dense matrix of the operator (row-major, dimension `2^n`).
    ///
    /// Only intended for tests and very small systems.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 12`.
    pub fn to_dense(&self) -> Vec<Vec<Complex64>> {
        assert!(self.num_qubits <= 12, "dense matrices limited to 12 qubits");
        let dim = 1usize << self.num_qubits;
        let mut m = vec![vec![Complex64::ZERO; dim]; dim];
        for term in &self.terms {
            for col in 0..dim as u64 {
                let (row, phase) = term.string.apply_to_basis(col);
                m[row as usize][col as usize] += phase * term.coefficient;
            }
        }
        m
    }

    /// Extends the operator onto a larger register (new qubits act as identity).
    ///
    /// # Panics
    ///
    /// Panics if `new_num_qubits < num_qubits()`.
    pub fn extended(&self, new_num_qubits: usize) -> PauliOp {
        let terms = self
            .terms
            .iter()
            .map(|t| PauliTerm::new(t.string.extended(new_num_qubits), t.coefficient))
            .collect();
        PauliOp {
            num_qubits: new_num_qubits,
            terms,
        }
    }
}

/// Serial branch-free single-string expectation with the diagonal fast path, in
/// split-lane (SoA) form with explicitly 4-wide-chunked inner loops.
///
/// Off-diagonal strings use the involution-pair identity: the `b` and `b ^ x_mask`
/// contributions are complex conjugates, so the sum over each pair is
/// `2·Re(conj(ψ_{b1}) · phase0 · ψ_{b0})` — half the index math and loads of the full
/// scan.  The phase is factored as the hoisted constant `i^num_y` times a parity sign
/// served by a [`SignTable`], so the inner loop is pure contiguous FMA work.
fn string_expectation_serial(string: &PauliString, psi: &Statevector) -> f64 {
    let (re, im) = psi.lanes();
    let x = string.x_mask() as usize;
    let z = string.z_mask();
    if x == 0 {
        return diag_expectation_serial(re, im, z);
    }
    pair_expectation_serial(re, im, x, z)
}

/// `⟨P⟩ = Σ_b |ψ_b|² · (-1)^popcount(b & z)` for diagonal strings: the sign factors
/// through a 256-entry low table (contiguous multiplier stream) with the high-bit sign
/// hoisted per block.
fn diag_expectation_serial(re: &[f64], im: &[f64], z: u64) -> f64 {
    let dim = re.len();
    if dim < SIGN_BLOCK {
        // Below one table block, even the capped table fill (the 2 KiB array init) is
        // larger than the kernel's own work; a direct parity loop wins.
        let mut acc = 0.0;
        for (b, (r, i)) in re.iter().zip(im).enumerate() {
            acc += parity_sign(b as u64 & z) * (r * r + i * i);
        }
        return acc;
    }
    let table = SignTable::new(z, dim);
    let mut acc = [0.0f64; LANES];
    let mut b = 0usize;
    while b < dim {
        let end = dim.min(b + SIGN_BLOCK);
        let hs = table.block_sign(b as u64);
        let low = &table.low()[..end - b];
        let (r, i) = (&re[b..end], &im[b..end]);
        let mut rc = r.chunks_exact(LANES);
        let mut ic = i.chunks_exact(LANES);
        let mut lc = low.chunks_exact(LANES);
        for ((r4, i4), l4) in (&mut rc).zip(&mut ic).zip(&mut lc) {
            for j in 0..LANES {
                acc[j] += hs * l4[j] * (r4[j] * r4[j] + i4[j] * i4[j]);
            }
        }
        // Scalar tail (registers with fewer than 4 amplitudes).
        for ((r1, i1), l1) in rc
            .remainder()
            .iter()
            .zip(ic.remainder())
            .zip(lc.remainder())
        {
            acc[0] += hs * l1 * (r1 * r1 + i1 * i1);
        }
        b = end;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Pairwise serial expectation of an off-diagonal string over split lanes.
///
/// Walks blocks of `2^(pivot+1)` amplitudes with `i0 = base + off` (pivot bit clear) and
/// `i1 = base + 2^pivot + (off ^ xl)`; within an aligned 4-chunk the partner lane is a
/// constant shuffle by `xl & 3` (monomorphized via [`with_lane_perm!`]).
fn pair_expectation_serial(re: &[f64], im: &[f64], x: usize, z: u64) -> f64 {
    let dim = re.len();
    let g = i_power((x as u64 & z).count_ones());
    let pivot = (63 - (x as u64).leading_zeros()) as usize;
    let pbit = 1usize << pivot;
    let xl = x & (pbit - 1);
    if dim < SIGN_BLOCK {
        // Tiny registers: the table fill would dominate; walk the pairs with direct
        // parity signs instead.
        let mut acc = 0.0;
        let mut base = 0usize;
        while base < dim {
            for off in 0..pbit {
                let i0 = base + off;
                let i1 = base + pbit + (off ^ xl);
                let s = parity_sign(i0 as u64 & z);
                let d = re[i1] * re[i0] + im[i1] * im[i0];
                let e = re[i1] * im[i0] - im[i1] * re[i0];
                acc += s * (g.re * d - g.im * e);
            }
            base += pbit << 1;
        }
        return 2.0 * acc;
    }
    let z_low = z & (pbit as u64 - 1);
    let table = SignTable::new(z_low, pbit);
    let mut acc = [0.0f64; LANES];
    let mut base = 0usize;
    while base < dim {
        // Sign of the block base (bits above the pivot), hoisted for the whole block.
        let base_sign = parity_sign(base as u64 & z);
        let (r_lo, r_hi) = re[base..base + (pbit << 1)].split_at(pbit);
        let (i_lo, i_hi) = im[base..base + (pbit << 1)].split_at(pbit);
        if pbit >= LANES {
            let xlh = xl & !(LANES - 1);
            // Explicit 4-wide chunks staged through fixed-size `[f64; 4]` windows (the
            // shape the vectorizer turns into 4-lane register blocks); the `off ^ xl`
            // partner permutation is a compile-time shuffle per `with_lane_perm!` arm.
            macro_rules! body {
                ($m:literal) => {{
                    let mut ob = 0usize;
                    while ob < pbit {
                        let oe = pbit.min(ob + SIGN_BLOCK);
                        let mid = base_sign * table.block_sign(ob as u64);
                        let mut off = ob;
                        while off < oe {
                            // off/pb are 4-aligned and < pbit (the half-slice length);
                            // lo8 is 4-aligned and < 256, so every window is in bounds
                            // and the try_into calls cannot fail.
                            let pb = off ^ xlh;
                            let lo8 = off & (SIGN_BLOCK - 1);
                            let sg: &[f64; LANES] =
                                (&table.low()[lo8..lo8 + LANES]).try_into().unwrap();
                            let rl: &[f64; LANES] = (&r_lo[off..off + LANES]).try_into().unwrap();
                            let il: &[f64; LANES] = (&i_lo[off..off + LANES]).try_into().unwrap();
                            let rh: &[f64; LANES] = (&r_hi[pb..pb + LANES]).try_into().unwrap();
                            let ih: &[f64; LANES] = (&i_hi[pb..pb + LANES]).try_into().unwrap();
                            for j in 0..LANES {
                                let s = mid * sg[j];
                                let (r0, i0) = (rl[j], il[j]);
                                let (r1, i1) = (rh[j ^ $m], ih[j ^ $m]);
                                let d = r1 * r0 + i1 * i0;
                                let e = r1 * i0 - i1 * r0;
                                acc[j] += s * (g.re * d - g.im * e);
                            }
                            off += LANES;
                        }
                        ob = oe;
                    }
                }};
            }
            with_lane_perm!(xl & (LANES - 1), body);
        } else {
            // Scalar tail: pivot < 2 leaves half-blocks narrower than one lane chunk.
            for off in 0..pbit {
                let s = base_sign * table.lane(off);
                let partner = off ^ xl;
                let (r0, i0) = (r_lo[off], i_lo[off]);
                let (r1, i1) = (r_hi[partner], i_hi[partner]);
                let d = r1 * r0 + i1 * i0;
                let e = r1 * i0 - i1 * r0;
                acc[0] += s * (g.re * d - g.im * e);
            }
        }
        base += pbit << 1;
    }
    2.0 * ((acc[0] + acc[1]) + (acc[2] + acc[3]))
}

impl fmt::Display for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|t| format!("{:+.6}·{}", t.coefficient, t.string))
            .collect();
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::Pauli;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn expectation_of_z_on_basis_states() {
        let h = PauliOp::from_labels(1, &[("Z", 1.0)]);
        assert!(close(h.expectation(&Statevector::basis_state(1, 0)), 1.0));
        assert!(close(h.expectation(&Statevector::basis_state(1, 1)), -1.0));
    }

    #[test]
    fn expectation_of_x_on_plus_state() {
        let h = PauliOp::from_labels(1, &[("X", 1.0)]);
        let plus = Statevector::uniform_superposition(1);
        assert!(close(h.expectation(&plus), 1.0));
        let zero = Statevector::zero_state(1);
        assert!(close(h.expectation(&zero), 0.0));
    }

    #[test]
    fn simplify_merges_and_drops() {
        let mut h = PauliOp::zero(2);
        h.add_term(PauliString::from_label("ZZ").unwrap(), 0.5);
        h.add_term(PauliString::from_label("ZZ").unwrap(), 0.5);
        h.add_term(PauliString::from_label("XX").unwrap(), 1e-15);
        h.simplify(1e-12);
        assert_eq!(h.num_terms(), 1);
        assert!(close(h.terms()[0].coefficient, 1.0));
    }

    #[test]
    fn l1_distance_pads_missing_terms() {
        let a = PauliOp::from_labels(2, &[("ZZ", 1.0), ("XI", 0.5)]);
        let b = PauliOp::from_labels(2, &[("ZZ", 0.8), ("IY", 0.1)]);
        // |1.0-0.8| + |0.5-0| + |0-0.1| = 0.8
        assert!(close(a.l1_distance(&b), 0.8));
        assert!(close(a.l1_distance(&a), 0.0));
        // Symmetry
        assert!(close(a.l1_distance(&b), b.l1_distance(&a)));
    }

    #[test]
    fn mixed_hamiltonian_averages_coefficients() {
        let a = PauliOp::from_labels(1, &[("Z", 1.0)]);
        let b = PauliOp::from_labels(1, &[("Z", 0.0), ("X", 1.0)]);
        let m = PauliOp::mixed(&[&a, &b]);
        let superset = PauliOp::term_superset(&[&a, &b]);
        let coeffs = m.coefficients_over(&superset);
        // Z coefficient averages to 0.5, X to 0.5.
        assert_eq!(superset.len(), 2);
        assert!(coeffs.iter().all(|c| close(*c, 0.5)));
    }

    #[test]
    fn mixed_expectation_is_mean_of_member_expectations() {
        let a = PauliOp::from_labels(2, &[("ZI", 1.0), ("XX", 0.3)]);
        let b = PauliOp::from_labels(2, &[("ZI", 0.2), ("YY", -0.4)]);
        let m = PauliOp::mixed(&[&a, &b]);
        let psi = Statevector::uniform_superposition(2);
        let avg = 0.5 * (a.expectation(&psi) + b.expectation(&psi));
        assert!(close(m.expectation(&psi), avg));
    }

    #[test]
    fn apply_matches_expectation() {
        let h = PauliOp::from_labels(2, &[("ZZ", 0.7), ("XI", -0.2), ("YY", 0.4)]);
        let psi = Statevector::uniform_superposition(2);
        let hpsi = h.apply(&psi);
        let via_apply = psi.inner(&hpsi).re;
        assert!(close(via_apply, h.expectation(&psi)));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dense_matrix_is_hermitian_and_matches_expectation() {
        let h = PauliOp::from_labels(2, &[("ZZ", 0.7), ("XY", -0.2), ("IX", 0.4)]);
        let m = h.to_dense();
        let dim = 4;
        for r in 0..dim {
            for c in 0..dim {
                let a = m[r][c];
                let b = m[c][r].conj();
                assert!(close(a.re, b.re) && close(a.im, b.im));
            }
        }
        // <+|H|+> from the dense matrix.
        let psi = Statevector::uniform_superposition(2);
        let mut acc = Complex64::ZERO;
        for r in 0..dim {
            for c in 0..dim {
                acc += psi.amplitude(r as u64).conj() * m[r][c] * psi.amplitude(c as u64);
            }
        }
        assert!(close(acc.re, h.expectation(&psi)));
    }

    #[test]
    fn identity_coefficient_and_norms() {
        let h = PauliOp::from_labels(2, &[("II", -1.5), ("ZZ", 0.5), ("XX", -0.5)]);
        assert!(close(h.identity_coefficient(), -1.5));
        assert!(close(h.l1_norm(), 2.5));
        assert!(close(h.l2_norm(), (1.5f64 * 1.5 + 0.25 + 0.25).sqrt()));
    }

    #[test]
    fn term_expectations_recombine() {
        let h = PauliOp::from_labels(2, &[("ZZ", 0.7), ("XX", -0.2)]);
        let psi = Statevector::uniform_superposition(2);
        let per_term = h.term_expectations(&psi);
        let recombined: f64 = h
            .terms()
            .iter()
            .zip(per_term.iter())
            .map(|(t, e)| t.coefficient * e)
            .sum();
        assert!(close(recombined, h.expectation(&psi)));
    }

    #[test]
    fn extended_operator_acts_as_identity_on_new_qubits() {
        let h = PauliOp::from_labels(1, &[("Z", 1.0)]);
        let h2 = h.extended(2);
        assert_eq!(h2.num_qubits(), 2);
        let psi = Statevector::basis_state(2, 0b10); // qubit0=0, qubit1=1
        assert!(close(h2.expectation(&psi), 1.0));
    }

    #[test]
    fn fast_expectation_matches_naive_kernel() {
        // A dense state with structure on every amplitude, so phase errors cannot hide.
        let n = 6;
        let dim = 1usize << n;
        let mut psi = Statevector::from_amplitudes(
            (0..dim)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect(),
        );
        psi.normalize();
        let h = PauliOp::from_labels(
            n,
            &[
                ("ZZIIZZ", 0.7),
                ("XIYIZX", -0.2),
                ("YYYYYY", 0.4),
                ("IIXXII", -0.9),
                ("ZIIIII", 1.3),
                ("IIIIII", -0.5),
            ],
        );
        let via_naive: f64 = h
            .terms()
            .iter()
            .map(|t| t.coefficient * PauliOp::string_expectation_naive(&t.string, &psi))
            .sum();
        assert!(close(h.expectation(&psi), via_naive));
        for t in h.terms() {
            assert!(close(
                PauliOp::string_expectation(&t.string, &psi),
                PauliOp::string_expectation_naive(&t.string, &psi)
            ));
        }
    }

    #[test]
    fn apply_into_matches_naive_scatter_and_reuses_buffer() {
        let n = 5;
        let dim = 1usize << n;
        let mut psi = Statevector::from_amplitudes(
            (0..dim)
                .map(|i| Complex64::new((i as f64 * 0.23).cos(), (i as f64 * 0.41).sin()))
                .collect(),
        );
        psi.normalize();
        let h = PauliOp::from_labels(n, &[("ZZXIY", 0.6), ("IXIXI", -0.3), ("YIZIZ", 0.9)]);
        // Naive scatter using apply_to_basis, the original implementation.
        let mut expected = psi.zeros_like();
        for term in h.terms() {
            for b in 0..dim as u64 {
                let (b2, phase) = term.string.apply_to_basis(b);
                let contribution = phase * psi.amplitude(b) * term.coefficient;
                expected.set_amplitude(b2, expected.amplitude(b2) + contribution);
            }
        }
        let mut out = psi.zeros_like();
        let buffer = out.re().as_ptr();
        h.apply_into(&psi, &mut out);
        assert_eq!(buffer, out.re().as_ptr(), "apply_into reallocated");
        for b in 0..dim as u64 {
            let d = expected.amplitude(b) - out.amplitude(b);
            assert!(d.norm() < 1e-10, "mismatch at {b}");
        }
    }

    #[test]
    fn from_labels_builds_expected_terms() {
        let h = PauliOp::from_labels(3, &[("ZIZ", 0.25)]);
        assert_eq!(h.num_terms(), 1);
        assert_eq!(h.terms()[0].string.pauli_at(0), Pauli::Z);
        assert_eq!(h.terms()[0].string.pauli_at(1), Pauli::I);
        assert_eq!(h.terms()[0].string.pauli_at(2), Pauli::Z);
    }
}
