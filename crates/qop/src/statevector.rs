//! Dense statevector storage and basic vector operations.
//!
//! The gate-level simulator lives in the `qsim` crate; this module only provides the
//! underlying data structure plus the linear-algebra primitives that both the simulator
//! and the Lanczos ground-state solver need (inner products, norms, overlaps, sampling
//! probabilities).
//!
//! # Storage layout: split re/im lanes (structure of arrays)
//!
//! Amplitudes are stored as two parallel `Vec<f64>` lanes — all real parts in
//! [`Statevector::re`], all imaginary parts in [`Statevector::im`] — rather than as an
//! interleaved `Vec<Complex64>`.  Every dense kernel is a butterfly or reduction over
//! f64 pairs, and with interleaved storage the compiler must shuffle re/im components
//! in and out of vector registers on every operation, which defeats autovectorization.
//! With split lanes the inner loops read and write contiguous homogeneous `f64` runs, so
//! a 4-wide AVX2 register holds four *independent* amplitudes' components and the
//! butterfly update becomes straight-line FMA code (see `qsim`'s kernels and the
//! reductions below).  The [`Complex64`]-typed accessors ([`Statevector::amplitude`],
//! [`Statevector::to_amplitudes`], [`Statevector::from_amplitudes`]) convert at the
//! boundary; the interleaved reference kernels in `qsim::reference` use exactly those to
//! stay layout-independent.

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};

/// A dense n-qubit statevector with `2^n` complex amplitudes in split re/im storage.
///
/// Amplitude index `b` corresponds to the computational basis state whose qubit `q` value
/// is bit `q` of `b` (little-endian qubit ordering, consistent with
/// [`crate::PauliString`]).
///
/// # Examples
///
/// ```
/// use qop::Statevector;
///
/// let psi = Statevector::basis_state(2, 0b10);
/// assert_eq!(psi.num_qubits(), 2);
/// assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Statevector {
    re: Vec<f64>,
    im: Vec<f64>,
    num_qubits: usize,
}

// Manual Clone so that `clone_from` forwards to `Vec::clone_from`, which reuses the
// destination's allocation when capacities match.  The optimizer inner loops in `qsim`
// and `vqa` rely on this to re-prepare states into scratch buffers allocation-free (the
// derived impl would fall back to `*self = source.clone()`, reallocating every call).
impl Clone for Statevector {
    fn clone(&self) -> Self {
        Statevector {
            re: self.re.clone(),
            im: self.im.clone(),
            num_qubits: self.num_qubits,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.re.clone_from(&source.re);
        self.im.clone_from(&source.im);
        self.num_qubits = source.num_qubits;
    }
}

impl Statevector {
    /// Creates the all-zeros state `|0...0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 30` (a dense vector that large would not fit in memory).
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// Creates the computational basis state `|basis⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 30` or `basis >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, basis: u64) -> Self {
        assert!(
            num_qubits <= 30,
            "dense statevectors are limited to 30 qubits; use the Pauli-propagation backend for larger systems"
        );
        let dim = 1usize << num_qubits;
        assert!((basis as usize) < dim, "basis index out of range");
        let mut re = vec![0.0; dim];
        let im = vec![0.0; dim];
        re[basis as usize] = 1.0;
        Statevector { re, im, num_qubits }
    }

    /// Creates a statevector from raw interleaved amplitudes (converted into the split
    /// re/im storage).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amplitudes: Vec<Complex64>) -> Self {
        let dim = amplitudes.len();
        assert!(
            dim.is_power_of_two() && dim > 0,
            "length must be a power of two"
        );
        let num_qubits = dim.trailing_zeros() as usize;
        let re = amplitudes.iter().map(|a| a.re).collect();
        let im = amplitudes.iter().map(|a| a.im).collect();
        Statevector { re, im, num_qubits }
    }

    /// Creates a statevector directly from its split re/im lanes.
    ///
    /// # Panics
    ///
    /// Panics if the lanes have different lengths or the length is not a power of two.
    pub fn from_lanes(re: Vec<f64>, im: Vec<f64>) -> Self {
        assert_eq!(re.len(), im.len(), "re/im lanes must have equal length");
        let dim = re.len();
        assert!(
            dim.is_power_of_two() && dim > 0,
            "length must be a power of two"
        );
        let num_qubits = dim.trailing_zeros() as usize;
        Statevector { re, im, num_qubits }
    }

    /// Creates the uniform superposition `H^{⊗n}|0⟩` (the standard QAOA initial state).
    pub fn uniform_superposition(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let amp = 1.0 / (dim as f64).sqrt();
        Statevector {
            re: vec![amp; dim],
            im: vec![0.0; dim],
            num_qubits,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension of the Hilbert space (`2^n`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// Immutable view of the real lane.
    #[inline]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// Immutable view of the imaginary lane.
    #[inline]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Both lanes at once, immutably.
    ///
    /// Asserts the equal-length lane invariant: the kernels' unsafe parallel paths
    /// index both lanes up to `dim()` through raw pointers, so any construction path
    /// that could bypass the constructors (deserialization of corrupted data, once a
    /// real serde replaces the vendored marker stub) must fail loudly here rather than
    /// hand the kernels mismatched lanes.
    #[inline]
    pub fn lanes(&self) -> (&[f64], &[f64]) {
        assert_eq!(self.re.len(), self.im.len(), "re/im lanes out of sync");
        (&self.re, &self.im)
    }

    /// Both lanes at once, mutably (used by the gate kernels in `qsim`); enforces the
    /// same lane invariant as [`Statevector::lanes`].
    #[inline]
    pub fn lanes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        assert_eq!(self.re.len(), self.im.len(), "re/im lanes out of sync");
        (&mut self.re, &mut self.im)
    }

    /// The amplitude of basis state `basis`, reconstructed from the lanes.
    #[inline]
    pub fn amplitude(&self, basis: u64) -> Complex64 {
        Complex64::new(self.re[basis as usize], self.im[basis as usize])
    }

    /// Writes one amplitude (test/boundary helper; kernels write the lanes directly).
    #[inline]
    pub fn set_amplitude(&mut self, basis: u64, value: Complex64) {
        self.re[basis as usize] = value.re;
        self.im[basis as usize] = value.im;
    }

    /// The amplitudes in interleaved `Complex64` form (allocates; conversion boundary
    /// for the interleaved reference kernels and for tests).
    pub fn to_amplitudes(&self) -> Vec<Complex64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect()
    }

    /// Overwrites this vector from interleaved amplitudes, reusing the lane allocations
    /// (the write-back half of the interleaved conversion boundary).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the current dimension.
    pub fn copy_from_amplitudes(&mut self, amplitudes: &[Complex64]) {
        assert_eq!(amplitudes.len(), self.dim(), "dimension mismatch");
        for ((r, i), a) in self.re.iter_mut().zip(&mut self.im).zip(amplitudes) {
            *r = a.re;
            *i = a.im;
        }
    }

    /// The measurement probability of basis state `basis`.
    #[inline]
    pub fn probability(&self, basis: u64) -> f64 {
        let b = basis as usize;
        self.re[b] * self.re[b] + self.im[b] * self.im[b]
    }

    /// All measurement probabilities (in basis order).
    pub fn probabilities(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r * r + i * i)
            .collect()
    }

    /// Writes all measurement probabilities into `out`, reusing its allocation.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.re.iter().zip(&self.im).map(|(&r, &i)| r * r + i * i));
    }

    /// Resets this vector to the basis state `|basis⟩` in place (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `basis >= 2^num_qubits`.
    pub fn set_basis_state(&mut self, basis: u64) {
        assert!((basis as usize) < self.dim(), "basis index out of range");
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[basis as usize] = 1.0;
    }

    /// Resets this vector to the uniform superposition `H^{⊗n}|0⟩` in place.
    pub fn set_uniform_superposition(&mut self) {
        let amp = 1.0 / (self.dim() as f64).sqrt();
        self.re.fill(amp);
        self.im.fill(0.0);
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// Split-lane reduction with four independent accumulators per component (a single
    /// dependent accumulator chain is latency-bound; four chains let the compiler keep a
    /// 4-wide FMA pipeline full).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &Statevector) -> Complex64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        // ⟨a|b⟩ = Σ conj(a)·b: re += ar·br + ai·bi, im += ar·bi − ai·br.
        let mut re_acc = [0.0f64; 4];
        let mut im_acc = [0.0f64; 4];
        let mut ar = self.re.chunks_exact(4);
        let mut ai = self.im.chunks_exact(4);
        let mut br = other.re.chunks_exact(4);
        let mut bi = other.im.chunks_exact(4);
        for (((ar, ai), br), bi) in (&mut ar).zip(&mut ai).zip(&mut br).zip(&mut bi) {
            for j in 0..4 {
                re_acc[j] += ar[j] * br[j] + ai[j] * bi[j];
                im_acc[j] += ar[j] * bi[j] - ai[j] * br[j];
            }
        }
        // Scalar tail (dimensions < 4; powers of two otherwise have no remainder).
        for (((ar, ai), br), bi) in ar
            .remainder()
            .iter()
            .zip(ai.remainder())
            .zip(br.remainder())
            .zip(bi.remainder())
        {
            re_acc[0] += ar * br + ai * bi;
            im_acc[0] += ar * bi - ai * br;
        }
        Complex64::new(
            (re_acc[0] + re_acc[1]) + (re_acc[2] + re_acc[3]),
            (im_acc[0] + im_acc[1]) + (im_acc[2] + im_acc[3]),
        )
    }

    /// The squared overlap `|⟨self|other⟩|²` (state fidelity for pure states).
    pub fn overlap(&self, other: &Statevector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// The squared Euclidean norm of the vector (split-lane 4-wide reduction).
    pub fn norm_sqr(&self) -> f64 {
        let mut acc = [0.0f64; 4];
        let mut r = self.re.chunks_exact(4);
        let mut i = self.im.chunks_exact(4);
        for (r, i) in (&mut r).zip(&mut i) {
            for j in 0..4 {
                acc[j] += r[j] * r[j] + i[j] * i[j];
            }
        }
        for (r, i) in r.remainder().iter().zip(i.remainder()) {
            acc[0] += r * r + i * i;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// The Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Normalizes the vector in place. Returns the previous norm.
    ///
    /// If the norm is zero the vector is left unchanged and `0.0` is returned.
    pub fn normalize(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            // One division, then multiplies: f64 division is several times the latency of
            // a multiply and does not pipeline as well on this loop.
            let inv = 1.0 / n;
            self.scale(inv);
        }
        n
    }

    /// `self += coeff * other` (used by Lanczos and the Pauli-sum apply).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy(&mut self, coeff: Complex64, other: &Statevector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        axpy_lanes(
            &mut self.re,
            &mut self.im,
            &other.re,
            &other.im,
            coeff.re,
            coeff.im,
        );
    }

    /// Multiplies every amplitude by a real scalar.
    pub fn scale(&mut self, s: f64) {
        for r in &mut self.re {
            *r *= s;
        }
        for i in &mut self.im {
            *i *= s;
        }
    }

    /// Returns a zeroed vector of the same shape.
    pub fn zeros_like(&self) -> Statevector {
        Statevector {
            re: vec![0.0; self.dim()],
            im: vec![0.0; self.dim()],
            num_qubits: self.num_qubits,
        }
    }
}

/// Split-lane axpy body.  A free function on purpose: the four slices arrive as
/// `noalias` parameters, which is what lets the flat four-stream zip autovectorize
/// (reborrows of two structs' fields carry no aliasing information).
fn axpy_lanes(sre: &mut [f64], sim: &mut [f64], ore: &[f64], oim: &[f64], cr: f64, ci: f64) {
    for (((r, i), br), bi) in sre.iter_mut().zip(sim.iter_mut()).zip(ore).zip(oim) {
        *r += cr * br - ci * bi;
        *i += cr * bi + ci * br;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_state_has_unit_probability() {
        let psi = Statevector::basis_state(3, 0b101);
        assert_eq!(psi.dim(), 8);
        assert!((psi.probability(0b101) - 1.0).abs() < 1e-12);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        assert!((psi.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_superposition_is_normalized() {
        let psi = Statevector::uniform_superposition(4);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        for b in 0..16 {
            assert!((psi.probability(b) - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_product_and_overlap() {
        let a = Statevector::basis_state(2, 0);
        let b = Statevector::basis_state(2, 1);
        assert_eq!(a.inner(&b), Complex64::ZERO);
        assert!((a.overlap(&a) - 1.0).abs() < 1e-12);
        assert!(a.overlap(&b).abs() < 1e-12);
        let plus = Statevector::uniform_superposition(2);
        assert!((a.overlap(&plus) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inner_product_matches_interleaved_definition_on_long_vectors() {
        // 6 qubits = 64 amplitudes: exercises the 4-wide chunks, not just the tail.
        let n = 6;
        let dim = 1usize << n;
        let mk = |phase: f64| {
            Statevector::from_amplitudes(
                (0..dim)
                    .map(|i| Complex64::new((i as f64 * phase).sin(), (i as f64 * phase).cos()))
                    .collect(),
            )
        };
        let a = mk(0.13);
        let b = mk(0.29);
        let expected: Complex64 = a
            .to_amplitudes()
            .iter()
            .zip(b.to_amplitudes().iter())
            .map(|(x, y)| x.conj() * *y)
            .sum();
        let got = a.inner(&b);
        assert!((got - expected).norm() < 1e-10);
    }

    #[test]
    fn normalize_and_axpy() {
        let mut v = Statevector::basis_state(1, 0);
        v.scale(3.0);
        assert!((v.norm() - 3.0).abs() < 1e-12);
        let prev = v.normalize();
        assert!((prev - 3.0).abs() < 1e-12);
        assert!((v.norm() - 1.0).abs() < 1e-12);

        let mut w = Statevector::zero_state(1).zeros_like();
        w.axpy(Complex64::new(0.0, 2.0), &v);
        assert!((w.amplitude(0).im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_infers_qubits() {
        let v = Statevector::from_amplitudes(vec![Complex64::ONE; 8]);
        assert_eq!(v.num_qubits(), 3);
    }

    #[test]
    fn amplitude_round_trip_through_lanes() {
        let raw: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let v = Statevector::from_amplitudes(raw.clone());
        assert_eq!(v.to_amplitudes(), raw);
        assert_eq!(v.amplitude(5), raw[5]);
        let w = Statevector::from_lanes(v.re().to_vec(), v.im().to_vec());
        assert_eq!(w, v);
        let mut z = v.zeros_like();
        z.copy_from_amplitudes(&raw);
        assert_eq!(z, v);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let _ = Statevector::from_amplitudes(vec![Complex64::ONE; 3]);
    }
}
